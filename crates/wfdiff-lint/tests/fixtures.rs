//! Fixture-driven rule tests: every rule fires on a known-bad source with
//! the right rule ID and position, and stays quiet on known-good look-alikes
//! (test modules, raw strings, comments, exempt paths).

#![allow(clippy::unwrap_used)]

use wfdiff_lint::rules::SourceFile;
use wfdiff_lint::{check_sources, CheckConfig, Violation};

/// Parses `(rel_path, source)` pairs and checks them with no allowlist.
fn check(files: &[(&str, &str)]) -> Vec<Violation> {
    let parsed: Vec<SourceFile> =
        files.iter().map(|(path, src)| SourceFile::parse(*path, src)).collect();
    check_sources(&parsed, &[], &CheckConfig::default())
}

fn rules_of(vs: &[Violation]) -> Vec<&str> {
    vs.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------------------
// WFL001 — io-discipline
// ---------------------------------------------------------------------------

#[test]
fn wfl001_flags_direct_fs_calls_in_durability_modules() {
    let src = "use std::fs;\n\
               pub fn save(p: &std::path::Path) -> std::io::Result<()> {\n\
               \x20   fs::write(p, b\"x\")\n\
               }\n";
    let vs = check(&[("crates/x/src/wal.rs", src)]);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!((vs[0].rule, vs[0].line, vs[0].col), ("WFL001", 3, 5), "{vs:?}");
    assert!(vs[0].message.contains("fs::write"), "{}", vs[0].message);
}

#[test]
fn wfl001_flags_file_create_and_openoptions() {
    let src = "pub fn f() {\n\
               \x20   let _a = std::fs::File::create(\"a\");\n\
               \x20   let _b = std::fs::OpenOptions::new();\n\
               }\n";
    let vs = check(&[("crates/x/src/persist.rs", src)]);
    // `fs::File` is not itself a call, but `File::create` and
    // `OpenOptions::new` both are.
    assert_eq!(rules_of(&vs), vec!["WFL001", "WFL001"], "{vs:?}");
    assert!(vs[0].message.contains("File::create"), "{}", vs[0].message);
    assert!(vs[1].message.contains("OpenOptions::new"), "{}", vs[1].message);
}

#[test]
fn wfl001_exempts_storeio_and_non_durability_modules() {
    let src = "pub fn f() { let _ = std::fs::File::create(\"a\"); }\n";
    assert!(check(&[("crates/x/src/storeio.rs", src)]).is_empty());
    assert!(check(&[("crates/x/src/render.rs", src)]).is_empty());
}

#[test]
fn wfl001_ignores_test_regions() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { std::fs::write(\"a\", b\"x\").unwrap(); }\n\
               }\n";
    assert!(check(&[("crates/x/src/wal.rs", src)]).is_empty());
}

// ---------------------------------------------------------------------------
// WFL002 — lock-order
// ---------------------------------------------------------------------------

#[test]
fn wfl002_flags_specs_acquired_under_runs() {
    let src = "impl S {\n\
               \x20   fn bad(&self) {\n\
               \x20       let r = self.runs.read();\n\
               \x20       let s = self.specs.read();\n\
               \x20       drop((r, s));\n\
               \x20   }\n\
               }\n";
    let vs = check(&[("crates/wfdiff-pdiffview/src/store.rs", src)]);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!((vs[0].rule, vs[0].line), ("WFL002", 4), "{vs:?}");
    assert!(vs[0].message.contains("`specs`") && vs[0].message.contains("`runs`"));
}

#[test]
fn wfl002_accepts_ordered_and_sequentially_relocked_acquisition() {
    let src = "impl S {\n\
               \x20   fn good(&self) {\n\
               \x20       let _g = self.save_lock.lock();\n\
               \x20       { let _s = self.specs.write(); }\n\
               \x20       { let _r = self.runs.read(); }\n\
               \x20       { let _r = self.runs.read(); }\n\
               \x20       let _c = self.persist_fp_cache.lock();\n\
               \x20   }\n\
               }\n";
    assert!(check(&[("crates/wfdiff-pdiffview/src/store.rs", src)]).is_empty());
}

#[test]
fn wfl002_resets_at_function_boundaries_and_skips_other_crates() {
    let per_fn = "impl S {\n\
                  \x20   fn a(&self) { let _r = self.runs.read(); }\n\
                  \x20   fn b(&self) { let _s = self.specs.read(); }\n\
                  }\n";
    assert!(check(&[("crates/wfdiff-pdiffview/src/service.rs", per_fn)]).is_empty());
    let inverted = "fn f(s: &S) { let _r = s.runs.read(); let _x = s.specs.read(); }\n";
    assert!(check(&[("crates/wfdiff-core/src/lib.rs", inverted)]).is_empty());
}

// ---------------------------------------------------------------------------
// WFL003 — panic-freedom
// ---------------------------------------------------------------------------

#[test]
fn wfl003_flags_unwrap_expect_and_panic_macros() {
    let src = "pub fn f(o: Option<u8>) -> u8 {\n\
               \x20   let v = o.unwrap();\n\
               \x20   let w = o.expect(\"present\");\n\
               \x20   if v != w { panic!(\"mismatch\"); }\n\
               \x20   todo!()\n\
               }\n";
    let vs = check(&[("crates/x/src/lib.rs", src)]);
    assert_eq!(rules_of(&vs), vec!["WFL003"; 4], "{vs:?}");
    assert_eq!((vs[0].line, vs[0].col), (2, 15), "unwrap position: {vs:?}");
}

#[test]
fn wfl003_ignores_test_regions_raw_strings_and_comments() {
    let src = "//! Docs mentioning .unwrap() are fine.\n\
               pub fn f() -> &'static str {\n\
               \x20   // a comment saying panic!(\"no\") is fine\n\
               \x20   r\"call .unwrap() and .expect(there) here\"\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); panic!(\"in a test\"); }\n\
               }\n";
    assert!(check(&[("crates/x/src/lib.rs", src)]).is_empty());
}

#[test]
fn wfl003_exempts_binaries_and_the_bench_crate() {
    let src = "fn main() { std::env::args().next().unwrap(); }\n";
    assert!(check(&[("crates/x/src/bin/tool.rs", src)]).is_empty());
    assert!(check(&[("crates/wfdiff-bench/src/lib.rs", src)]).is_empty());
}

// ---------------------------------------------------------------------------
// WFL004 — metrics-naming
// ---------------------------------------------------------------------------

#[test]
fn wfl004_flags_bad_prefix_missing_suffix_and_duplicates() {
    let src = "pub fn render(out: &mut String) {\n\
               \x20   head(out, \"shard_requests_total\", \"counter\", \"h\");\n\
               \x20   counter_head_sample(out, \"wfdiff_requests\", \"h\", 1);\n\
               \x20   gauge_head_sample(out, \"wfdiff_up\", \"h\", 1);\n\
               \x20   gauge_head_sample(out, \"wfdiff_up\", \"h\", 1);\n\
               }\n";
    let vs = check(&[("crates/x/src/serve/metrics.rs", src)]);
    let msgs: Vec<&str> = vs.iter().map(|v| v.message.as_str()).collect();
    assert_eq!(rules_of(&vs), vec!["WFL004"; 3], "{vs:?}");
    assert!(msgs.iter().any(|m| m.contains("does not match wfdiff_")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("must end with `_total`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("registered more than once")), "{msgs:?}");
}

#[test]
fn wfl004_accepts_a_compliant_registry_and_skips_non_serve_files() {
    let good = "pub fn render(out: &mut String) {\n\
                \x20   counter_head_sample(out, \"wfdiff_requests_total\", \"h\", 1);\n\
                \x20   gauge_head_sample(out, \"wfdiff_shard_count\", \"h\", 1);\n\
                \x20   head(out, \"wfdiff_latency_seconds\", \"histogram\", \"h\");\n\
                }\n";
    assert!(check(&[("crates/x/src/serve/metrics.rs", good)]).is_empty());
    let bad_elsewhere = "pub fn f(out: &mut String) { head(out, \"oops\", \"counter\", \"h\"); }\n";
    assert!(check(&[("crates/x/src/render.rs", bad_elsewhere)]).is_empty());
}

#[test]
fn wfl004_covers_the_similar_query_counters() {
    // The metric-index counters ship under these exact names; keep the rule
    // accepting them and still firing on the obvious near-misses (a dropped
    // `_total`, a second registration).
    let good = "pub fn render(out: &mut String) {\n\
                \x20   counter_head_sample(out, \"wfdiff_similar_pruned_total\", \"h\", 1);\n\
                \x20   counter_head_sample(out, \"wfdiff_similar_distance_evals_total\", \"h\", 1);\n\
                }\n";
    assert!(check(&[("crates/x/src/serve/metrics.rs", good)]).is_empty());

    let bad = "pub fn render(out: &mut String) {\n\
               \x20   counter_head_sample(out, \"wfdiff_similar_distance_evals\", \"h\", 1);\n\
               \x20   counter_head_sample(out, \"wfdiff_similar_pruned_total\", \"h\", 1);\n\
               \x20   counter_head_sample(out, \"wfdiff_similar_pruned_total\", \"h\", 1);\n\
               }\n";
    let vs = check(&[("crates/x/src/serve/metrics.rs", bad)]);
    assert_eq!(rules_of(&vs), vec!["WFL004"; 2], "{vs:?}");
    assert!(vs[0].message.contains("must end with `_total`"), "{}", vs[0].message);
    assert!(vs[1].message.contains("registered more than once"), "{}", vs[1].message);
}

#[test]
fn wfl004_covers_the_streaming_counters() {
    // The streaming-ingestion counters ship under these exact names; keep
    // the rule accepting them and still firing on the obvious near-misses
    // (a dropped `_total`, a second registration).
    let good = "pub fn render(out: &mut String) {\n\
                \x20   counter_head_sample(out, \"wfdiff_stream_events_total\", \"h\", 1);\n\
                \x20   counter_head_sample(out, \"wfdiff_drift_flags_total\", \"h\", 1);\n\
                }\n";
    assert!(check(&[("crates/x/src/serve/metrics.rs", good)]).is_empty());

    let bad = "pub fn render(out: &mut String) {\n\
               \x20   counter_head_sample(out, \"wfdiff_drift_flags\", \"h\", 1);\n\
               \x20   counter_head_sample(out, \"wfdiff_stream_events_total\", \"h\", 1);\n\
               \x20   counter_head_sample(out, \"wfdiff_stream_events_total\", \"h\", 1);\n\
               }\n";
    let vs = check(&[("crates/x/src/serve/metrics.rs", bad)]);
    assert_eq!(rules_of(&vs), vec!["WFL004"; 2], "{vs:?}");
    assert!(vs[0].message.contains("must end with `_total`"), "{}", vs[0].message);
    assert!(vs[1].message.contains("registered more than once"), "{}", vs[1].message);
}

// ---------------------------------------------------------------------------
// WFL005 — error-status exhaustiveness
// ---------------------------------------------------------------------------

#[test]
fn wfl005_flags_a_variant_missing_from_the_status_map() {
    let decl = "pub enum ServiceError { UnknownSpec, Diff(String) }\n";
    let api = "fn status(e: ServiceError) -> u16 {\n\
               \x20   match e { ServiceError::UnknownSpec => 404, _ => 500 }\n\
               }\n";
    let vs = check(&[("crates/x/src/service.rs", decl), ("crates/x/src/serve/api.rs", api)]);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, "WFL005");
    assert_eq!(vs[0].file, "crates/x/src/serve/api.rs");
    assert!(vs[0].message.contains("ServiceError::Diff"), "{}", vs[0].message);
}

#[test]
fn wfl005_accepts_an_exhaustive_map_and_skips_fixture_sets_without_api() {
    let decl = "pub enum StoreError { MissingSpec, DuplicateRun }\n";
    let api = "fn status(e: StoreError) -> u16 {\n\
               \x20   match e {\n\
               \x20       StoreError::MissingSpec => 404,\n\
               \x20       StoreError::DuplicateRun => 409,\n\
               \x20   }\n\
               }\n";
    let with_api = check(&[("crates/x/src/store.rs", decl), ("crates/x/src/serve/api.rs", api)]);
    assert!(with_api.is_empty(), "{with_api:?}");
    assert!(check(&[("crates/x/src/store.rs", decl)]).is_empty(), "no api.rs, nothing to check");
}

#[test]
fn wfl005_covers_the_streaming_error_variants() {
    // The streaming additions to ServiceError (batch rejection, unknown
    // stream, optimistic-concurrency race) must stay in the status map: a
    // map written before they existed misses them and the rule fires once
    // per dropped variant.
    let decl = "pub enum ServiceError {\n\
                \x20   UnknownSpec(String),\n\
                \x20   Stream(StreamError),\n\
                \x20   UnknownStream { spec: String, stream: String },\n\
                \x20   StreamRace { spec: String, stream: String },\n\
                }\n";
    let stale = "fn status(e: ServiceError) -> u16 {\n\
                 \x20   match e {\n\
                 \x20       ServiceError::UnknownSpec(_) => 404,\n\
                 \x20       ServiceError::Stream(_) => 400,\n\
                 \x20       _ => 500,\n\
                 \x20   }\n\
                 }\n";
    let vs = check(&[("crates/x/src/service.rs", decl), ("crates/x/src/serve/api.rs", stale)]);
    assert_eq!(rules_of(&vs), vec!["WFL005"; 2], "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("ServiceError::UnknownStream")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("ServiceError::StreamRace")), "{vs:?}");

    let exhaustive = "fn status(e: ServiceError) -> u16 {\n\
                      \x20   match e {\n\
                      \x20       ServiceError::UnknownSpec(_) => 404,\n\
                      \x20       ServiceError::Stream(e) => if e.is_conflict() { 409 } else { 400 },\n\
                      \x20       ServiceError::UnknownStream { .. } => 404,\n\
                      \x20       ServiceError::StreamRace { .. } => 409,\n\
                      \x20   }\n\
                      }\n";
    let clean =
        check(&[("crates/x/src/service.rs", decl), ("crates/x/src/serve/api.rs", exhaustive)]);
    assert!(clean.is_empty(), "{clean:?}");
}
