//! Self-test against the real workspace, plus end-to-end runs of the
//! `wfdiff_lint` binary (exit codes, JSON report, rule listing).

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

use wfdiff_lint::{check_workspace, CheckConfig, RULES};

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").to_owned()
}

#[test]
fn the_live_workspace_is_clean_under_the_checked_in_allowlist() {
    let violations =
        check_workspace(&workspace_root(), &CheckConfig::default()).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "the tree must lint clean with lint_allow.toml; found:\n{}",
        wfdiff_lint::render_human(&violations)
    );
}

#[test]
fn every_allowlisted_rule_still_fires_when_denied() {
    // `--deny WFL001` must resurface the allowlisted read-side fs calls —
    // proof the allowlist is suppressing live findings, not matching nothing.
    let config = CheckConfig { denied_rules: vec!["WFL001".to_owned()], ..Default::default() };
    let violations = check_workspace(&workspace_root(), &config).expect("workspace scan");
    assert!(
        violations.iter().any(|v| v.rule == "WFL001"),
        "denying WFL001 should expose the allowlisted sites"
    );
    assert!(violations.iter().all(|v| v.rule == "WFL001"), "other rules stay suppressed");
}

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wfdiff_lint"))
}

#[test]
fn check_on_the_live_workspace_exits_zero() {
    let out = lint_bin()
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run wfdiff_lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn check_on_a_violating_tree_exits_one_and_writes_the_json_report() {
    // Build a tiny violating workspace under the cargo-managed tmp dir.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("wfdiff_lint_bad_tree");
    let src = dir.join("crates/x/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("lib.rs"), "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n").unwrap();
    let report = dir.join("lint_report.json");
    let out = lint_bin()
        .args(["check", "--root"])
        .arg(&dir)
        .arg("--json")
        .arg(&report)
        .output()
        .expect("run wfdiff_lint");
    assert_eq!(out.status.code(), Some(1), "violations exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[WFL003]") && stdout.contains("crates/x/src/lib.rs:1:35"), "{stdout}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"WFL003\"") && json.contains("\"total\": 1"), "{json}");
}

#[test]
fn usage_errors_exit_two() {
    let out = lint_bin().arg("frobnicate").output().expect("run wfdiff_lint");
    assert_eq!(out.status.code(), Some(2));
    let out = lint_bin().args(["check", "--allow", "WFL999"]).output().expect("run wfdiff_lint");
    assert_eq!(out.status.code(), Some(2), "unknown rule IDs are usage errors");
}

#[test]
fn list_rules_names_every_rule() {
    let out = lint_bin().arg("list-rules").output().expect("run wfdiff_lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in &RULES {
        assert!(stdout.contains(rule.id), "missing {} in:\n{stdout}", rule.id);
    }
}
