//! The checking engine: workspace walk, rule dispatch, allowlist
//! application and allowlist hygiene (rule `WFL000`).

use crate::allowlist::AllowEntry;
use crate::report::Violation;
use crate::rules::{self, SourceFile};
use std::fmt;
use std::path::{Path, PathBuf};

/// Which rules run and how the allowlist is honoured.
#[derive(Debug, Default, Clone)]
pub struct CheckConfig {
    /// Rule IDs disabled entirely (`--allow RULE`): their violations are not
    /// reported and their allowlist entries are not hygiene-checked.
    pub allowed_rules: Vec<String>,
    /// Rule IDs whose allowlist entries are ignored (`--deny RULE`): every
    /// violation is reported even when an entry matches.
    pub denied_rules: Vec<String>,
}

impl CheckConfig {
    fn rule_enabled(&self, id: &str) -> bool {
        !self.allowed_rules.iter().any(|r| r == id)
    }

    fn allowlist_honoured(&self, id: &str) -> bool {
        !self.denied_rules.iter().any(|r| r == id)
    }
}

/// A failure to read the tree or the allowlist (distinct from violations:
/// these exit 2, not 1).
#[derive(Debug)]
pub struct EngineError {
    /// What the engine was doing.
    pub context: String,
    /// The underlying failure.
    pub message: String,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for EngineError {}

fn engine_err(context: impl Into<String>, message: impl fmt::Display) -> EngineError {
    EngineError { context: context.into(), message: message.to_string() }
}

/// Checks already-parsed sources against `entries`, returning the surviving
/// violations (including `WFL000` hygiene findings for unmatched entries).
///
/// This is the pure core — fixture tests drive it with in-memory sources;
/// [`check_workspace`] wraps it with the filesystem walk.
pub fn check_sources(
    files: &[SourceFile],
    entries: &[AllowEntry],
    config: &CheckConfig,
) -> Vec<Violation> {
    let raw = rules::check_all(files, &|id| config.rule_enabled(id));
    let mut used = vec![false; entries.len()];
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let matched = entries.iter().enumerate().find(|(_, e)| entry_matches(e, files, &v));
        match matched {
            Some((idx, _)) if config.allowlist_honoured(v.rule) => used[idx] = true,
            _ => out.push(v),
        }
    }
    if config.rule_enabled("WFL000") {
        for (idx, e) in entries.iter().enumerate() {
            if used[idx] || !config.rule_enabled(&e.rule) || !config.allowlist_honoured(&e.rule) {
                continue;
            }
            out.push(Violation {
                rule: "WFL000",
                file: "lint_allow.toml".to_owned(),
                line: idx as u32 + 1,
                col: 1,
                message: format!(
                    "stale allowlist entry: no {} violation in {} matches pattern {:?} — \
                     delete the entry (the burn-down list only shrinks)",
                    e.rule, e.file, e.pattern
                ),
            });
        }
    }
    out
}

/// An entry suppresses a violation when the rule and file match exactly and
/// the flagged line's source text contains the pattern.
fn entry_matches(entry: &AllowEntry, files: &[SourceFile], v: &Violation) -> bool {
    if entry.rule != v.rule || entry.file != v.file {
        return false;
    }
    let Some(file) = files.iter().find(|f| f.rel_path == v.file) else {
        return false;
    };
    file.lines.get(v.line as usize - 1).is_some_and(|line| line.contains(&entry.pattern))
}

/// Walks `root` (the workspace directory), parses every `crates/*/src/**/*.rs`
/// file, loads `root/lint_allow.toml` when present, and checks everything.
pub fn check_workspace(root: &Path, config: &CheckConfig) -> Result<Vec<Violation>, EngineError> {
    let files = load_workspace_sources(root)?;
    if files.is_empty() {
        return Err(engine_err(
            format!("scanning {}", root.display()),
            "no crates/*/src/**/*.rs files found — wrong --root?",
        ));
    }
    let allow_path = root.join("lint_allow.toml");
    let entries = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| engine_err(format!("reading {}", allow_path.display()), e))?;
        crate::allowlist::parse_allowlist(&text)
            .map_err(|e| engine_err("parsing lint_allow.toml", e))?
    } else {
        Vec::new()
    };
    Ok(check_sources(&files, &entries, config))
}

/// Loads and lexes every `crates/*/src/**/*.rs` under `root`, sorted by
/// workspace-relative path for deterministic output.
pub fn load_workspace_sources(root: &Path) -> Result<Vec<SourceFile>, EngineError> {
    let crates_dir = root.join("crates");
    let mut rs_files: Vec<PathBuf> = Vec::new();
    let crate_dirs = read_dir_sorted(&crates_dir)?;
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut rs_files)?;
        }
    }
    rs_files.sort();
    let mut out = Vec::with_capacity(rs_files.len());
    for path in rs_files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| engine_err(format!("reading {}", path.display()), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile::parse(rel, &text));
    }
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, EngineError> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| engine_err(format!("reading directory {}", dir.display()), e))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| engine_err(format!("reading {}", dir.display()), e))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), EngineError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::parse_allowlist;

    fn one_bad_file() -> Vec<SourceFile> {
        vec![SourceFile::parse(
            "crates/x/src/lib.rs",
            "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
        )]
    }

    #[test]
    fn allowlist_suppresses_a_matching_violation() {
        let files = one_bad_file();
        let entries = parse_allowlist(
            "[[allow]]\nrule = \"WFL003\"\nfile = \"crates/x/src/lib.rs\"\n\
             pattern = \"o.unwrap()\"\njustification = \"fixture\"\n",
        )
        .expect("parses");
        let vs = check_sources(&files, &entries, &CheckConfig::default());
        assert!(vs.is_empty(), "suppressed, and the entry is used: {vs:?}");
    }

    #[test]
    fn stale_entries_are_reported_as_wfl000() {
        let files = one_bad_file();
        let entries = parse_allowlist(
            "[[allow]]\nrule = \"WFL003\"\nfile = \"crates/x/src/lib.rs\"\n\
             pattern = \"no such text\"\njustification = \"stale\"\n",
        )
        .expect("parses");
        let vs = check_sources(&files, &entries, &CheckConfig::default());
        let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"WFL003"), "the unwrap is still reported: {vs:?}");
        assert!(rules.contains(&"WFL000"), "the stale entry is reported: {vs:?}");
    }

    #[test]
    fn deny_overrides_the_allowlist() {
        let files = one_bad_file();
        let entries = parse_allowlist(
            "[[allow]]\nrule = \"WFL003\"\nfile = \"crates/x/src/lib.rs\"\n\
             pattern = \"o.unwrap()\"\njustification = \"fixture\"\n",
        )
        .expect("parses");
        let config =
            CheckConfig { denied_rules: vec!["WFL003".to_owned()], ..CheckConfig::default() };
        let vs = check_sources(&files, &entries, &config);
        assert_eq!(vs.len(), 1, "reported despite the entry, no WFL000 for it: {vs:?}");
        assert_eq!(vs[0].rule, "WFL003");
    }

    #[test]
    fn allow_disables_a_rule_entirely() {
        let files = one_bad_file();
        let config =
            CheckConfig { allowed_rules: vec!["WFL003".to_owned()], ..CheckConfig::default() };
        let vs = check_sources(&files, &[], &config);
        assert!(vs.is_empty(), "{vs:?}");
    }
}
