//! `wfdiff-lint`: the workspace invariant checker.
//!
//! The wfdiff workspace carries load-bearing invariants that ordinary tests
//! cannot see: crash-torture coverage is only honest if every durability
//! write routes through `StoreIo`; the store's lock discipline only holds if
//! no future refactor reorders an acquisition; the serving tier's panic
//! budget is zero.  This crate turns those prose invariants into machine
//! checks with stable rule IDs:
//!
//! | rule | name | enforces |
//! |------|------|----------|
//! | `WFL000` | allowlist-hygiene | `lint_allow.toml` entries must still match a site |
//! | `WFL001` | io-discipline | no direct `std::fs` in durability-critical modules |
//! | `WFL002` | lock-order | `save_lock` → `specs` → `runs` → `persist_fp_cache` |
//! | `WFL003` | panic-freedom | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | `WFL004` | metrics-naming | `wfdiff_`-prefixed, kind-suffixed, registered once |
//! | `WFL005` | error-status-exhaustiveness | every error variant in the status map |
//!
//! The crate is deliberately dependency-free (no `syn`, no registry access):
//! a hand-rolled lexer ([`lexer`]) tokenizes Rust precisely enough that
//! strings, comments and `#[cfg(test)]` regions cannot fool a rule, and the
//! engine ([`engine`]) walks `crates/*/src/**/*.rs`, applies the rules
//! ([`rules`]) and subtracts the justified allowlist ([`allowlist`]).
//!
//! Run it as `cargo run -p wfdiff-lint --release -- check`; see the README
//! for the CLI and the `lint_allow.toml` format.
//!
//! # Example
//!
//! ```
//! use wfdiff_lint::engine::{check_sources, CheckConfig};
//! use wfdiff_lint::rules::SourceFile;
//!
//! let file = SourceFile::parse(
//!     "crates/x/src/lib.rs",
//!     "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }",
//! );
//! let violations = check_sources(&[file], &[], &CheckConfig::default());
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, "WFL003");
//! assert_eq!((violations[0].line, violations[0].col), (1, 35));
//! ```

#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod allowlist;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use allowlist::{parse_allowlist, AllowEntry};
pub use engine::{check_sources, check_workspace, CheckConfig};
pub use report::{render_human, render_json, Violation};
pub use rules::{rule_info, SourceFile, RULES};
