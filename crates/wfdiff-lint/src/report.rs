//! Violation records and their human/JSON renderings.

use std::fmt::Write as _;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule ID, e.g. `"WFL003"`.
    pub rule: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What the rule saw.
    pub message: String,
}

/// Renders violations for humans: `file:line:col: [RULE] message`, sorted by
/// file, then position, then rule.
pub fn render_human(violations: &[Violation]) -> String {
    let mut sorted: Vec<&Violation> = violations.iter().collect();
    sorted.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    let mut out = String::new();
    for v in sorted {
        let _ = writeln!(out, "{}:{}:{}: [{}] {}", v.file, v.line, v.col, v.rule, v.message);
    }
    out
}

/// Renders violations as a JSON report:
///
/// ```json
/// {"violations": [{"rule": "...", "file": "...", "line": 1, "col": 1,
///   "message": "..."}], "total": 1}
/// ```
///
/// Hand-rolled (the crate is dependency-free); only strings need escaping.
pub fn render_json(violations: &[Violation]) -> String {
    let mut sorted: Vec<&Violation> = violations.iter().collect();
    sorted.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_string(v.rule),
            json_string(&v.file),
            v.line,
            v.col,
            json_string(&v.message),
        );
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(out, "],\n  \"total\": {}\n}}\n", sorted.len());
    out
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation { rule, file: file.to_owned(), line, col: 1, message: "m \"q\"".to_owned() }
    }

    #[test]
    fn human_output_is_sorted_and_greppable() {
        let out = render_human(&[v("WFL003", "b.rs", 9), v("WFL001", "a.rs", 2)]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a.rs:2:1: [WFL001]"));
        assert!(lines[1].starts_with("b.rs:9:1: [WFL003]"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let out = render_json(&[v("WFL003", "a.rs", 1)]);
        assert!(out.contains("\"total\": 1"));
        assert!(out.contains("\\\"q\\\""));
        let empty = render_json(&[]);
        assert!(empty.contains("\"violations\": []"));
        assert!(empty.contains("\"total\": 0"));
    }
}
