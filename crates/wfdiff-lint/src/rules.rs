//! The WFL rule set.
//!
//! Every rule has a stable ID so allowlist entries, CI output and the
//! "Enforced invariants" table in ARCHITECTURE.md can refer to it.  Rules
//! work on the token stream from [`crate::lexer`] — never on raw text — so
//! strings, comments and test regions cannot produce false positives.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use std::collections::BTreeMap;

/// A parsed source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/wfdiff-pdiffview/src/wal.rs`).
    pub rel_path: String,
    /// The file's lines, for allowlist pattern matching.
    pub lines: Vec<String>,
    /// The lexed token stream with test regions marked.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Lexes `source` into a checkable file.
    pub fn parse(rel_path: impl Into<String>, source: &str) -> Self {
        SourceFile {
            rel_path: rel_path.into(),
            lines: source.lines().map(str::to_owned).collect(),
            tokens: crate::lexer::lex(source),
        }
    }
}

/// One rule's ID and description, for `list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable ID (`WFL000`–`WFL005`).
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the engine knows, in ID order.
pub const RULES: [RuleInfo; 6] = [
    RuleInfo {
        id: "WFL000",
        name: "allowlist-hygiene",
        summary: "every lint_allow.toml entry must still match a real site (the list only shrinks)",
    },
    RuleInfo {
        id: "WFL001",
        name: "io-discipline",
        summary: "durability-critical modules route all filesystem mutation through StoreIo, \
                  never std::fs directly",
    },
    RuleInfo {
        id: "WFL002",
        name: "lock-order",
        summary: "store locks are acquired in rank order: save_lock, then specs, then runs, \
                  then persist_fp_cache",
    },
    RuleInfo {
        id: "WFL003",
        name: "panic-freedom",
        summary: "no unwrap/expect/panic!/todo!/unreachable!/unimplemented! in non-test \
                  library code",
    },
    RuleInfo {
        id: "WFL004",
        name: "metrics-naming",
        summary: "serve-tier metrics match wfdiff_[a-z0-9_]+ with the kind-appropriate suffix \
                  and are registered exactly once",
    },
    RuleInfo {
        id: "WFL005",
        name: "error-status-exhaustiveness",
        summary: "every ServiceError/StoreError/PersistError variant appears in the \
                  error-to-status map in serve/api.rs",
    },
];

/// Looks up a rule by ID.
pub fn rule_info(id: &str) -> Option<RuleInfo> {
    RULES.iter().copied().find(|r| r.id == id)
}

/// Runs every enabled per-file and cross-file rule over `files`.
///
/// `enabled` gates rules by ID (the CLI's `--allow RULE` turns one off).
/// The result is unfiltered by the allowlist — that is the engine's job.
pub fn check_all(files: &[SourceFile], enabled: &dyn Fn(&str) -> bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if enabled("WFL001") {
            wfl001_io_discipline(file, &mut out);
        }
        if enabled("WFL002") {
            wfl002_lock_order(file, &mut out);
        }
        if enabled("WFL003") {
            wfl003_panic_freedom(file, &mut out);
        }
    }
    if enabled("WFL004") {
        wfl004_metrics_naming(files, &mut out);
    }
    if enabled("WFL005") {
        wfl005_error_status(files, &mut out);
    }
    out
}

fn violation(rule: &'static str, file: &SourceFile, t: &Token, message: String) -> Violation {
    Violation { rule, file: file.rel_path.clone(), line: t.line, col: t.col, message }
}

// ---------------------------------------------------------------------------
// WFL001 — io-discipline
// ---------------------------------------------------------------------------

/// Modules whose writes must be crash-torture-visible: every filesystem
/// mutation goes through `StoreIo` so `FaultIo` can inject faults into it.
fn is_durability_module(rel_path: &str) -> bool {
    if rel_path.ends_with("/storeio.rs") {
        return false;
    }
    ["/persist.rs", "/wal.rs", "/cluster/persist.rs", "/serve/shard.rs"]
        .iter()
        .any(|suffix| rel_path.ends_with(suffix))
}

fn wfl001_io_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    if !is_durability_module(&file.rel_path) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        // `fs::<fn>(` — any direct std::fs call.
        if t.text == "fs" && path_call(toks, i).is_some() {
            let name = &toks[i + 3].text;
            out.push(violation(
                "WFL001",
                file,
                t,
                format!(
                    "direct fs::{name} call in a durability-critical module; route it \
                     through StoreIo so FaultIo crash torture covers it"
                ),
            ));
            continue;
        }
        // `File::create/open/...(` and `OpenOptions::new(`.
        if t.text == "File" {
            if let Some(m) = path_call(toks, i) {
                if ["create", "create_new", "open", "options"].contains(&m) {
                    out.push(violation(
                        "WFL001",
                        file,
                        t,
                        format!(
                            "direct File::{m} call in a durability-critical module; route \
                             it through StoreIo so FaultIo crash torture covers it"
                        ),
                    ));
                }
            }
        }
        if t.text == "OpenOptions" && path_call(toks, i) == Some("new") {
            out.push(violation(
                "WFL001",
                file,
                t,
                "direct OpenOptions::new call in a durability-critical module; route it \
                 through StoreIo so FaultIo crash torture covers it"
                    .to_owned(),
            ));
        }
    }
}

/// For `Base::member(` starting at `toks[i] == Base`, returns `member`.
/// The lexer emits `::` as two `:` puncts, so `member` sits at `i + 3`.
fn path_call(toks: &[Token], i: usize) -> Option<&str> {
    if toks.get(i + 1)?.is_punct(':')
        && toks.get(i + 2)?.is_punct(':')
        && toks.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident)
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
    {
        return Some(&toks[i + 3].text);
    }
    None
}

// ---------------------------------------------------------------------------
// WFL002 — lock-order
// ---------------------------------------------------------------------------

/// The store's lock ranks.  Mirrors `wfdiff_pdiffview::lockrank::LockRank`:
/// a lock may only be acquired when every lock already held has a *lower*
/// rank.
const LOCK_RANKS: [(&str, &str, u8); 6] = [
    ("save_lock", "lock", 0),
    ("specs", "read", 1),
    ("specs", "write", 1),
    ("runs", "read", 2),
    ("runs", "write", 2),
    ("persist_fp_cache", "lock", 3),
];

fn wfl002_lock_order(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.rel_path.contains("crates/wfdiff-pdiffview/src/") {
        return;
    }
    let toks = &file.tokens;
    // Static approximation: within one `fn` body (delimited by `fn` keyword
    // occurrences), acquisitions must be non-decreasing in rank.  This
    // over-approximates guard lifetimes (an early-dropped guard still counts)
    // — intentional: the store's documented discipline is rank-ordered
    // acquisition per function, and the runtime lock-rank guard catches the
    // exact dynamic cases.
    let mut max_rank: Option<(u8, &str)> = None;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.is_ident("fn") {
            max_rank = None;
            continue;
        }
        // `.field.method(` acquisition pattern.
        if !t.is_punct('.') {
            continue;
        }
        let Some(field) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let Some(method) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if !toks.get(i + 4).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(&(name, _, rank)) =
            LOCK_RANKS.iter().find(|(f, m, _)| field.text == *f && method.text == *m)
        else {
            continue;
        };
        // Strictly-lower only: re-acquiring the same rank is a sequential
        // drop-then-relock in the static over-approximation (the runtime
        // guard catches a genuinely nested same-rank acquisition).
        match max_rank {
            Some((held, held_name)) if rank < held => {
                out.push(violation(
                    "WFL002",
                    file,
                    field,
                    format!(
                        "lock-order violation: `{name}` (rank {rank}) acquired after \
                         `{held_name}` (rank {held}); the store's discipline is \
                         save_lock → specs → runs → persist_fp_cache"
                    ),
                ));
            }
            _ => {}
        }
        if max_rank.map_or(true, |(held, _)| rank > held) {
            max_rank = Some((rank, name));
        }
    }
}

// ---------------------------------------------------------------------------
// WFL003 — panic-freedom
// ---------------------------------------------------------------------------

/// Library code the panic-freedom rule covers: everything under
/// `crates/*/src/` except binaries and the bench crate (whose panics abort a
/// benchmark run, not a serving process).
fn is_panic_free_scope(rel_path: &str) -> bool {
    if rel_path.starts_with("crates/wfdiff-bench/") {
        return false;
    }
    if rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs") {
        return false;
    }
    true
}

const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unreachable", "unimplemented"];

fn wfl003_panic_freedom(file: &SourceFile, out: &mut Vec<Violation>) {
    if !is_panic_free_scope(&file.rel_path) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(violation(
                "WFL003",
                file,
                t,
                format!(
                    ".{}() in non-test library code can panic a serving process; return \
                     an error or allowlist the site with a justification",
                    t.text
                ),
            ));
            continue;
        }
        if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(violation(
                "WFL003",
                file,
                t,
                format!(
                    "{}! in non-test library code can panic a serving process; return an \
                     error or allowlist the site with a justification",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// WFL004 — metrics-naming
// ---------------------------------------------------------------------------

/// A metric registration site found in the serve tier.
struct Registration {
    file_idx: usize,
    token_idx: usize,
    name: String,
    kind: &'static str,
}

fn wfl004_metrics_naming(files: &[SourceFile], out: &mut Vec<Violation>) {
    let mut regs: Vec<Registration> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !file.rel_path.contains("/serve/") {
            continue;
        }
        collect_registrations(file_idx, file, &mut regs, out);
    }
    // Pattern + suffix checks.
    for reg in &regs {
        let file = &files[reg.file_idx];
        let t = &file.tokens[reg.token_idx];
        if !metric_name_ok(&reg.name) {
            out.push(violation(
                "WFL004",
                file,
                t,
                format!(
                    "metric name {:?} does not match wfdiff_[a-z0-9_]+ \
                     (lowercase, wfdiff_ prefix)",
                    reg.name
                ),
            ));
        }
        let required = match reg.kind {
            "counter" => Some("_total"),
            "histogram" => Some("_seconds"),
            _ => None,
        };
        if let Some(suffix) = required {
            if !reg.name.ends_with(suffix) {
                out.push(violation(
                    "WFL004",
                    file,
                    t,
                    format!("{} metric {:?} must end with `{suffix}`", reg.kind, reg.name),
                ));
            }
        }
    }
    // Exactly-once registration.
    let mut first: BTreeMap<&str, &Registration> = BTreeMap::new();
    for reg in &regs {
        if let Some(prev) = first.get(reg.name.as_str()) {
            let file = &files[reg.file_idx];
            let t = &file.tokens[reg.token_idx];
            let prev_file = &files[prev.file_idx];
            let prev_tok = &prev_file.tokens[prev.token_idx];
            out.push(violation(
                "WFL004",
                file,
                t,
                format!(
                    "metric {:?} registered more than once (first at {}:{})",
                    reg.name, prev_file.rel_path, prev_tok.line
                ),
            ));
        } else {
            first.insert(reg.name.as_str(), reg);
        }
    }
}

/// Finds `head(..)` / `counter_head_sample(..)` / `gauge_head_sample(..)`
/// call sites and extracts `(name, kind)`.  Skips the helpers' own
/// definitions and the wrapper-internal `head(out, name, ...)` forwarding
/// (bare-`name` second argument); any other non-literal name is a violation
/// because the rule cannot verify what it registers.
fn collect_registrations(
    file_idx: usize,
    file: &SourceFile,
    regs: &mut Vec<Registration>,
    out: &mut Vec<Violation>,
) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let fixed_kind = match t.text.as_str() {
            "head" => None,
            "counter_head_sample" => Some("counter"),
            "gauge_head_sample" => Some("gauge"),
            _ => continue,
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Skip the definition (`fn head(`) and method calls (`x.head(` does
        // not exist in this codebase, but be precise anyway).
        if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('.')) {
            continue;
        }
        // The name is the second argument: skip past the first top-level `,`.
        let Some(comma) = arg_comma(toks, i + 1, i + 1) else {
            continue;
        };
        let Some(name_tok) = toks.get(comma + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Str {
            // Wrapper forwarding: `head(out, name, "counter", help)` inside
            // counter_head_sample/gauge_head_sample.
            if name_tok.is_ident("name") {
                continue;
            }
            out.push(violation(
                "WFL004",
                file,
                name_tok,
                format!("metric name passed to {} is not a string literal", t.text),
            ));
            continue;
        }
        let kind = match fixed_kind {
            Some(k) => k,
            None => {
                // `head(out, name, kind, help)` — kind is the third argument.
                let Some(comma2) = arg_comma(toks, i + 1, comma) else {
                    continue;
                };
                match toks.get(comma2 + 1) {
                    Some(k) if k.kind == TokenKind::Str => match k.text.as_str() {
                        "counter" => "counter",
                        "gauge" => "gauge",
                        "histogram" => "histogram",
                        other => {
                            out.push(violation(
                                "WFL004",
                                file,
                                k,
                                format!(
                                    "unknown Prometheus type {other:?} (expected counter, \
                                     gauge or histogram)"
                                ),
                            ));
                            continue;
                        }
                    },
                    _ => {
                        out.push(violation(
                            "WFL004",
                            file,
                            name_tok,
                            "metric kind passed to head is not a string literal".to_owned(),
                        ));
                        continue;
                    }
                }
            }
        };
        regs.push(Registration {
            file_idx,
            token_idx: comma + 1,
            name: name_tok.text.clone(),
            kind,
        });
    }
}

/// With `toks[open]` == the call's `(`, returns the index of the first
/// argument-separating comma (depth 1 of that group) strictly after `after`.
fn arg_comma(toks: &[Token], open: usize, after: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            "," if depth == 1 && j > after => return Some(j),
            _ => {}
        }
    }
    None
}

fn metric_name_ok(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("wfdiff_") else {
        return false;
    };
    !rest.is_empty()
        && rest.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

// ---------------------------------------------------------------------------
// WFL005 — error-status exhaustiveness
// ---------------------------------------------------------------------------

/// Error enums whose variants must all be named in the error→status map.
const TRACKED_ENUMS: [&str; 3] = ["ServiceError", "StoreError", "PersistError"];

fn wfl005_error_status(files: &[SourceFile], out: &mut Vec<Violation>) {
    // 1. Extract variant lists from enum declarations anywhere in the set.
    let mut variants: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for file in files {
        for (i, t) in file.tokens.iter().enumerate() {
            if !t.is_ident("enum") {
                continue;
            }
            let Some(name) = file.tokens.get(i + 1) else { continue };
            let Some(&tracked) = TRACKED_ENUMS.iter().find(|e| name.is_ident(e)) else {
                continue;
            };
            if let Some(vs) = enum_variants(&file.tokens, i + 2) {
                variants.insert(tracked, vs);
            }
        }
    }
    // 2. Find the error→status map: the file ending src/serve/api.rs.  A
    //    fixture set without it has nothing to check.
    let Some(api) = files.iter().find(|f| f.rel_path.ends_with("src/serve/api.rs")) else {
        return;
    };
    // 3. Every `Enum::Variant` must be named in api.rs' non-test tokens.
    for (enum_name, vs) in &variants {
        let mentioned: Vec<&Token> =
            api.tokens.iter().filter(|t| !t.in_test && t.is_ident(enum_name)).collect();
        if mentioned.is_empty() {
            out.push(Violation {
                rule: "WFL005",
                file: api.rel_path.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "enum {enum_name} has no mapping in the error-to-status map \
                     (no mention in serve/api.rs)"
                ),
            });
            continue;
        }
        let anchor = mentioned[0];
        for v in vs {
            let named = api.tokens.windows(4).any(|w| {
                !w[0].in_test
                    && w[0].is_ident(enum_name)
                    && w[1].is_punct(':')
                    && w[2].is_punct(':')
                    && w[3].is_ident(v)
            });
            if !named {
                out.push(Violation {
                    rule: "WFL005",
                    file: api.rel_path.clone(),
                    line: anchor.line,
                    col: anchor.col,
                    message: format!(
                        "{enum_name}::{v} is not named in the error-to-status map; add it \
                         so a new variant cannot silently fall through to a default status"
                    ),
                });
            }
        }
    }
}

/// With `toks[open]` == `{` of an enum body, returns the variant names.
fn enum_variants(toks: &[Token], open: usize) -> Option<Vec<String>> {
    if !toks.get(open)?.is_punct('{') {
        return None;
    }
    let mut vs = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => {
                    depth += 1;
                    if depth == 1 {
                        expect_variant = true;
                    }
                }
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(vs);
                    }
                }
                "," if depth == 1 => expect_variant = true,
                "#" if depth == 1 => { /* attribute on the next variant */ }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && depth == 1 && expect_variant {
            vs.push(t.text.clone());
            expect_variant = false;
        }
        j += 1;
    }
    Some(vs)
}
