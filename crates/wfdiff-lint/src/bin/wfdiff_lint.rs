//! The `wfdiff_lint` command-line interface.
//!
//! ```text
//! wfdiff_lint check [--root DIR] [--json FILE] [--allow RULE]... [--deny RULE]...
//! wfdiff_lint list-rules
//! ```
//!
//! Exit codes follow the workspace convention (`store_tool` set it): `0`
//! clean, `1` violations found, `2` usage or I/O error.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;
use wfdiff_lint::engine::{check_workspace, CheckConfig};
use wfdiff_lint::report::{render_human, render_json};
use wfdiff_lint::rules::{rule_info, RULES};

const USAGE: &str = "\
wfdiff_lint — workspace invariant checker (rules WFL000-WFL005)

USAGE:
    wfdiff_lint check [--root DIR] [--json FILE] [--allow RULE]... [--deny RULE]...
    wfdiff_lint list-rules

COMMANDS:
    check         walk crates/*/src/**/*.rs and report invariant violations
    list-rules    print every rule ID with its description

OPTIONS (check):
    --root DIR    workspace root to scan (default: current directory)
    --json FILE   also write the report as JSON to FILE
    --allow RULE  disable a rule entirely (repeatable)
    --deny RULE   ignore lint_allow.toml entries for a rule (repeatable)

EXIT CODES:
    0  clean        1  violations found        2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("list-rules") => {
            for r in RULES {
                println!("{}  {:<28} {}", r.id, r.name, r.summary);
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut config = CheckConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--json" => match it.next() {
                Some(file) => json_path = Some(PathBuf::from(file)),
                None => return usage_error("--json requires a file path"),
            },
            "--allow" | "--deny" => {
                let Some(rule) = it.next() else {
                    return usage_error(&format!("{arg} requires a rule ID"));
                };
                let rule = rule.to_uppercase();
                if rule_info(&rule).is_none() {
                    return usage_error(&format!(
                        "unknown rule `{rule}` (see `wfdiff_lint list-rules`)"
                    ));
                }
                if arg == "--allow" {
                    config.allowed_rules.push(rule);
                } else {
                    config.denied_rules.push(rule);
                }
            }
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let violations = match check_workspace(&root, &config) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, render_json(&violations)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if violations.is_empty() {
        println!("wfdiff_lint: clean ({} rules)", RULES.len());
        ExitCode::SUCCESS
    } else {
        print!("{}", render_human(&violations));
        println!("wfdiff_lint: {} violation(s)", violations.len());
        ExitCode::from(1)
    }
}
