//! The checked-in allowlist (`lint_allow.toml`) and its parser.
//!
//! The file is a burn-down list, not an escape hatch: every entry must carry
//! a non-empty `justification`, and entries that no longer match anything in
//! the tree are themselves reported (rule `WFL000`) so the list can only
//! shrink honestly.
//!
//! We parse a deliberately small TOML subset — `[[allow]]` tables with
//! `key = "string"` pairs — because the workspace has no registry access and
//! the lint crate is dependency-free by design.

use std::fmt;

/// One `[[allow]]` entry from `lint_allow.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID the entry suppresses, e.g. `"WFL003"`.
    pub rule: String,
    /// Workspace-relative file path the entry applies to, `/`-separated.
    pub file: String,
    /// Substring that must occur in the flagged line's source text.
    pub pattern: String,
    /// Human rationale; must be non-empty.
    pub justification: String,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line in `lint_allow.toml`.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint_allow.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the TOML-subset allowlist format.
///
/// Accepted lines: blank, `#` comments, `[[allow]]` headers, and
/// `key = "value"` pairs with basic `\"`/`\\` escapes.  Every entry must
/// define `rule`, `file`, `pattern` and a non-empty `justification`.
pub fn parse_allowlist(source: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<PartialEntry> = None;
    let mut open_line = 0u32;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(p.finish(open_line)?);
            }
            current = Some(PartialEntry::default());
            open_line = lineno;
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("expected `[[allow]]` or `key = \"value\"`, got `{line}`"),
            });
        };
        let Some(p) = current.as_mut() else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("`{key}` outside any [[allow]] table"),
            });
        };
        let slot = match key {
            "rule" => &mut p.rule,
            "file" => &mut p.file,
            "pattern" => &mut p.pattern,
            "justification" => &mut p.justification,
            other => {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("unknown key `{other}`"),
                });
            }
        };
        if slot.is_some() {
            return Err(AllowParseError {
                line: lineno,
                message: format!("duplicate key `{key}`"),
            });
        }
        *slot = Some(value);
    }
    if let Some(p) = current.take() {
        entries.push(p.finish(open_line)?);
    }
    Ok(entries)
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<String>,
    file: Option<String>,
    pattern: Option<String>,
    justification: Option<String>,
}

impl PartialEntry {
    fn finish(self, open_line: u32) -> Result<AllowEntry, AllowParseError> {
        let missing = |what: &str| AllowParseError {
            line: open_line,
            message: format!("[[allow]] entry is missing `{what}`"),
        };
        let entry = AllowEntry {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            file: self.file.ok_or_else(|| missing("file"))?,
            pattern: self.pattern.ok_or_else(|| missing("pattern"))?,
            justification: self.justification.ok_or_else(|| missing("justification"))?,
        };
        if entry.justification.trim().is_empty() {
            return Err(AllowParseError {
                line: open_line,
                message: "justification must be non-empty".to_owned(),
            });
        }
        Ok(entry)
    }
}

/// Parses `key = "value"`, returning `(key, unescaped value)`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = inner.chars();
    loop {
        match chars.next()? {
            '"' => break,
            '\\' => match chars.next()? {
                '"' => value.push('"'),
                '\\' => value.push('\\'),
                'n' => value.push('\n'),
                't' => value.push('\t'),
                other => {
                    value.push('\\');
                    value.push(other);
                }
            },
            c => value.push(c),
        }
    }
    let trailing: String = chars.collect();
    let trailing = trailing.trim();
    if !trailing.is_empty() && !trailing.starts_with('#') {
        return None;
    }
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_escapes() {
        let src = r#"
# burn-down list
[[allow]]
rule = "WFL003"
file = "crates/wfdiff-pdiffview/src/wal.rs"
pattern = "expect(\"4 bytes\")"  # trailing comment
justification = "length prefix is validated two lines above"

[[allow]]
rule = "WFL001"
file = "crates/wfdiff-pdiffview/src/persist.rs"
pattern = "fs::read_to_string"
justification = "read-only probe; crash cannot tear a read"
"#;
        let entries = parse_allowlist(src).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].pattern, "expect(\"4 bytes\")");
        assert_eq!(entries[1].rule, "WFL001");
    }

    #[test]
    fn rejects_missing_justification() {
        let src = "[[allow]]\nrule = \"WFL003\"\nfile = \"f.rs\"\npattern = \"x\"\n";
        let err = parse_allowlist(src).expect_err("must fail");
        assert!(err.message.contains("justification"));
    }

    #[test]
    fn rejects_empty_justification() {
        let src = "[[allow]]\nrule = \"WFL003\"\nfile = \"f.rs\"\npattern = \"x\"\njustification = \"  \"\n";
        let err = parse_allowlist(src).expect_err("must fail");
        assert!(err.message.contains("non-empty"));
    }

    #[test]
    fn rejects_stray_keys_and_garbage() {
        assert!(parse_allowlist("rule = \"WFL003\"\n").is_err());
        assert!(parse_allowlist("[[allow]]\nwat\n").is_err());
        assert!(parse_allowlist("[[allow]]\nbogus = \"x\"\n").is_err());
    }

    #[test]
    fn empty_input_is_ok() {
        assert_eq!(parse_allowlist("# nothing here\n").expect("ok"), vec![]);
    }
}
