//! A lightweight Rust tokenizer with line/column tracking and test-region
//! detection.
//!
//! This is **not** a full Rust lexer — it is exactly the subset the rule
//! engine needs to scan source without being fooled by non-code bytes:
//!
//! * line comments, nested block comments and doc comments are dropped,
//! * string literals (plain, raw with any `#` count, byte, byte-raw) become
//!   single [`TokenKind::Str`] tokens carrying their inner text, so
//!   `"unwrap()"` inside a string can never look like a call,
//! * char literals are distinguished from lifetimes,
//! * numbers collapse to one token,
//! * everything else is an identifier or a single-char punctuation token.
//!
//! A second pass ([`mark_test_regions`]) flags every token that lives inside
//! `#[cfg(test)]`-gated items, `#[test]` functions or `mod tests { ... }`
//! blocks, so rules can skip test code without understanding the grammar.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// A string literal (plain, raw, byte or byte-raw); `text` holds the
    /// inner bytes without quotes/hashes, un-unescaped.
    Str,
    /// A character or byte literal.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A lifetime (`'a`), without the leading quote.
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Identifier text, punctuation character or literal contents.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Whether the token lies inside a detected test region.
    pub in_test: bool,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token of exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && {
            let mut it = self.text.chars();
            it.next() == Some(ch)
        }
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `source`.  Never fails: unterminated literals simply swallow
/// the rest of the file (the rules then see fewer tokens, which is the safe
/// direction for a checker that reports *violations*, not proofs).
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor { chars: source.chars().collect(), i: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw / byte string prefixes and raw identifiers.
        if c == 'r' || c == 'b' {
            if let Some(token) = lex_prefixed(&mut cur, line, col) {
                out.push(token);
                continue;
            }
        }
        if c == '"' {
            cur.bump();
            out.push(lex_plain_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            out.push(lex_ident(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col, in_test: false });
    }
    mark_test_regions(&mut out);
    out
}

fn lex_ident(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::Ident, text, line, col, in_test: false }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        let float_dot =
            c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.');
        if !is_ident_continue(c) && !float_dot {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::Num, text, line, col, in_test: false }
}

/// Handles tokens starting with `r` or `b`: raw strings `r"`/`r#"`, byte
/// strings `b"`, byte-raw `br#"`, byte chars `b'`, and raw identifiers
/// `r#ident`.  Returns `None` when the prefix turns out to be a plain
/// identifier (e.g. `runs`), leaving the cursor untouched.
fn lex_prefixed(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let c0 = cur.peek(0)?;
    // How many prefix chars before a possible quote/hash sequence.
    let (skip, rest) = match (c0, cur.peek(1)) {
        ('r', Some('"')) => (1, '"'),
        ('r', Some('#')) => (1, '#'),
        ('b', Some('"')) => (1, '"'),
        ('b', Some('\'')) => (1, '\''),
        ('b', Some('r')) if matches!(cur.peek(2), Some('"') | Some('#')) => {
            (2, cur.peek(2).unwrap_or('"'))
        }
        _ => return None,
    };
    if rest == '\'' {
        // Byte char literal b'x'.
        cur.bump(); // b
        return Some(lex_quote(cur, line, col));
    }
    if rest == '"' {
        for _ in 0..=skip {
            cur.bump(); // prefix chars + opening quote
        }
        if cur.chars.get(cur.i.wrapping_sub(1)).copied() == Some('"') {
            // `r"` / `b"` with zero hashes is still raw for `r`, plain-ish
            // for `b`; escapes only matter for non-raw, but treating `b"`
            // as escape-aware matches the grammar.
            if c0 == 'b' && skip == 1 {
                return Some(lex_plain_string(cur, line, col));
            }
            return Some(lex_raw_string(cur, line, col, 0));
        }
        return None;
    }
    // rest == '#': raw string with hashes, or a raw identifier r#name.
    let mut hashes = 0usize;
    while cur.peek(skip + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(skip + hashes) {
        Some('"') => {
            for _ in 0..(skip + hashes + 1) {
                cur.bump();
            }
            Some(lex_raw_string(cur, line, col, hashes))
        }
        Some(c) if c0 == 'r' && hashes == 1 && is_ident_start(c) => {
            cur.bump(); // r
            cur.bump(); // #
            Some(lex_ident(cur, line, col))
        }
        _ => None,
    }
}

fn lex_plain_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push(c);
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            _ => text.push(c),
        }
    }
    Token { kind: TokenKind::Str, text, line, col, in_test: false }
}

fn lex_raw_string(cur: &mut Cursor, line: u32, col: u32, hashes: usize) -> Token {
    let mut text = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    text.push(c);
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    Token { kind: TokenKind::Str, text, line, col, in_test: false }
}

/// Lexes a `'`-introduced token: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    cur.bump(); // the opening quote
                // Lifetime: 'ident not closed by a quote right after one char.
    if cur.peek(0).is_some_and(is_ident_start) && cur.peek(1) != Some('\'') {
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        return Token { kind: TokenKind::Lifetime, text, line, col, in_test: false };
    }
    // Char literal, possibly escaped.
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                text.push(c);
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            _ => text.push(c),
        }
    }
    Token { kind: TokenKind::Char, text, line, col, in_test: false }
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Flags every token inside `#[cfg(test)]` items, `#[test]` functions and
/// `mod tests { ... }` blocks with `in_test = true`.
///
/// The attribute check is deliberately conservative in the *safe* direction
/// for each construct: `cfg(any(test, ...))` counts as a test region (its
/// code never ships), while `cfg(not(test))` and `cfg_attr(test, ...)` do
/// not (their code does).
pub fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    let mut pending_test_attr: Option<usize> = None;
    while i < tokens.len() {
        // Inner attribute `#![...]`: skip, never opens an item.
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            i = skip_group(tokens, i + 2, '[', ']');
            continue;
        }
        // Outer attribute `#[...]`.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let end = skip_group(tokens, i + 1, '[', ']');
            if attr_is_test(&tokens[i + 2..end.saturating_sub(1)]) {
                pending_test_attr.get_or_insert(i);
            }
            i = end;
            continue;
        }
        if let Some(start) = pending_test_attr {
            // The attribute covers the next item: everything up to the end
            // of its `{ ... }` block (or its terminating `;`).
            let item_end = item_end(tokens, i);
            for t in tokens[start..item_end].iter_mut() {
                t.in_test = true;
            }
            pending_test_attr = None;
            i = item_end;
            continue;
        }
        // `mod tests { ... }` without an (already-handled) cfg attribute.
        if tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let end = skip_group(tokens, i + 2, '{', '}');
            for t in tokens[i..end].iter_mut() {
                t.in_test = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// True when attribute body tokens denote a test-only item: exactly `test`,
/// or a `cfg(...)` group that mentions `test` and never `not`.
fn attr_is_test(body: &[Token]) -> bool {
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    if body.first().is_some_and(|t| t.is_ident("cfg"))
        && body.get(1).is_some_and(|t| t.is_punct('('))
    {
        let mentions_test = body.iter().any(|t| t.is_ident("test"));
        let mentions_not = body.iter().any(|t| t.is_ident("not"));
        return mentions_test && !mentions_not;
    }
    false
}

/// Returns the index one past the end of the item starting at `i`: past the
/// matching `}` of its first depth-0 `{`, or past its first depth-0 `;`.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut depth_round = 0i32;
    let mut depth_square = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => depth_round += 1,
                ")" => depth_round -= 1,
                "[" => depth_square += 1,
                "]" => depth_square -= 1,
                "{" if depth_round == 0 && depth_square == 0 => {
                    return skip_group(tokens, j, '{', '}');
                }
                ";" if depth_round == 0 && depth_square == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Given `tokens[open_idx]` == the opening delimiter, returns the index one
/// past its matching closer (or `tokens.len()` when unbalanced).
fn skip_group(tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn comments_and_strings_produce_no_code_tokens() {
        let src = r###"
// let x = a.unwrap();
/* nested /* block */ comment with panic!() */
let s = "call .unwrap() here";
let r = r#"raw "quoted" unwrap()"#;
let b = b"bytes unwrap()";
"###;
        let tokens = lex(src);
        assert!(!idents(&tokens).contains(&"unwrap"));
        assert!(!idents(&tokens).contains(&"panic"));
        let strs: Vec<&str> =
            tokens.iter().filter(|t| t.kind == TokenKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[1].contains("\"quoted\""), "raw string keeps inner quotes: {:?}", strs[1]);
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let tokens = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&str> =
            tokens.iter().filter(|t| t.kind == TokenKind::Char).map(|t| t.text.as_str()).collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let tokens = lex("a\n  bb\n");
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_mod_is_marked_as_test_region() {
        let src = r#"
fn live() { work(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn also_live() {}
"#;
        let tokens = lex(src);
        let unwrap = tokens.iter().find(|t| t.is_ident("unwrap")).expect("lexed");
        assert!(unwrap.in_test);
        let live = tokens.iter().find(|t| t.is_ident("live")).expect("lexed");
        assert!(!live.in_test);
        let also = tokens.iter().find(|t| t.is_ident("also_live")).expect("lexed");
        assert!(!also.in_test);
    }

    #[test]
    fn test_attribute_marks_only_its_function() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b(); }";
        let tokens = lex(src);
        assert!(tokens.iter().find(|t| t.is_ident("unwrap")).expect("lexed").in_test);
        assert!(!tokens.iter().find(|t| t.is_ident("live")).expect("lexed").in_test);
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_are_not_test_regions() {
        let src =
            "#[cfg(not(test))]\nfn live() {}\n#[cfg_attr(test, allow(dead_code))]\nfn also() {}";
        let tokens = lex(src);
        assert!(tokens.iter().all(|t| !t.in_test));
    }

    #[test]
    fn mod_tests_without_cfg_is_marked() {
        let src = "mod tests { fn helper() { x.unwrap(); } }\nfn live() {}";
        let tokens = lex(src);
        assert!(tokens.iter().find(|t| t.is_ident("unwrap")).expect("lexed").in_test);
        assert!(!tokens.iter().find(|t| t.is_ident("live")).expect("lexed").in_test);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let tokens = lex("let r#fn = 1; let rx = r");
        assert!(tokens.iter().any(|t| t.is_ident("fn")));
        assert!(tokens.iter().any(|t| t.is_ident("rx")));
    }
}
