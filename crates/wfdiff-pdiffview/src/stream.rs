//! Streaming run ingestion: building a run *while it executes* from ordered
//! node-lifecycle events.
//!
//! A workflow engine reports one event per state transition of a node
//! instance — `started`, then exactly one of `completed` / `error` /
//! `cancelled` — following the node-state legality of dashflow's
//! `GraphExecution` specification: a node may only start once every one of
//! its predecessors has completed, and a terminal state is absorbing.
//! [`PartialRun`] consumes those events, validates each against the
//! specification *as it arrives* (unknown label pairs, double starts,
//! events after a terminal state and malformed predecessor lists are all
//! rejected with a typed [`StreamError`] and leave the builder unchanged),
//! and maintains the [`PrefixProfile`] that
//! [`WorkflowDiff::prefix_distance`](wfdiff_core::WorkflowDiff::prefix_distance)
//! turns into a certified, monotone lower bound on the final run's distance
//! to any reference run — the quantity the service layer's drift monitor
//! compares against cluster radii.
//!
//! Node instances are *declared by their `started` events*, in order: event
//! `started { node: i }` must carry `i ==` the number of nodes declared so
//! far, its label must name a specification node, and its predecessor edges
//! must instantiate specification edges (or loop back-edges, which separate
//! iterations and are not leaves).  Nothing about the eventual shape of the
//! run is known up front — which is exactly why the prefix bound is the
//! strongest sound statement a monitor can make.
//!
//! Once every declared node has completed, [`PartialRun::finalize`]
//! materialises the graph and validates it end-to-end through
//! [`Run::from_graph`] — the same Algorithm 2/5 replay a whole-run insert
//! goes through, so a streamed run and a whole run are indistinguishable
//! once stored.  A stream holding an `error` or `cancelled` node can never
//! finalize; it stays in-flight until an operator removes it (see the
//! "stuck in-flight runs" runbook entry in `docs/OPERATIONS.md`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use wfdiff_core::{PrefixEdgeClass, PrefixProfile};
use wfdiff_graph::{Label, LabeledDigraph};
use wfdiff_sptree::{Run, SpTreeError, Specification};

/// The lifecycle transition an event reports (the wire value is the variant
/// name, e.g. `"Started"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The node instance became active (and is hereby *declared*).
    Started,
    /// The node instance finished successfully.
    Completed,
    /// The node instance failed.
    Error,
    /// The node instance was cancelled.
    Cancelled,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Started => "started",
            EventKind::Completed => "completed",
            EventKind::Error => "error",
            EventKind::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// One node-lifecycle event of an executing run, as reported by the engine
/// (and as serialised in `POST /runs/stream` bodies and kind-5 WAL records).
///
/// `label` and `preds` are only meaningful for [`EventKind::Started`] — a
/// `Started { node }` event *declares* instance `node`: `node` must equal
/// the number of instances declared so far, `label` must name a
/// specification node, and every predecessor must be an already-completed
/// instance whose label pair with `label` is a specification edge or a loop
/// back-edge.  Terminal events ignore both fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEvent {
    /// Which transition happened.
    pub kind: EventKind,
    /// Zero-based instance index; `Started` indices must arrive
    /// contiguously.
    pub node: usize,
    /// For `Started`: the specification node this instance executes.
    #[serde(default)]
    pub label: String,
    /// For `Started`: indices of the instances whose outputs this one
    /// consumes; empty exactly for the source instance.
    #[serde(default)]
    pub preds: Vec<usize>,
}

impl StreamEvent {
    /// A `Started` event declaring instance `node`.
    pub fn started(node: usize, label: impl Into<String>, preds: Vec<usize>) -> StreamEvent {
        StreamEvent { kind: EventKind::Started, node, label: label.into(), preds }
    }

    /// A `Completed` event for instance `node`.
    pub fn completed(node: usize) -> StreamEvent {
        StreamEvent { kind: EventKind::Completed, node, label: String::new(), preds: Vec::new() }
    }

    /// An `Error` event for instance `node`.
    pub fn error(node: usize) -> StreamEvent {
        StreamEvent { kind: EventKind::Error, node, label: String::new(), preds: Vec::new() }
    }

    /// A `Cancelled` event for instance `node`.
    pub fn cancelled(node: usize) -> StreamEvent {
        StreamEvent { kind: EventKind::Cancelled, node, label: String::new(), preds: Vec::new() }
    }
}

/// The lifecycle state of one declared node instance.  `Completed`, `Error`
/// and `Cancelled` are absorbing: any further event on the instance is a
/// [`StreamError::NotActive`] conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum NodeState {
    /// Started, not yet terminal.
    Active,
    /// Finished successfully.
    Completed,
    /// Failed.
    Error,
    /// Cancelled.
    Cancelled,
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::Active => "active",
            NodeState::Completed => "completed",
            NodeState::Error => "error",
            NodeState::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Why an event (or a finalisation) was rejected.  Structural errors mean
/// the event could never be valid for this stream; conflicts mean it clashes
/// with the stream's current state (the HTTP layer maps them to 400 and 409
/// respectively, see [`StreamError::is_conflict`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A `started` event skipped ahead: instances must be declared
    /// contiguously.
    NonContiguousNode {
        /// The index the event carried.
        node: usize,
        /// The index the stream expected next.
        expected: usize,
    },
    /// A `started` event re-declared an existing instance.
    DuplicateStart {
        /// The already-declared index.
        node: usize,
    },
    /// An event referenced an instance that was never declared.
    UnknownNode {
        /// The undeclared index.
        node: usize,
    },
    /// A terminal event hit an instance that is not active.
    NotActive {
        /// The instance index.
        node: usize,
        /// The state it is actually in.
        state: NodeState,
    },
    /// The first instance must execute the specification source, with no
    /// predecessors.
    BadSource {
        /// The label the event carried.
        label: String,
        /// The specification's source label.
        expected: String,
    },
    /// A non-source instance declared no predecessors, which would make the
    /// run graph disconnected.
    MissingPreds {
        /// The instance index.
        node: usize,
    },
    /// A predecessor index is not an earlier declared instance.
    BadPred {
        /// The instance index.
        node: usize,
        /// The offending predecessor index.
        pred: usize,
    },
    /// The same predecessor was listed twice (runs are simple graphs).
    DuplicatePred {
        /// The instance index.
        node: usize,
        /// The repeated predecessor index.
        pred: usize,
    },
    /// A predecessor has not completed, so the dependency edge cannot exist
    /// yet (`GraphExecution`'s safety invariant).
    PredNotCompleted {
        /// The instance index.
        node: usize,
        /// The not-yet-completed predecessor.
        pred: usize,
    },
    /// The label pair of a dependency edge matches neither a specification
    /// edge nor a loop back-edge — no completion of this prefix could ever
    /// validate.
    UnknownEdge {
        /// Source label of the offending edge.
        from: String,
        /// Target label of the offending edge.
        to: String,
    },
    /// Finalisation was requested while instances are still active or
    /// terminally failed; the counts say which.
    Incomplete {
        /// Instances still active.
        active: usize,
        /// Instances in `error` or `cancelled` state (the stream can never
        /// finalize while these exist).
        failed: usize,
    },
    /// The completed event sequence does not assemble into a valid run of
    /// the specification (end-to-end validation at finalisation).
    InvalidRun(SpTreeError),
}

impl StreamError {
    /// `true` for state conflicts (HTTP 409): the event might have been
    /// valid in another stream state.  `false` for structural errors (HTTP
    /// 400): the event could never be valid.
    pub fn is_conflict(&self) -> bool {
        matches!(
            self,
            StreamError::DuplicateStart { .. }
                | StreamError::NotActive { .. }
                | StreamError::PredNotCompleted { .. }
                | StreamError::Incomplete { .. }
        )
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NonContiguousNode { node, expected } => {
                write!(f, "started node {node} out of order (expected {expected})")
            }
            StreamError::DuplicateStart { node } => {
                write!(f, "node {node} was already started")
            }
            StreamError::UnknownNode { node } => {
                write!(f, "event references undeclared node {node}")
            }
            StreamError::NotActive { node, state } => {
                write!(f, "node {node} is {state}, not active")
            }
            StreamError::BadSource { label, expected } => {
                write!(f, "first node must be the source `{expected}`, got `{label}`")
            }
            StreamError::MissingPreds { node } => {
                write!(f, "non-source node {node} declared no predecessors")
            }
            StreamError::BadPred { node, pred } => {
                write!(f, "node {node} lists predecessor {pred}, which is not an earlier node")
            }
            StreamError::DuplicatePred { node, pred } => {
                write!(f, "node {node} lists predecessor {pred} twice")
            }
            StreamError::PredNotCompleted { node, pred } => {
                write!(f, "node {node} started before predecessor {pred} completed")
            }
            StreamError::UnknownEdge { from, to } => {
                write!(f, "`{from}` -> `{to}` is neither a specification edge nor a loop back-edge")
            }
            StreamError::Incomplete { active, failed } => {
                write!(f, "stream cannot finalize: {active} node(s) still active, {failed} failed")
            }
            StreamError::InvalidRun(e) => write!(f, "completed stream is not a valid run: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::InvalidRun(e) => Some(e),
            _ => None,
        }
    }
}

/// An in-flight streamed run: the event-sourced builder behind
/// `POST /runs/stream`.
///
/// Apply events with [`PartialRun::apply`]; each either commits atomically
/// or returns a [`StreamError`] leaving the builder untouched, so a batch
/// can be validated on a clone and swapped in only when every event is
/// accepted.  The embedded [`PrefixProfile`] is kept exactly in sync with
/// the declared dependency edges, ready for
/// [`prefix_distance`](wfdiff_core::WorkflowDiff::prefix_distance) at any
/// moment.
#[derive(Debug, Clone)]
pub struct PartialRun {
    spec: Arc<Specification>,
    profile: PrefixProfile,
    /// Validation copies of the legal label pairs (the profile holds the
    /// same sets privately; these let `apply` pre-check every edge of an
    /// event before mutating the profile).
    spec_edges: std::collections::HashSet<(Label, Label)>,
    loop_back: std::collections::HashSet<(Label, Label)>,
    labels: Vec<Label>,
    preds: Vec<Vec<usize>>,
    states: Vec<NodeState>,
    applied: u64,
}

impl PartialRun {
    /// Opens an empty stream against `spec`.
    pub fn new(spec: Arc<Specification>) -> PartialRun {
        let profile = PrefixProfile::new(&spec);
        let spec_edges = spec.edge_by_labels().into_keys().collect();
        let loop_back = spec.loop_back_labels();
        PartialRun {
            spec,
            profile,
            spec_edges,
            loop_back,
            labels: Vec::new(),
            preds: Vec::new(),
            states: Vec::new(),
            applied: 0,
        }
    }

    /// The specification the stream was opened against.
    pub fn spec(&self) -> &Arc<Specification> {
        &self.spec
    }

    /// The live prefix profile (completed leaves per specification edge).
    pub fn profile(&self) -> &PrefixProfile {
        &self.profile
    }

    /// Events applied so far — the sequence number of the next event.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Declared node instances.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// The state of a declared instance.
    pub fn state(&self, node: usize) -> Option<NodeState> {
        self.states.get(node).copied()
    }

    /// `true` once at least one instance is declared and every declared
    /// instance has completed — the only state [`PartialRun::finalize`]
    /// accepts.
    pub fn is_complete(&self) -> bool {
        !self.states.is_empty() && self.states.iter().all(|s| *s == NodeState::Completed)
    }

    /// Instances currently in `error` or `cancelled` state.
    pub fn failed_nodes(&self) -> usize {
        self.states.iter().filter(|s| matches!(s, NodeState::Error | NodeState::Cancelled)).count()
    }

    /// Applies one event.  On `Err` the builder is unchanged.
    pub fn apply(&mut self, event: &StreamEvent) -> Result<(), StreamError> {
        match event.kind {
            EventKind::Started => self.start(event.node, &event.label, &event.preds)?,
            EventKind::Completed => self.transition(event.node, NodeState::Completed)?,
            EventKind::Error => self.transition(event.node, NodeState::Error)?,
            EventKind::Cancelled => self.transition(event.node, NodeState::Cancelled)?,
        }
        self.applied += 1;
        Ok(())
    }

    fn start(&mut self, node: usize, label: &str, preds: &[usize]) -> Result<(), StreamError> {
        let expected = self.labels.len();
        if node < expected {
            return Err(StreamError::DuplicateStart { node });
        }
        if node > expected {
            return Err(StreamError::NonContiguousNode { node, expected });
        }
        let label = Label::new(label);
        if expected == 0 {
            let source = self.spec.graph().label(self.spec.sp().source()).clone();
            if !preds.is_empty() {
                return Err(StreamError::BadPred { node, pred: preds[0] });
            }
            if label != source {
                return Err(StreamError::BadSource {
                    label: label.to_string(),
                    expected: source.to_string(),
                });
            }
        } else {
            if preds.is_empty() {
                return Err(StreamError::MissingPreds { node });
            }
            let mut seen = std::collections::HashSet::new();
            for &pred in preds {
                if pred >= expected {
                    return Err(StreamError::BadPred { node, pred });
                }
                if !seen.insert(pred) {
                    return Err(StreamError::DuplicatePred { node, pred });
                }
                if self.states[pred] != NodeState::Completed {
                    return Err(StreamError::PredNotCompleted { node, pred });
                }
                let key = (self.labels[pred].clone(), label.clone());
                if !self.spec_edges.contains(&key) && !self.loop_back.contains(&key) {
                    return Err(StreamError::UnknownEdge {
                        from: key.0.to_string(),
                        to: key.1.to_string(),
                    });
                }
            }
        }
        // Every edge pre-validated: record into the profile (infallible now).
        for &pred in preds {
            let class = self.profile.record_edge(&self.labels[pred], &label);
            debug_assert!(
                matches!(class, Some(PrefixEdgeClass::Leaf | PrefixEdgeClass::LoopBack)),
                "pre-validated edge must classify"
            );
        }
        self.labels.push(label);
        self.preds.push(preds.to_vec());
        self.states.push(NodeState::Active);
        Ok(())
    }

    fn transition(&mut self, node: usize, to: NodeState) -> Result<(), StreamError> {
        match self.states.get(node).copied() {
            None => Err(StreamError::UnknownNode { node }),
            Some(NodeState::Active) => {
                self.states[node] = to;
                Ok(())
            }
            Some(state) => Err(StreamError::NotActive { node, state }),
        }
    }

    /// Materialises the completed stream as a fully validated [`Run`] — the
    /// same Algorithm 2/5 validation a whole-run insert goes through.
    /// Requires [`PartialRun::is_complete`]; streams with failed nodes can
    /// never finalize.
    pub fn finalize(&self) -> Result<Run, StreamError> {
        if !self.is_complete() {
            let active = self.states.iter().filter(|s| matches!(s, NodeState::Active)).count();
            return Err(StreamError::Incomplete { active, failed: self.failed_nodes() });
        }
        let mut graph = LabeledDigraph::new();
        let ids: Vec<_> = self.labels.iter().map(|l| graph.add_node(l.clone())).collect();
        for (node, preds) in self.preds.iter().enumerate() {
            for &pred in preds {
                graph.add_edge(ids[pred], ids[node]);
            }
        }
        Run::from_graph(&self.spec, graph).map_err(StreamError::InvalidRun)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_core::{UnitCost, WorkflowDiff};

    fn spec() -> Arc<Specification> {
        Arc::new(wfdiff_workloads::figures::fig2_specification())
    }

    fn started(node: usize, label: &str, preds: &[usize]) -> StreamEvent {
        StreamEvent::started(node, label, preds.to_vec())
    }

    fn completed(node: usize) -> StreamEvent {
        StreamEvent::completed(node)
    }

    /// Streams fig2's single-branch run 1 -> 2 -> 3 -> 6 -> 7 to completion.
    fn stream_branch(spec: &Arc<Specification>, branch: &str) -> PartialRun {
        let mut p = PartialRun::new(Arc::clone(spec));
        let labels = ["1", "2", branch, "6", "7"];
        for (i, label) in labels.iter().enumerate() {
            let preds: &[usize] = if i == 0 { &[] } else { &[i - 1] };
            p.apply(&started(i, label, preds)).unwrap();
            p.apply(&completed(i)).unwrap();
        }
        p
    }

    #[test]
    fn a_streamed_run_finalizes_to_the_same_run_as_a_whole_insert() {
        let spec = spec();
        let streamed = stream_branch(&spec, "3").finalize().unwrap();
        let mut g = LabeledDigraph::new();
        let ids: Vec<_> = ["1", "2", "3", "6", "7"].iter().map(|l| g.add_node(*l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let whole = Run::from_graph(&spec, g).unwrap();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        assert_eq!(engine.distance(&streamed, &whole).unwrap(), 0.0);
    }

    #[test]
    fn profile_tracks_leaves_and_prefix_bound_converges() {
        let spec = spec();
        let p = stream_branch(&spec, "3");
        assert_eq!(p.profile().completed_leaves(), 4);
        let reference = stream_branch(&spec, "5").finalize().unwrap();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        let prepared_ref = engine.prepare(&reference, None).unwrap();
        let bound = engine.prefix_distance(p.profile(), None, &prepared_ref, None).unwrap();
        let this = p.finalize().unwrap();
        let prepared = engine.prepare(&this, None).unwrap();
        let exact = engine.distance_prepared(&prepared, &prepared_ref, None).unwrap();
        assert!(bound > 0.0 && bound <= exact);
    }

    #[test]
    fn structural_errors_are_typed_and_leave_the_builder_unchanged() {
        let spec = spec();
        let mut p = PartialRun::new(Arc::clone(&spec));
        // Wrong source label.
        let err = p.apply(&started(0, "2", &[])).unwrap_err();
        assert!(matches!(err, StreamError::BadSource { .. }) && !err.is_conflict());
        // Non-contiguous declaration.
        let err = p.apply(&started(3, "2", &[0])).unwrap_err();
        assert!(matches!(err, StreamError::NonContiguousNode { expected: 0, .. }));
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.applied(), 0);

        p.apply(&started(0, "1", &[])).unwrap();
        // Terminal event on an undeclared node.
        assert!(matches!(
            p.apply(&completed(7)).unwrap_err(),
            StreamError::UnknownNode { node: 7 }
        ));
        // Successor starting before its predecessor completed: a conflict.
        let err = p.apply(&started(1, "2", &[0])).unwrap_err();
        assert!(matches!(err, StreamError::PredNotCompleted { node: 1, pred: 0 }));
        assert!(err.is_conflict());
        p.apply(&completed(0)).unwrap();
        // Unknown label pair.
        assert!(matches!(
            p.apply(&started(1, "7", &[0])).unwrap_err(),
            StreamError::UnknownEdge { .. }
        ));
        p.apply(&started(1, "2", &[0])).unwrap();
        // Double start and double completion.
        let err = p.apply(&started(1, "2", &[0])).unwrap_err();
        assert!(matches!(err, StreamError::DuplicateStart { node: 1 }) && err.is_conflict());
        p.apply(&completed(1)).unwrap();
        let err = p.apply(&completed(1)).unwrap_err();
        assert!(
            matches!(err, StreamError::NotActive { node: 1, state: NodeState::Completed })
                && err.is_conflict()
        );
        // Profile only holds the one accepted edge.
        assert_eq!(p.profile().completed_leaves(), 1);
    }

    #[test]
    fn failed_streams_never_finalize() {
        let spec = spec();
        let mut p = PartialRun::new(Arc::clone(&spec));
        p.apply(&started(0, "1", &[])).unwrap();
        p.apply(&StreamEvent::error(0)).unwrap();
        let err = p.finalize().unwrap_err();
        assert!(matches!(err, StreamError::Incomplete { active: 0, failed: 1 }));
        assert!(err.is_conflict());
        // Terminal states are absorbing: no resurrection.
        assert!(matches!(
            p.apply(&completed(0)).unwrap_err(),
            StreamError::NotActive { state: NodeState::Error, .. }
        ));
    }

    #[test]
    fn loop_back_edges_separate_iterations_without_counting_as_leaves() {
        let spec = spec();
        let mut p = PartialRun::new(Arc::clone(&spec));
        // Two loop iterations: 1 -> 2 -> 3 -> 6 =(back)=> 2 -> 4 -> 6 -> 7.
        let seq: [(&str, &[usize]); 8] = [
            ("1", &[]),
            ("2", &[0]),
            ("3", &[1]),
            ("6", &[2]),
            ("2", &[3]), // loop back-edge 6 -> 2
            ("4", &[4]),
            ("6", &[5]),
            ("7", &[6]),
        ];
        for (i, (label, preds)) in seq.iter().enumerate() {
            p.apply(&started(i, label, preds)).unwrap();
            p.apply(&completed(i)).unwrap();
        }
        // 7 declared edges, one of which is the back edge: 6 leaves.
        assert_eq!(p.profile().completed_leaves(), 6);
        p.finalize().unwrap();
    }

    #[test]
    fn events_round_trip_through_serde() {
        let events = vec![
            started(0, "1", &[]),
            completed(0),
            StreamEvent::error(3),
            StreamEvent::cancelled(4),
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<StreamEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
        assert!(json.contains("\"Started\""), "kind is the tagged wire field: {json}");
        // `label`/`preds` may be omitted for terminal events.
        let sparse: StreamEvent =
            serde_json::from_str("{\"kind\":\"Completed\",\"node\":2}").unwrap();
        assert_eq!(sparse, completed(2));
    }
}
