//! Import/export of specifications, runs and edit scripts.
//!
//! The PDiffView prototype of the paper stores specifications and runs as XML
//! documents.  Here JSON (via serde) is the primary interchange format —
//! round-trippable in both directions — and a small XML writer mirrors the
//! paper's storage format for export.
//!
//! # Descriptor format
//!
//! Both descriptors carry an explicit [`DESCRIPTOR_FORMAT`] version tag so
//! that persisted documents can be recognised (and rejected with a clear
//! error) after incompatible format changes.  Version 2 references
//! fork/loop subgraphs by **edge index** into the descriptor's `edges` vec
//! rather than by `(source-label, target-label)` pairs: label pairs are
//! ambiguous for the parallel multi-edges a specification may contain (two
//! `A → B` edges would collapse onto whichever edge a lookup map kept last),
//! whereas indices are bijective with the specification's edges.
//!
//! Everything rebuilt from a descriptor is validated: unknown edge indices,
//! out-of-range node indices and malformed structures surface as
//! [`SpTreeError`] values instead of panicking, so descriptors parsed from
//! untrusted or hand-edited input are safe to import.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use wfdiff_core::{EditScript, OpDirection};
use wfdiff_graph::{EdgeId, LabeledDigraph};
use wfdiff_sptree::{ControlKind, Run, SpTreeError, Specification};

/// Version tag of the descriptor JSON format produced by this module.
///
/// * **1** — historical: fork/loop subgraphs referenced edges by
///   `(source-label, target-label)` pairs, which is ambiguous for parallel
///   edges.  No longer readable.
/// * **2** — current: fork/loop subgraphs reference edges by index into the
///   descriptor's `edges` vec.
pub const DESCRIPTOR_FORMAT: u32 = 2;

fn check_format(found: u32, what: &str) -> Result<(), SpTreeError> {
    if found == DESCRIPTOR_FORMAT {
        Ok(())
    } else {
        Err(SpTreeError::Invariant(format!(
            "{what} has descriptor format {found}, but this build reads only format \
             {DESCRIPTOR_FORMAT}"
        )))
    }
}

/// Parses a descriptor document, diagnosing version mismatches.  The typed
/// parse runs first (no extra work for valid documents); a parsed value
/// whose `format` field (read through `format_of`) is not
/// [`DESCRIPTOR_FORMAT`] is rejected, and when the typed parse itself fails
/// the `format` field alone is probed, so an old-format document (whose
/// field types differ — v1 stored control edges as label pairs) is reported
/// as a version mismatch rather than a confusing `invalid type` error on
/// some inner field.
fn parse_versioned<T: for<'de> Deserialize<'de>>(
    json: &str,
    what: &str,
    format_of: impl Fn(&T) -> u32,
) -> Result<T, serde_json::Error> {
    /// Only the version tag; every other field is ignored.
    #[derive(Deserialize)]
    struct Probe {
        #[serde(default)]
        format: u32,
    }
    match serde_json::from_str::<T>(json) {
        Ok(value) if format_of(&value) != DESCRIPTOR_FORMAT => {
            Err(version_error(format_of(&value), what))
        }
        Ok(value) => Ok(value),
        Err(schema_error) => match serde_json::from_str::<Probe>(json) {
            Ok(probe) if probe.format != DESCRIPTOR_FORMAT => {
                Err(version_error(probe.format, what))
            }
            _ => Err(schema_error),
        },
    }
}

fn version_error(found: u32, what: &str) -> serde_json::Error {
    serde::de::Error::custom(format!(
        "{what} has descriptor format {found}, but this build reads only format \
         {DESCRIPTOR_FORMAT}"
    ))
}

/// A serialisable description of an SP-workflow specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecDescriptor {
    /// Descriptor format version; see [`DESCRIPTOR_FORMAT`].
    #[serde(default)]
    pub format: u32,
    /// Specification name.
    pub name: String,
    /// Edges as `(source-label, target-label)` pairs, in specification edge-id
    /// order.
    pub edges: Vec<(String, String)>,
    /// Fork subgraphs, each a list of indices into [`SpecDescriptor::edges`].
    pub forks: Vec<Vec<usize>>,
    /// Loop subgraphs, each a list of indices into [`SpecDescriptor::edges`].
    pub loops: Vec<Vec<usize>>,
}

impl SpecDescriptor {
    /// Extracts a descriptor from a built specification.
    pub fn from_specification(spec: &Specification) -> Self {
        let graph = spec.graph();
        let label = |n| graph.label(n).as_str().to_string();
        // The descriptor's edge list is emitted in edge-id order, so a
        // specification edge's descriptor index is exactly its dense id.
        let mut forks = Vec::new();
        let mut loops = Vec::new();
        for control in spec.controls() {
            let edges: Vec<usize> = control.edges.iter().map(|e| e.index()).collect();
            match control.kind {
                ControlKind::Fork => forks.push(edges),
                ControlKind::Loop => loops.push(edges),
            }
        }
        SpecDescriptor {
            format: DESCRIPTOR_FORMAT,
            name: spec.name().to_string(),
            edges: graph.edges().map(|(_, e)| (label(e.src), label(e.dst))).collect(),
            forks,
            loops,
        }
    }

    /// Builds the specification described by this descriptor.
    ///
    /// Every reference is validated: an unknown descriptor format or a
    /// control subgraph naming an edge index outside `0..edges.len()` is
    /// reported as an error, never trusted.
    pub fn to_specification(&self) -> Result<Specification, SpTreeError> {
        check_format(self.format, "specification descriptor")?;
        let mut graph = LabeledDigraph::new();
        let mut by_label = std::collections::HashMap::new();
        let mut node = |graph: &mut LabeledDigraph, l: &str| {
            *by_label.entry(l.to_string()).or_insert_with(|| graph.add_node(l))
        };
        let mut edge_ids = Vec::with_capacity(self.edges.len());
        for (from, to) in &self.edges {
            let u = node(&mut graph, from);
            let v = node(&mut graph, to);
            edge_ids.push(graph.add_edge(u, v));
        }
        let sp = wfdiff_graph::SpGraph::from_flow_network(graph)?;
        let resolve = |indices: &Vec<usize>| -> Result<BTreeSet<EdgeId>, SpTreeError> {
            indices
                .iter()
                .map(|&i| {
                    edge_ids.get(i).copied().ok_or_else(|| {
                        SpTreeError::Invariant(format!(
                            "control subgraph references edge index {i}, but the specification \
                             has only {} edges",
                            edge_ids.len()
                        ))
                    })
                })
                .collect()
        };
        let mut controls = Vec::new();
        for f in &self.forks {
            controls.push((ControlKind::Fork, resolve(f)?));
        }
        for l in &self.loops {
            controls.push((ControlKind::Loop, resolve(l)?));
        }
        Specification::new(self.name.clone(), sp, controls)
    }

    /// Serialises the descriptor to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("descriptors serialise")
    }

    /// Parses a descriptor from JSON, rejecting documents of any other
    /// [`DESCRIPTOR_FORMAT`] with an explicit version-mismatch error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        parse_versioned(json, "specification descriptor", |d: &Self| d.format)
    }

    /// Exports the specification as a small XML document, mirroring the
    /// storage format of the original prototype.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("<specification name=\"{}\">\n", xml_escape(&self.name)));
        for (from, to) in &self.edges {
            out.push_str(&format!(
                "  <edge from=\"{}\" to=\"{}\"/>\n",
                xml_escape(from),
                xml_escape(to)
            ));
        }
        for (tag, groups) in [("fork", &self.forks), ("loop", &self.loops)] {
            for group in groups {
                out.push_str(&format!("  <{tag}>\n"));
                for &i in group {
                    match self.edges.get(i) {
                        Some((from, to)) => out.push_str(&format!(
                            "    <edge index=\"{i}\" from=\"{}\" to=\"{}\"/>\n",
                            xml_escape(from),
                            xml_escape(to)
                        )),
                        None => out.push_str(&format!("    <edge index=\"{i}\"/>\n")),
                    }
                }
                out.push_str(&format!("  </{tag}>\n"));
            }
        }
        out.push_str("</specification>\n");
        out
    }
}

/// A serialisable description of a run: nodes are numbered and carry labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunDescriptor {
    /// Descriptor format version; see [`DESCRIPTOR_FORMAT`].
    #[serde(default)]
    pub format: u32,
    /// Name of the specification this run belongs to.
    pub spec: String,
    /// Node labels, indexed by node id.
    pub nodes: Vec<String>,
    /// Edges as pairs of node indices.
    pub edges: Vec<(usize, usize)>,
}

impl RunDescriptor {
    /// Extracts a descriptor from a run.
    pub fn from_run(run: &Run) -> Self {
        let graph = run.graph();
        RunDescriptor {
            format: DESCRIPTOR_FORMAT,
            spec: run.spec_name().to_string(),
            nodes: graph.nodes().map(|(_, n)| n.label.as_str().to_string()).collect(),
            edges: graph.edges().map(|(_, e)| (e.src.index(), e.dst.index())).collect(),
        }
    }

    /// Rebuilds the run (validating it against `spec`).
    ///
    /// Node indices in [`RunDescriptor::edges`] are bounds-checked against
    /// [`RunDescriptor::nodes`]; an out-of-range index from untrusted input
    /// is reported as [`SpTreeError::InvalidRun`] instead of panicking or
    /// silently misbuilding the graph.
    pub fn to_run(&self, spec: &Specification) -> Result<Run, SpTreeError> {
        check_format(self.format, "run descriptor")?;
        let mut graph = LabeledDigraph::new();
        for label in &self.nodes {
            graph.add_node(label.as_str());
        }
        for &(u, v) in &self.edges {
            if u >= self.nodes.len() || v >= self.nodes.len() {
                return Err(SpTreeError::InvalidRun {
                    what: format!(
                        "run edge ({u}, {v}) references a node index outside 0..{}",
                        self.nodes.len()
                    ),
                });
            }
            graph.add_edge(wfdiff_graph::NodeId::from(u), wfdiff_graph::NodeId::from(v));
        }
        Run::from_graph(spec, graph)
    }

    /// Serialises the descriptor to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("descriptors serialise")
    }

    /// Parses a descriptor from JSON, rejecting documents of any other
    /// [`DESCRIPTOR_FORMAT`] with an explicit version-mismatch error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        parse_versioned(json, "run descriptor", |d: &Self| d.format)
    }

    /// Exports the run as a small XML document.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("<run spec=\"{}\">\n", xml_escape(&self.spec)));
        for (i, label) in self.nodes.iter().enumerate() {
            out.push_str(&format!("  <node id=\"{i}\" label=\"{}\"/>\n", xml_escape(label)));
        }
        for (u, v) in &self.edges {
            out.push_str(&format!("  <edge from=\"{u}\" to=\"{v}\"/>\n"));
        }
        out.push_str("</run>\n");
        out
    }
}

/// Exports an edit script as XML: one `<insert>`/`<delete>` element per
/// operation with one `<label>` child per label along the operation's path.
/// (Earlier versions joined the labels with bare commas into a single
/// attribute, which is ambiguous when a label itself contains a comma.)
pub fn script_to_xml(script: &EditScript) -> String {
    let mut out = String::new();
    out.push_str(&format!("<editscript cost=\"{}\">\n", script.total_cost));
    for op in &script.ops {
        let tag = match op.direction {
            OpDirection::Insert => "insert",
            OpDirection::Delete => "delete",
        };
        out.push_str(&format!("  <{tag} cost=\"{}\">\n", op.cost));
        for l in &op.labels {
            out.push_str(&format!("    <label>{}</label>\n", xml_escape(l.as_str())));
        }
        out.push_str(&format!("  </{tag}>\n"));
    }
    out.push_str("</editscript>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_core::{UnitCost, WorkflowDiff};
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn spec_descriptor_roundtrips_through_json() {
        let spec = fig2_specification();
        let desc = SpecDescriptor::from_specification(&spec);
        assert_eq!(desc.format, DESCRIPTOR_FORMAT);
        let json = desc.to_json();
        let back = SpecDescriptor::from_json(&json).unwrap();
        assert_eq!(desc, back);
        let rebuilt = back.to_specification().unwrap();
        assert_eq!(rebuilt.stats(), spec.stats());
        assert!(rebuilt.tree().equivalent(spec.tree()));
    }

    #[test]
    fn run_descriptor_roundtrips_through_json() {
        let spec = fig2_specification();
        let run = fig2_run1(&spec);
        let desc = RunDescriptor::from_run(&run);
        let json = desc.to_json();
        let back = RunDescriptor::from_json(&json).unwrap();
        let rebuilt = back.to_run(&spec).unwrap();
        assert!(rebuilt.tree().equivalent(run.tree()));
        assert_eq!(rebuilt.edge_count(), run.edge_count());
    }

    #[test]
    fn unsupported_descriptor_formats_are_rejected() {
        let spec = fig2_specification();
        let mut desc = SpecDescriptor::from_specification(&spec);
        desc.format = 1;
        assert!(matches!(desc.to_specification(), Err(SpTreeError::Invariant(_))));
        let mut run_desc = RunDescriptor::from_run(&fig2_run1(&spec));
        run_desc.format = 0;
        assert!(matches!(run_desc.to_run(&spec), Err(SpTreeError::Invariant(_))));
        // A JSON document without a format field is rejected at parse time
        // with an explicit version message (serde default = 0).
        let json = desc.to_json().replace("\"format\": 1,", "");
        let err = SpecDescriptor::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("format 0"), "got {err}");
        // A genuine v1 document (label-pair control references) is
        // diagnosed as a version mismatch, not an `invalid type` error on
        // the forks field.
        let v1 = r#"{"format": 1, "name": "x", "edges": [["a", "b"]],
                     "forks": [[["a", "b"]]], "loops": []}"#;
        let err = SpecDescriptor::from_json(v1).unwrap_err();
        assert!(err.to_string().contains("format 1"), "got {err}");
    }

    #[test]
    fn out_of_range_run_edges_are_rejected_not_panicking() {
        let spec = fig2_specification();
        let mut desc = RunDescriptor::from_run(&fig2_run1(&spec));
        desc.edges.push((desc.nodes.len(), 0));
        let err = desc.to_run(&spec).unwrap_err();
        assert!(matches!(err, SpTreeError::InvalidRun { .. }));
        assert!(err.to_string().contains("node index outside"));
    }

    #[test]
    fn out_of_range_control_edge_indices_are_rejected() {
        let spec = fig2_specification();
        let mut desc = SpecDescriptor::from_specification(&spec);
        desc.forks[0].push(desc.edges.len() + 7);
        let err = desc.to_specification().unwrap_err();
        assert!(matches!(err, SpTreeError::Invariant(_)));
        assert!(err.to_string().contains("edge index"));
    }

    #[test]
    fn parallel_edges_keep_distinct_control_references() {
        // Two parallel a -> b edges, one of them (alone) covered by a loop.
        // With label-pair references both edges collapse onto one map slot;
        // edge indices keep them apart and the round trip preserves which
        // edge carries the loop.
        let mut g = LabeledDigraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e0 = g.add_edge(a, b);
        let _e1 = g.add_edge(a, b);
        let sp = wfdiff_graph::SpGraph::from_flow_network(g).unwrap();
        let spec =
            Specification::new("par", sp, vec![(ControlKind::Loop, BTreeSet::from([e0]))]).unwrap();
        let desc = SpecDescriptor::from_specification(&spec);
        assert_eq!(desc.loops, vec![vec![e0.index()]]);
        let rebuilt =
            SpecDescriptor::from_json(&desc.to_json()).unwrap().to_specification().unwrap();
        assert_eq!(rebuilt.controls().len(), 1);
        assert_eq!(rebuilt.controls()[0].edges, BTreeSet::from([e0]));
        assert_eq!(rebuilt.stats(), spec.stats());
    }

    #[test]
    fn xml_export_contains_structure() {
        let spec = fig2_specification();
        let desc = SpecDescriptor::from_specification(&spec);
        let xml = desc.to_xml();
        assert!(xml.starts_with("<specification name=\"fig2\">"));
        assert!(xml.contains("<fork>"));
        assert!(xml.contains("<loop>"));
        assert!(xml.matches("<edge ").count() >= 8);
        assert!(xml.contains("index=\""), "control edges are labelled with their index");
        let run_xml = RunDescriptor::from_run(&fig2_run1(&spec)).to_xml();
        assert!(run_xml.contains("<node id=\"0\""));
    }

    #[test]
    fn script_xml_lists_operations() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        let (result, script) = wfdiff_core::script::diff_with_script(&engine, &r1, &r2).unwrap();
        let xml = script_to_xml(&script);
        assert!(xml.contains("editscript cost=\"4\""));
        assert_eq!(xml.matches("<insert").count() + xml.matches("<delete").count(), 4);
        // Every operation's path labels appear as dedicated child elements.
        assert!(xml.matches("<label>").count() >= 4);
        assert!(!xml.contains("path=\""), "comma-joined path attributes are gone");
        let _ = result;
    }

    #[test]
    fn xml_escaping_handles_special_characters() {
        assert_eq!(xml_escape("a<b&\"c'\">"), "a&lt;b&amp;&quot;c&apos;&quot;&gt;");
    }
}
