//! Import/export of specifications, runs and edit scripts.
//!
//! The PDiffView prototype of the paper stores specifications and runs as XML
//! documents.  Here JSON (via serde) is the primary interchange format —
//! round-trippable in both directions — and a small XML writer mirrors the
//! paper's storage format for export.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use wfdiff_core::{EditScript, OpDirection};
use wfdiff_graph::{EdgeId, LabeledDigraph};
use wfdiff_sptree::{ControlKind, Run, SpTreeError, Specification};

/// A serialisable description of an SP-workflow specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecDescriptor {
    /// Specification name.
    pub name: String,
    /// Edges as `(source-label, target-label)` pairs.
    pub edges: Vec<(String, String)>,
    /// Fork subgraphs, each an edge list.
    pub forks: Vec<Vec<(String, String)>>,
    /// Loop subgraphs, each an edge list.
    pub loops: Vec<Vec<(String, String)>>,
}

impl SpecDescriptor {
    /// Extracts a descriptor from a built specification.
    pub fn from_specification(spec: &Specification) -> Self {
        let graph = spec.graph();
        let label = |n| graph.label(n).as_str().to_string();
        let edge_pair = |e: EdgeId| {
            let edge = graph.edge(e);
            (label(edge.src), label(edge.dst))
        };
        let mut forks = Vec::new();
        let mut loops = Vec::new();
        for control in spec.controls() {
            let edges: Vec<(String, String)> =
                control.edges.iter().map(|&e| edge_pair(e)).collect();
            match control.kind {
                ControlKind::Fork => forks.push(edges),
                ControlKind::Loop => loops.push(edges),
            }
        }
        SpecDescriptor {
            name: spec.name().to_string(),
            edges: graph.edges().map(|(id, _)| edge_pair(id)).collect(),
            forks,
            loops,
        }
    }

    /// Builds the specification described by this descriptor.
    pub fn to_specification(&self) -> Result<Specification, SpTreeError> {
        let mut graph = LabeledDigraph::new();
        let mut by_label = std::collections::HashMap::new();
        let mut node = |graph: &mut LabeledDigraph, l: &str| {
            *by_label.entry(l.to_string()).or_insert_with(|| graph.add_node(l))
        };
        let mut edge_ids = std::collections::HashMap::new();
        for (from, to) in &self.edges {
            let u = node(&mut graph, from);
            let v = node(&mut graph, to);
            let id = graph.add_edge(u, v);
            edge_ids.insert((from.clone(), to.clone()), id);
        }
        let sp = wfdiff_graph::SpGraph::from_flow_network(graph)?;
        let resolve = |edges: &Vec<(String, String)>| -> Result<BTreeSet<EdgeId>, SpTreeError> {
            edges
                .iter()
                .map(|pair| {
                    edge_ids.get(pair).copied().ok_or_else(|| {
                        SpTreeError::Invariant(format!(
                            "control subgraph references unknown edge {} -> {}",
                            pair.0, pair.1
                        ))
                    })
                })
                .collect()
        };
        let mut controls = Vec::new();
        for f in &self.forks {
            controls.push((ControlKind::Fork, resolve(f)?));
        }
        for l in &self.loops {
            controls.push((ControlKind::Loop, resolve(l)?));
        }
        Specification::new(self.name.clone(), sp, controls)
    }

    /// Serialises the descriptor to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("descriptors serialise")
    }

    /// Parses a descriptor from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Exports the specification as a small XML document, mirroring the
    /// storage format of the original prototype.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("<specification name=\"{}\">\n", xml_escape(&self.name)));
        for (from, to) in &self.edges {
            out.push_str(&format!(
                "  <edge from=\"{}\" to=\"{}\"/>\n",
                xml_escape(from),
                xml_escape(to)
            ));
        }
        for (tag, groups) in [("fork", &self.forks), ("loop", &self.loops)] {
            for group in groups {
                out.push_str(&format!("  <{tag}>\n"));
                for (from, to) in group {
                    out.push_str(&format!(
                        "    <edge from=\"{}\" to=\"{}\"/>\n",
                        xml_escape(from),
                        xml_escape(to)
                    ));
                }
                out.push_str(&format!("  </{tag}>\n"));
            }
        }
        out.push_str("</specification>\n");
        out
    }
}

/// A serialisable description of a run: nodes are numbered and carry labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunDescriptor {
    /// Name of the specification this run belongs to.
    pub spec: String,
    /// Node labels, indexed by node id.
    pub nodes: Vec<String>,
    /// Edges as pairs of node indices.
    pub edges: Vec<(usize, usize)>,
}

impl RunDescriptor {
    /// Extracts a descriptor from a run.
    pub fn from_run(run: &Run) -> Self {
        let graph = run.graph();
        RunDescriptor {
            spec: run.spec_name().to_string(),
            nodes: graph.nodes().map(|(_, n)| n.label.as_str().to_string()).collect(),
            edges: graph.edges().map(|(_, e)| (e.src.index(), e.dst.index())).collect(),
        }
    }

    /// Rebuilds the run (validating it against `spec`).
    pub fn to_run(&self, spec: &Specification) -> Result<Run, SpTreeError> {
        let mut graph = LabeledDigraph::new();
        for label in &self.nodes {
            graph.add_node(label.as_str());
        }
        for &(u, v) in &self.edges {
            graph.add_edge(wfdiff_graph::NodeId::from(u), wfdiff_graph::NodeId::from(v));
        }
        Run::from_graph(spec, graph)
    }

    /// Serialises the descriptor to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("descriptors serialise")
    }

    /// Parses a descriptor from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Exports the run as a small XML document.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("<run spec=\"{}\">\n", xml_escape(&self.spec)));
        for (i, label) in self.nodes.iter().enumerate() {
            out.push_str(&format!("  <node id=\"{i}\" label=\"{}\"/>\n", xml_escape(label)));
        }
        for (u, v) in &self.edges {
            out.push_str(&format!("  <edge from=\"{u}\" to=\"{v}\"/>\n"));
        }
        out.push_str("</run>\n");
        out
    }
}

/// Exports an edit script as XML (one `<insert>`/`<delete>` element per
/// operation, listing the path's labels).
pub fn script_to_xml(script: &EditScript) -> String {
    let mut out = String::new();
    out.push_str(&format!("<editscript cost=\"{}\">\n", script.total_cost));
    for op in &script.ops {
        let tag = match op.direction {
            OpDirection::Insert => "insert",
            OpDirection::Delete => "delete",
        };
        let path = op.labels.iter().map(|l| xml_escape(l.as_str())).collect::<Vec<_>>().join(",");
        out.push_str(&format!("  <{tag} cost=\"{}\" path=\"{}\"/>\n", op.cost, path));
    }
    out.push_str("</editscript>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_core::{UnitCost, WorkflowDiff};
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn spec_descriptor_roundtrips_through_json() {
        let spec = fig2_specification();
        let desc = SpecDescriptor::from_specification(&spec);
        let json = desc.to_json();
        let back = SpecDescriptor::from_json(&json).unwrap();
        assert_eq!(desc, back);
        let rebuilt = back.to_specification().unwrap();
        assert_eq!(rebuilt.stats(), spec.stats());
        assert!(rebuilt.tree().equivalent(spec.tree()));
    }

    #[test]
    fn run_descriptor_roundtrips_through_json() {
        let spec = fig2_specification();
        let run = fig2_run1(&spec);
        let desc = RunDescriptor::from_run(&run);
        let json = desc.to_json();
        let back = RunDescriptor::from_json(&json).unwrap();
        let rebuilt = back.to_run(&spec).unwrap();
        assert!(rebuilt.tree().equivalent(run.tree()));
        assert_eq!(rebuilt.edge_count(), run.edge_count());
    }

    #[test]
    fn xml_export_contains_structure() {
        let spec = fig2_specification();
        let desc = SpecDescriptor::from_specification(&spec);
        let xml = desc.to_xml();
        assert!(xml.starts_with("<specification name=\"fig2\">"));
        assert!(xml.contains("<fork>"));
        assert!(xml.contains("<loop>"));
        assert!(xml.matches("<edge ").count() >= 8);
        let run_xml = RunDescriptor::from_run(&fig2_run1(&spec)).to_xml();
        assert!(run_xml.contains("<node id=\"0\""));
    }

    #[test]
    fn script_xml_lists_operations() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        let (result, script) = wfdiff_core::script::diff_with_script(&engine, &r1, &r2).unwrap();
        let xml = script_to_xml(&script);
        assert!(xml.contains("editscript cost=\"4\""));
        assert_eq!(xml.matches("<insert").count() + xml.matches("<delete").count(), 4);
        let _ = result;
    }

    #[test]
    fn xml_escaping_handles_special_characters() {
        assert_eq!(xml_escape("a<b&\"c\">"), "a&lt;b&amp;&quot;c&quot;&gt;");
    }
}
