//! The optional `cluster_cache.json` artifact: checkpointing an
//! [`IncrementalClusterIndex`] next to a store directory.
//!
//! Clustering state is *derived* data — every entry can be recomputed from
//! the stored runs — so the artifact is strictly a cache: it is written
//! atomically beside `manifest.json`, **validated field by field on load**
//! (format version, cost-model key, spec version fingerprints, member sets
//! **and per-run content fingerprints** against the live store,
//! assignment/medoid/distance well-formedness) and any entry that fails a
//! check is silently skipped and rebuilt on the next cluster query.  A
//! corrupt or foreign artifact therefore can never poison an answer — not
//! even when a run was replaced under an unchanged name — and deleting the
//! file only costs the re-differencing time.
//!
//! The artifact lives at [`CLUSTER_CACHE_FILE`] inside the store directory
//! written by [`WorkflowStore::save_to_dir`](crate::store::WorkflowStore);
//! [`DiffService::save_cluster_state`] writes it and
//! [`DiffService::load_cluster_state`] restores it (the `wfdiff_serve` boot
//! sequence calls the latter right after
//! [`DiffService::warm_start`](crate::service::DiffService::warm_start)).
//!
//! [`DiffService::save_cluster_state`]: crate::service::DiffService::save_cluster_state
//! [`DiffService::load_cluster_state`]: crate::service::DiffService::load_cluster_state

use super::incremental::{IncrementalClusterIndex, SpecClusterState};
use crate::persist::{read_json, write_json_atomic, PersistError};
use crate::store::WorkflowStore;
use crate::storeio::StoreIo;
use crate::wal::{self, ClusterDeltaRecord, WalRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use wfdiff_sptree::Fingerprint;

/// Version tag of the cluster-cache artifact; unknown versions are treated
/// as stale (rebuilt), never as errors.
pub const CLUSTER_CACHE_FORMAT: u32 = 1;

/// File name of the artifact inside a store directory.
pub const CLUSTER_CACHE_FILE: &str = "cluster_cache.json";

/// What a [`DiffService::load_cluster_state`] pass accepted and rejected.
///
/// [`DiffService::load_cluster_state`]: crate::service::DiffService::load_cluster_state
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterCacheReport {
    /// Specification states restored into the index.
    pub loaded: usize,
    /// Entries (or the whole artifact) rejected as stale/corrupt; each will
    /// be rebuilt on the next cluster query.
    pub stale: usize,
}

/// The artifact document.
#[derive(Debug, Serialize, Deserialize)]
struct ClusterCacheDoc {
    /// Artifact format version; see [`CLUSTER_CACHE_FORMAT`].
    format: u32,
    /// [`CostModel::cache_key`](wfdiff_core::CostModel::cache_key) of the
    /// service that computed the distances — a different cost model makes
    /// every cached distance meaningless.
    cost_key: u64,
    /// One entry per clustered specification.
    specs: Vec<SpecClusterDoc>,
}

/// One specification's checkpointed clustering.  Also the payload of a
/// [`ClusterDeltaRecord`] in the write-ahead log, which is why the type is
/// crate-visible: the WAL holds whole per-spec snapshots (last-wins on
/// replay), never partial diffs, so a delta validates exactly like a file
/// entry.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct SpecClusterDoc {
    spec: String,
    /// Version fingerprint (hex) of the specification the clustering was
    /// computed against; must match the loaded store's version exactly.
    spec_fingerprint: String,
    k: usize,
    seed: u64,
    /// Clustered runs, strictly ascending.
    members: Vec<String>,
    /// Canonical tree fingerprint (hex) of each member's run **content**,
    /// aligned with `members`.  Without this, replacing a run under an
    /// unchanged name would let a checkpoint full of distances computed
    /// against the old content validate as fresh.
    run_fingerprints: Vec<String>,
    /// Cluster id per member, aligned with `members`.
    assignments: Vec<usize>,
    /// Medoid run names, one per cluster.
    medoids: Vec<String>,
    /// Memoised distances, `i < j` indexing `members`.
    distances: Vec<DistanceEntry>,
    silhouette: f64,
    cost: f64,
}

/// One memoised distance of a [`SpecClusterDoc`].
#[derive(Debug, Serialize, Deserialize)]
struct DistanceEntry {
    /// Lower member index.
    i: usize,
    /// Higher member index.
    j: usize,
    /// The edit distance.
    d: f64,
}

/// The canonical content fingerprint of a run's annotated tree (origin
/// references included, so it is comparable exactly when the spec version
/// fingerprints already match — which `validate` checks first).
fn run_content_fingerprint(run: &wfdiff_sptree::Run) -> Fingerprint {
    wfdiff_sptree::TreeFingerprints::compute(run.tree()).of(run.tree().root())
}

/// Builds the checkpoint document for one spec's live state, or `None` when
/// a member cannot be resolved in `store` any more (a concurrent removal) —
/// such a state is left out rather than written inconsistently.
fn build_doc(
    spec: &str,
    state: &SpecClusterState,
    store: &WorkflowStore,
) -> Option<SpecClusterDoc> {
    let run_fingerprints: Vec<String> = state
        .members
        .iter()
        .map(|m| store.run(spec, m).map(|run| run_content_fingerprint(&run).to_string()))
        .collect::<Option<_>>()?;
    let index_of: HashMap<&str, usize> =
        state.members.iter().enumerate().map(|(i, m)| (m.as_str(), i)).collect();
    let mut distances: Vec<DistanceEntry> = state
        .distances
        .iter()
        .filter_map(|((a, b), &d)| {
            // Entries for runs that have since been removed are already
            // pruned by the index; be defensive anyway.
            let (i, j) = (*index_of.get(a.as_str())?, *index_of.get(b.as_str())?);
            Some(DistanceEntry { i: i.min(j), j: i.max(j), d })
        })
        .collect();
    distances.sort_by_key(|x| (x.i, x.j));
    Some(SpecClusterDoc {
        spec: spec.to_string(),
        spec_fingerprint: state.version.to_string(),
        k: state.k,
        seed: state.seed,
        members: state.members.clone(),
        run_fingerprints,
        assignments: state.members.iter().map(|m| state.assignments[m]).collect(),
        medoids: state.medoids.clone(),
        distances,
        silhouette: state.silhouette,
        cost: state.cost,
    })
}

/// Checkpoints the index by *appending* one [`ClusterDeltaRecord`] per dirty
/// spec to the store directory's write-ahead log — O(changed specs), not
/// O(all specs) — instead of rewriting `cluster_cache.json` whole.  The next
/// full save ([`WorkflowStore::save_to_dir`](crate::store::WorkflowStore))
/// folds the deltas into the file via [`fold_wal_deltas`].  Returns the
/// number of specs currently tracked by the index.
///
/// The append is skipped entirely — the index tracks per-spec dirty sets —
/// when nothing changed since the last successful checkpoint, so calling
/// this after every read-only query costs nothing.
pub(crate) fn save_wal(
    index: &IncrementalClusterIndex,
    store: &WorkflowStore,
    cost_key: u64,
    dir: &Path,
) -> Result<usize, PersistError> {
    let count = index.with_states(|states| states.len());
    let Some(dirty) = index.take_dirty_specs() else {
        return Ok(count);
    };
    let records: Vec<WalRecord> = index.with_states(|states| {
        dirty
            .iter()
            .filter_map(|spec| {
                let doc = build_doc(spec, states.get(spec)?, store)?;
                Some(WalRecord::ClusterDelta(ClusterDeltaRecord { cost_key, doc }))
            })
            .collect()
    });
    if let Err(e) = store.append_wal_records(dir, &records) {
        // The states are still unpersisted; make sure the next save retries.
        for spec in &dirty {
            index.mark_spec_dirty(spec);
        }
        return Err(e);
    }
    Ok(count)
}

/// Folds WAL cluster deltas into `dir/cluster_cache.json` during a full
/// save: existing file entries are kept as the base (when the file is
/// readable and keyed by the same cost model) and each delta overwrites its
/// spec's entry, last-wins.  Deltas keyed by a different cost model are
/// dropped — their distances are meaningless under the folding service's
/// cost model.  An unreadable base file is treated as empty rather than an
/// error: the cache is derived data and must never block a save.
pub(crate) fn fold_wal_deltas(
    io: &dyn StoreIo,
    dir: &Path,
    deltas: Vec<ClusterDeltaRecord>,
) -> Result<(), PersistError> {
    let Some(final_key) = deltas.last().map(|d| d.cost_key) else {
        return Ok(());
    };
    let path = dir.join(CLUSTER_CACHE_FILE);
    let mut merged: BTreeMap<String, SpecClusterDoc> = BTreeMap::new();
    if path.exists() {
        if let Ok(doc) = read_json::<ClusterCacheDoc>(&path) {
            if doc.format == CLUSTER_CACHE_FORMAT && doc.cost_key == final_key {
                for entry in doc.specs {
                    merged.insert(entry.spec.clone(), entry);
                }
            }
        }
    }
    for delta in deltas {
        if delta.cost_key == final_key {
            merged.insert(delta.doc.spec.clone(), delta.doc);
        }
    }
    let doc = ClusterCacheDoc {
        format: CLUSTER_CACHE_FORMAT,
        cost_key: final_key,
        specs: merged.into_values().collect(),
    };
    write_json_atomic(io, &path, &doc)
}

/// Restores checkpointed states into the index, validating every entry
/// against the live `store` (see the [module docs](self)).  A missing file
/// is an empty report; a corrupt/foreign/mis-keyed artifact counts as one
/// stale entry and is otherwise ignored.
pub(crate) fn load(
    index: &IncrementalClusterIndex,
    store: &WorkflowStore,
    cost_key: u64,
    dir: &Path,
) -> ClusterCacheReport {
    let path = dir.join(CLUSTER_CACHE_FILE);
    let mut report = ClusterCacheReport::default();
    // The checkpoint file is the base; WAL deltas appended after the last
    // fold supersede its entry for the same spec (last-wins), and a
    // superseded entry is never validated — it is simply outdated, not
    // stale.
    let mut entries: BTreeMap<String, SpecClusterDoc> = BTreeMap::new();
    if path.exists() {
        match read_json::<ClusterCacheDoc>(&path) {
            Ok(doc) if doc.format == CLUSTER_CACHE_FORMAT && doc.cost_key == cost_key => {
                for entry in doc.specs {
                    entries.insert(entry.spec.clone(), entry);
                }
            }
            _ => report.stale += 1,
        }
    }
    if let Ok(scan) = wal::scan(dir) {
        for record in scan.records {
            if let WalRecord::ClusterDelta(delta) = record {
                if delta.cost_key == cost_key {
                    entries.insert(delta.doc.spec.clone(), delta.doc);
                } else {
                    report.stale += 1;
                }
            }
        }
    }
    for (spec, entry) in entries {
        match validate(&entry, store) {
            Some(state) => {
                index.with_states(|states| states.insert(spec, state));
                report.loaded += 1;
            }
            None => report.stale += 1,
        }
    }
    if report.stale > 0 {
        // The on-disk artifact holds entries the index rejected; the next
        // checkpoint should rewrite it even if no further mutation happens.
        index.mark_dirty();
    }
    report
}

/// Full structural validation of one checkpointed spec entry; `None` means
/// stale (rebuild on demand).
fn validate(doc: &SpecClusterDoc, store: &WorkflowStore) -> Option<SpecClusterState> {
    let (spec, runs) = store.snapshot(&doc.spec)?;
    if spec.fingerprint().to_string() != doc.spec_fingerprint {
        return None;
    }
    let version = Fingerprint(u128::from_str_radix(&doc.spec_fingerprint, 16).ok()?);
    // The member set must be exactly the store's current run set (sorted
    // strictly ascending — which also rules out duplicates) ...
    let store_runs: Vec<&str> = runs.iter().map(|(n, _)| n.as_str()).collect();
    if doc.members.len() != store_runs.len()
        || doc.members.iter().map(String::as_str).ne(store_runs.iter().copied())
        || !doc.members.windows(2).all(|w| w[0] < w[1])
    {
        return None;
    }
    // ... and each member's run *content* must be the content the
    // distances were computed against (a replaced run keeps its name but
    // changes its tree).
    if doc.run_fingerprints.len() != doc.members.len() {
        return None;
    }
    for ((_, run), recorded) in runs.iter().zip(&doc.run_fingerprints) {
        if run_content_fingerprint(run).to_string() != *recorded {
            return None;
        }
    }
    let n = doc.members.len();
    if n == 0 || doc.k == 0 {
        return None;
    }
    let clusters = doc.medoids.len();
    if clusters != doc.k.clamp(1, n) {
        return None;
    }
    // Medoids: distinct members, ascending (the index's normal form), and
    // every assignment must point at an existing cluster with the medoid
    // assigned to itself.
    if !doc.medoids.windows(2).all(|w| w[0] < w[1]) {
        return None;
    }
    if doc.assignments.len() != n {
        return None;
    }
    let member_index: HashMap<&str, usize> =
        doc.members.iter().enumerate().map(|(i, m)| (m.as_str(), i)).collect();
    for (c, medoid) in doc.medoids.iter().enumerate() {
        let &m = member_index.get(medoid.as_str())?;
        if doc.assignments[m] != c {
            return None;
        }
    }
    if doc.assignments.iter().any(|&a| a >= clusters) {
        return None;
    }
    if !doc.silhouette.is_finite()
        || !(-1.0..=1.0).contains(&doc.silhouette)
        || !doc.cost.is_finite()
        || doc.cost < 0.0
    {
        return None;
    }
    let mut distances = HashMap::with_capacity(doc.distances.len());
    for &DistanceEntry { i, j, d } in &doc.distances {
        if i >= j || j >= n || !d.is_finite() || d < 0.0 {
            return None;
        }
        if distances.insert((doc.members[i].clone(), doc.members[j].clone()), d).is_some() {
            return None;
        }
    }
    Some(SpecClusterState {
        k: doc.k,
        seed: doc.seed,
        version,
        members: doc.members.clone(),
        assignments: doc
            .members
            .iter()
            .zip(&doc.assignments)
            .map(|(m, &a)| (m.clone(), a))
            .collect(),
        medoids: doc.medoids.clone(),
        distances,
        silhouette: doc.silhouette,
        cost: doc.cost,
    })
}
