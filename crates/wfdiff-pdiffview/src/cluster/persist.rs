//! The optional `cluster_cache.json` artifact: checkpointing an
//! [`IncrementalClusterIndex`] next to a store directory.
//!
//! Clustering state is *derived* data — every entry can be recomputed from
//! the stored runs — so the artifact is strictly a cache: it is written
//! atomically beside `manifest.json`, **validated field by field on load**
//! (format version, cost-model key, spec version fingerprints, member sets
//! **and per-run content fingerprints** against the live store,
//! assignment/medoid/distance well-formedness) and any entry that fails a
//! check is silently skipped and rebuilt on the next cluster query.  A
//! corrupt or foreign artifact therefore can never poison an answer — not
//! even when a run was replaced under an unchanged name — and deleting the
//! file only costs the re-differencing time.
//!
//! The artifact lives at [`CLUSTER_CACHE_FILE`] inside the store directory
//! written by [`WorkflowStore::save_to_dir`](crate::store::WorkflowStore);
//! [`DiffService::save_cluster_state`] writes it and
//! [`DiffService::load_cluster_state`] restores it (the `wfdiff_serve` boot
//! sequence calls the latter right after
//! [`DiffService::warm_start`](crate::service::DiffService::warm_start)).
//!
//! [`DiffService::save_cluster_state`]: crate::service::DiffService::save_cluster_state
//! [`DiffService::load_cluster_state`]: crate::service::DiffService::load_cluster_state

use super::incremental::{IncrementalClusterIndex, SpecClusterState};
use crate::persist::{read_json, write_json_atomic, PersistError};
use crate::store::WorkflowStore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use wfdiff_sptree::Fingerprint;

/// Version tag of the cluster-cache artifact; unknown versions are treated
/// as stale (rebuilt), never as errors.
pub const CLUSTER_CACHE_FORMAT: u32 = 1;

/// File name of the artifact inside a store directory.
pub const CLUSTER_CACHE_FILE: &str = "cluster_cache.json";

/// What a [`DiffService::load_cluster_state`] pass accepted and rejected.
///
/// [`DiffService::load_cluster_state`]: crate::service::DiffService::load_cluster_state
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterCacheReport {
    /// Specification states restored into the index.
    pub loaded: usize,
    /// Entries (or the whole artifact) rejected as stale/corrupt; each will
    /// be rebuilt on the next cluster query.
    pub stale: usize,
}

/// The artifact document.
#[derive(Debug, Serialize, Deserialize)]
struct ClusterCacheDoc {
    /// Artifact format version; see [`CLUSTER_CACHE_FORMAT`].
    format: u32,
    /// [`CostModel::cache_key`](wfdiff_core::CostModel::cache_key) of the
    /// service that computed the distances — a different cost model makes
    /// every cached distance meaningless.
    cost_key: u64,
    /// One entry per clustered specification.
    specs: Vec<SpecClusterDoc>,
}

/// One specification's checkpointed clustering.
#[derive(Debug, Serialize, Deserialize)]
struct SpecClusterDoc {
    spec: String,
    /// Version fingerprint (hex) of the specification the clustering was
    /// computed against; must match the loaded store's version exactly.
    spec_fingerprint: String,
    k: usize,
    seed: u64,
    /// Clustered runs, strictly ascending.
    members: Vec<String>,
    /// Canonical tree fingerprint (hex) of each member's run **content**,
    /// aligned with `members`.  Without this, replacing a run under an
    /// unchanged name would let a checkpoint full of distances computed
    /// against the old content validate as fresh.
    run_fingerprints: Vec<String>,
    /// Cluster id per member, aligned with `members`.
    assignments: Vec<usize>,
    /// Medoid run names, one per cluster.
    medoids: Vec<String>,
    /// Memoised distances, `i < j` indexing `members`.
    distances: Vec<DistanceEntry>,
    silhouette: f64,
    cost: f64,
}

/// One memoised distance of a [`SpecClusterDoc`].
#[derive(Debug, Serialize, Deserialize)]
struct DistanceEntry {
    /// Lower member index.
    i: usize,
    /// Higher member index.
    j: usize,
    /// The edit distance.
    d: f64,
}

/// The canonical content fingerprint of a run's annotated tree (origin
/// references included, so it is comparable exactly when the spec version
/// fingerprints already match — which `validate` checks first).
fn run_content_fingerprint(run: &wfdiff_sptree::Run) -> Fingerprint {
    wfdiff_sptree::TreeFingerprints::compute(run.tree()).of(run.tree().root())
}

/// Serialises the index into `dir/cluster_cache.json` (atomic rename, like
/// every other store document).  Returns the number of checkpointed specs.
///
/// The write is skipped entirely — the index tracks a dirty flag — when
/// nothing changed since the last successful checkpoint, so calling this
/// after every read-only query costs nothing.  A spec whose members cannot
/// all be resolved in `store` any more (a concurrent removal) is left out
/// of the checkpoint rather than written inconsistently.
pub(crate) fn save(
    index: &IncrementalClusterIndex,
    store: &WorkflowStore,
    cost_key: u64,
    dir: &Path,
) -> Result<usize, PersistError> {
    if !index.take_dirty() {
        return Ok(index.with_states(|states| states.len()));
    }
    let specs = index.with_states(|states| {
        let mut docs: Vec<SpecClusterDoc> = states
            .iter()
            .filter_map(|(spec, state)| {
                let run_fingerprints: Vec<String> = state
                    .members
                    .iter()
                    .map(|m| {
                        store.run(spec, m).map(|run| run_content_fingerprint(&run).to_string())
                    })
                    .collect::<Option<_>>()?;
                let index_of: HashMap<&str, usize> =
                    state.members.iter().enumerate().map(|(i, m)| (m.as_str(), i)).collect();
                let mut distances: Vec<DistanceEntry> = state
                    .distances
                    .iter()
                    .filter_map(|((a, b), &d)| {
                        // Entries for runs that have since been removed are
                        // already pruned by the index; be defensive anyway.
                        let (i, j) = (*index_of.get(a.as_str())?, *index_of.get(b.as_str())?);
                        Some(DistanceEntry { i: i.min(j), j: i.max(j), d })
                    })
                    .collect();
                distances.sort_by_key(|x| (x.i, x.j));
                Some(SpecClusterDoc {
                    spec: spec.clone(),
                    spec_fingerprint: state.version.to_string(),
                    k: state.k,
                    seed: state.seed,
                    members: state.members.clone(),
                    run_fingerprints,
                    assignments: state.members.iter().map(|m| state.assignments[m]).collect(),
                    medoids: state.medoids.clone(),
                    distances,
                    silhouette: state.silhouette,
                    cost: state.cost,
                })
            })
            .collect();
        docs.sort_by(|a, b| a.spec.cmp(&b.spec));
        docs
    });
    let count = specs.len();
    let doc = ClusterCacheDoc { format: CLUSTER_CACHE_FORMAT, cost_key, specs };
    if let Err(e) = write_json_atomic(&dir.join(CLUSTER_CACHE_FILE), &doc) {
        // The state is still unpersisted; make sure the next save retries.
        index.mark_dirty();
        return Err(e);
    }
    Ok(count)
}

/// Restores checkpointed states into the index, validating every entry
/// against the live `store` (see the [module docs](self)).  A missing file
/// is an empty report; a corrupt/foreign/mis-keyed artifact counts as one
/// stale entry and is otherwise ignored.
pub(crate) fn load(
    index: &IncrementalClusterIndex,
    store: &WorkflowStore,
    cost_key: u64,
    dir: &Path,
) -> ClusterCacheReport {
    let path = dir.join(CLUSTER_CACHE_FILE);
    if !path.exists() {
        return ClusterCacheReport::default();
    }
    let doc: ClusterCacheDoc = match read_json(&path) {
        Ok(doc) => doc,
        Err(_) => return ClusterCacheReport { loaded: 0, stale: 1 },
    };
    if doc.format != CLUSTER_CACHE_FORMAT || doc.cost_key != cost_key {
        return ClusterCacheReport { loaded: 0, stale: 1 };
    }
    let mut report = ClusterCacheReport::default();
    for entry in doc.specs {
        match validate(&entry, store) {
            Some(state) => {
                index.with_states(|states| states.insert(entry.spec.clone(), state));
                report.loaded += 1;
            }
            None => report.stale += 1,
        }
    }
    if report.stale > 0 {
        // The on-disk artifact holds entries the index rejected; the next
        // checkpoint should rewrite it even if no further mutation happens.
        index.mark_dirty();
    }
    report
}

/// Full structural validation of one checkpointed spec entry; `None` means
/// stale (rebuild on demand).
fn validate(doc: &SpecClusterDoc, store: &WorkflowStore) -> Option<SpecClusterState> {
    let (spec, runs) = store.snapshot(&doc.spec)?;
    if spec.fingerprint().to_string() != doc.spec_fingerprint {
        return None;
    }
    let version = Fingerprint(u128::from_str_radix(&doc.spec_fingerprint, 16).ok()?);
    // The member set must be exactly the store's current run set (sorted
    // strictly ascending — which also rules out duplicates) ...
    let store_runs: Vec<&str> = runs.iter().map(|(n, _)| n.as_str()).collect();
    if doc.members.len() != store_runs.len()
        || doc.members.iter().map(String::as_str).ne(store_runs.iter().copied())
        || !doc.members.windows(2).all(|w| w[0] < w[1])
    {
        return None;
    }
    // ... and each member's run *content* must be the content the
    // distances were computed against (a replaced run keeps its name but
    // changes its tree).
    if doc.run_fingerprints.len() != doc.members.len() {
        return None;
    }
    for ((_, run), recorded) in runs.iter().zip(&doc.run_fingerprints) {
        if run_content_fingerprint(run).to_string() != *recorded {
            return None;
        }
    }
    let n = doc.members.len();
    if n == 0 || doc.k == 0 {
        return None;
    }
    let clusters = doc.medoids.len();
    if clusters != doc.k.clamp(1, n) {
        return None;
    }
    // Medoids: distinct members, ascending (the index's normal form), and
    // every assignment must point at an existing cluster with the medoid
    // assigned to itself.
    if !doc.medoids.windows(2).all(|w| w[0] < w[1]) {
        return None;
    }
    if doc.assignments.len() != n {
        return None;
    }
    let member_index: HashMap<&str, usize> =
        doc.members.iter().enumerate().map(|(i, m)| (m.as_str(), i)).collect();
    for (c, medoid) in doc.medoids.iter().enumerate() {
        let &m = member_index.get(medoid.as_str())?;
        if doc.assignments[m] != c {
            return None;
        }
    }
    if doc.assignments.iter().any(|&a| a >= clusters) {
        return None;
    }
    if !doc.silhouette.is_finite()
        || !(-1.0..=1.0).contains(&doc.silhouette)
        || !doc.cost.is_finite()
        || doc.cost < 0.0
    {
        return None;
    }
    let mut distances = HashMap::with_capacity(doc.distances.len());
    for &DistanceEntry { i, j, d } in &doc.distances {
        if i >= j || j >= n || !d.is_finite() || d < 0.0 {
            return None;
        }
        if distances.insert((doc.members[i].clone(), doc.members[j].clone()), d).is_some() {
            return None;
        }
    }
    Some(SpecClusterState {
        k: doc.k,
        seed: doc.seed,
        version,
        members: doc.members.clone(),
        assignments: doc
            .members
            .iter()
            .zip(&doc.assignments)
            .map(|(m, &a)| (m.clone(), a))
            .collect(),
        medoids: doc.medoids.clone(),
        distances,
        silhouette: doc.silhouette,
        cost: doc.cost,
    })
}
