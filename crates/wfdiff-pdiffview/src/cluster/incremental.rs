//! [`IncrementalClusterIndex`] — run clustering that follows the store.
//!
//! PDiffView's headline application is grouping the runs of a workflow
//! specification by provenance similarity.  A one-shot clustering over a
//! static store answers that once; a *server* (`POST /runs` streaming new
//! runs in) needs the clusters to follow the store without re-differencing
//! the world.  This index maintains, per specification:
//!
//! * the clustered member runs (sorted by name),
//! * the current medoids and per-run cluster assignments,
//! * a **memo of every edit distance ever fetched** for the clustering.
//!
//! # Cost of a streamed insert
//!
//! [`IncrementalClusterIndex::insert_run`] fetches only the distances the
//! update can actually need fresh: the new run against the `k` medoids, and
//! the new run against the members of the cluster it joins — **O(k +
//! |cluster|) prepared diffs, not O(n²)** (and each diff itself rides the
//! service's shared [`ShardedDiffCache`], so the new run is prepared once
//! and its subtree tables are shared).  The subsequent re-stabilisation
//! (the alternating iteration of [`kmedoids`](mod@crate::cluster::kmedoids),
//! warm-started from the current medoids) runs almost entirely against the
//! distance memo; it fetches more only in the rare case where the insert
//! actually moves a medoid and the change ripples into neighbouring
//! clusters.
//!
//! Because every mutation re-stabilises to a fixed point of the same
//! deterministic iteration, an index that tracked a store through inserts
//! and removals converges to the same clusters a from-scratch recluster of
//! the final store finds (the integration tests assert exactly this on
//! well-separated run families).
//!
//! # Staleness
//!
//! Index state is tagged with the specification's version fingerprint; a
//! replaced specification silently invalidates the state (it is rebuilt on
//! the next [`IncrementalClusterIndex::ensure`]).  The state is a *cache*:
//! dropping it never loses data, and
//! [`persist`](crate::cluster::persist) can checkpoint it next to the store
//! directory so a restarted server resumes without re-differencing.
//!
//! [`ShardedDiffCache`]: wfdiff_core::ShardedDiffCache

use super::kmedoids::{seed_medoids, solve};
use parking_lot::Mutex;
use std::collections::HashMap;
use wfdiff_sptree::Fingerprint;

/// Iteration ceiling of the stabilisation runs.
const MAX_ITERATIONS: usize = 64;

/// Supplies edit distances between stored runs of one specification, batched
/// one-source-to-many-targets so implementations can prepare the source run
/// once (the [`DiffService`](crate::service::DiffService) implementation
/// rides its worker pool and shared cache).
pub trait DistanceOracle {
    /// The oracle's failure type (e.g. a run disappeared from the store).
    type Error;

    /// Distances from `source` to each of `targets`, index-aligned.
    fn distances(&self, source: &str, targets: &[&str]) -> Result<Vec<f64>, Self::Error>;
}

/// One cluster of a [`ClusterSnapshot`]: a representative stored run (the
/// medoid) and the member runs, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCluster {
    /// The cluster's medoid — an actual stored run, not an abstract centre.
    pub medoid: String,
    /// All member runs (including the medoid), sorted by name.
    pub runs: Vec<String>,
}

/// A consistent, read-only view of one specification's run clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// The specification whose runs are clustered.
    pub spec: String,
    /// The requested cluster count (the effective count is
    /// `min(k, clustered runs)`).
    pub k: usize,
    /// Seed of the initial medoid draw.
    pub seed: u64,
    /// Clusters ordered by medoid name.
    pub clusters: Vec<RunCluster>,
    /// Medoid-based silhouette score in `[-1, 1]`
    /// (see [`KMedoids::silhouette`](crate::cluster::kmedoids::KMedoids::silhouette)).
    pub silhouette: f64,
    /// Sum of every run's distance to its medoid.
    pub cost: f64,
}

impl ClusterSnapshot {
    /// The cluster index of a run, if it is clustered.
    pub fn cluster_of(&self, run: &str) -> Option<usize> {
        self.clusters.iter().position(|c| c.runs.iter().any(|r| r == run))
    }

    /// The partition as a set of member-run lists (cluster order already
    /// normalised by medoid name) — handy for equality checks that should
    /// not depend on silhouette/cost float formatting.
    pub fn partition(&self) -> Vec<Vec<String>> {
        self.clusters.iter().map(|c| c.runs.clone()).collect()
    }
}

/// Per-specification clustering state; see the [module docs](self).
#[derive(Debug, Clone)]
pub(crate) struct SpecClusterState {
    /// Requested cluster count (effective count clamps to the member count).
    pub(crate) k: usize,
    /// Seed of the initial medoid draw.
    pub(crate) seed: u64,
    /// The specification version this state was computed against.
    pub(crate) version: Fingerprint,
    /// Clustered runs, sorted by name.
    pub(crate) members: Vec<String>,
    /// Cluster id per member run.
    pub(crate) assignments: HashMap<String, usize>,
    /// Medoid run names, one per cluster, sorted by name.
    pub(crate) medoids: Vec<String>,
    /// Memoised distances, keyed by ordered run-name pair.
    pub(crate) distances: HashMap<(String, String), f64>,
    /// Cached medoid-based silhouette of the current clustering.
    pub(crate) silhouette: f64,
    /// Cached sum of member-to-medoid distances.
    pub(crate) cost: f64,
}

fn pair_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl SpecClusterState {
    fn snapshot(&self, spec: &str) -> ClusterSnapshot {
        let mut clusters: Vec<RunCluster> = self
            .medoids
            .iter()
            .map(|m| RunCluster { medoid: m.clone(), runs: Vec::new() })
            .collect();
        for member in &self.members {
            let c = self.assignments[member];
            clusters[c].runs.push(member.clone());
        }
        ClusterSnapshot {
            spec: spec.to_string(),
            k: self.k,
            seed: self.seed,
            clusters,
            silhouette: self.silhouette,
            cost: self.cost,
        }
    }

    /// Memoised distance lookup; fetches through the oracle on a miss.
    fn distance<O: DistanceOracle>(
        &mut self,
        oracle: &O,
        a: &str,
        b: &str,
    ) -> Result<f64, O::Error> {
        if a == b {
            return Ok(0.0);
        }
        let key = pair_key(a, b);
        if let Some(&d) = self.distances.get(&key) {
            return Ok(d);
        }
        let d = oracle.distances(a, &[b])?[0];
        self.distances.insert(key, d);
        Ok(d)
    }

    /// Fetches (and memoises) the distances from `source` to every target
    /// not already memoised, in **one** oracle batch.
    fn prefetch<O: DistanceOracle>(
        &mut self,
        oracle: &O,
        source: &str,
        targets: &[String],
    ) -> Result<(), O::Error> {
        let missing: Vec<&str> = targets
            .iter()
            .map(String::as_str)
            .filter(|t| *t != source && !self.distances.contains_key(&pair_key(source, t)))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let fetched = oracle.distances(source, &missing)?;
        for (t, d) in missing.iter().zip(fetched) {
            self.distances.insert(pair_key(source, t), d);
        }
        Ok(())
    }

    /// Runs the alternating iteration to a fixed point from the given
    /// initial medoids (member indices) and installs the result.
    fn stabilize<O: DistanceOracle>(
        &mut self,
        oracle: &O,
        initial: Vec<usize>,
    ) -> Result<(), O::Error> {
        let members = self.members.clone();
        let n = members.len();
        debug_assert!(n > 0);
        let result = {
            let mut dist = |i: usize, j: usize| self.distance(oracle, &members[i], &members[j]);
            solve(n, initial, MAX_ITERATIONS, &mut dist)?
        };
        self.silhouette = {
            let mut dist = |i: usize, j: usize| self.distance(oracle, &members[i], &members[j]);
            result.silhouette(&mut dist)?
        };
        self.cost = result.cost;
        self.medoids = result.medoids.iter().map(|&m| members[m].clone()).collect();
        self.assignments =
            members.iter().zip(&result.assignments).map(|(name, &c)| (name.clone(), c)).collect();
        Ok(())
    }

    /// Deterministic farthest-point reseed followed by stabilisation —
    /// the from-scratch build path.
    fn reseed_and_stabilize<O: DistanceOracle>(
        &mut self,
        oracle: &O,
        effective_k: usize,
    ) -> Result<(), O::Error> {
        let members = self.members.clone();
        let seed = self.seed;
        let initial = {
            let mut dist = |i: usize, j: usize| self.distance(oracle, &members[i], &members[j]);
            seed_medoids(members.len(), effective_k, seed, &mut dist)?
        };
        self.stabilize(oracle, initial)
    }

    /// The current medoids as indices into the (sorted) member list.
    fn medoid_indices(&self) -> Vec<usize> {
        self.medoids
            .iter()
            .map(|m| self.members.binary_search(m).expect("every medoid is a member"))
            .collect()
    }
}

/// A thread-safe registry of per-specification run clusterings; see the
/// [module docs](self).
///
/// Mutations are serialised per index (one lock), and the lock is held
/// across the distance fetches a mutation performs — clustering updates are
/// rare next to diff traffic, and serialising them keeps every snapshot a
/// true fixed point of the iteration.
#[derive(Debug, Default)]
pub struct IncrementalClusterIndex {
    states: Mutex<HashMap<String, SpecClusterState>>,
    /// Set by every state mutation, consumed by the persistence layer so a
    /// checkpoint after a read-only query costs nothing.
    dirty: std::sync::atomic::AtomicBool,
    /// Names of the specifications mutated since the last checkpoint — the
    /// WAL checkpoint appends one delta record per entry instead of
    /// rewriting the whole cache file.
    dirty_specs: Mutex<std::collections::BTreeSet<String>>,
    /// Set by [`Self::mark_dirty`]: every tracked spec must be re-appended
    /// (e.g. after a load pass rejected on-disk entries).
    all_dirty: std::sync::atomic::AtomicBool,
}

impl IncrementalClusterIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        IncrementalClusterIndex::default()
    }

    /// Marks the whole index as changed since the last checkpoint: the next
    /// checkpoint re-appends every tracked specification.
    pub(crate) fn mark_dirty(&self) {
        self.all_dirty.store(true, std::sync::atomic::Ordering::Release);
        self.dirty.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Marks one specification's state as changed since the last
    /// checkpoint.  Callers may hold the `states` lock; this only touches
    /// the (leaf) dirty-set lock.
    pub(crate) fn mark_spec_dirty(&self, spec: &str) {
        self.dirty_specs.lock().insert(spec.to_string());
        self.dirty.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Consumes the dirty state: `None` when nothing changed since the last
    /// successful checkpoint, otherwise the sorted spec names to append
    /// delta records for (all tracked specs after a [`Self::mark_dirty`]).
    /// The set may name specs whose state has since been dropped; the
    /// checkpoint simply skips those.
    pub(crate) fn take_dirty_specs(&self) -> Option<Vec<String>> {
        if !self.dirty.swap(false, std::sync::atomic::Ordering::AcqRel) {
            return None;
        }
        let all = self.all_dirty.swap(false, std::sync::atomic::Ordering::AcqRel);
        // Statement-scoped lock: never held while taking the states lock.
        let mut dirty: Vec<String> =
            std::mem::take(&mut *self.dirty_specs.lock()).into_iter().collect();
        if all {
            dirty.extend(self.with_states(|states| states.keys().cloned().collect::<Vec<_>>()));
            dirty.sort();
            dirty.dedup();
        }
        Some(dirty)
    }

    /// Returns the clustering of `spec`'s runs, building (or rebuilding) it
    /// when the index holds no state for the requested `(k, seed)` over the
    /// given member set and specification version.
    ///
    /// `run_names` is the store's current run set for the specification;
    /// a state whose members diverge from it is stale and rebuilt.  An
    /// empty collection yields an empty snapshot and stores no state.
    ///
    /// The freshness check is by *name* — a run replaced under an
    /// unchanged name must be routed through
    /// [`IncrementalClusterIndex::insert_run`] (which purges its stale
    /// distances), exactly as
    /// [`DiffService::notify_run_inserted`](crate::service::DiffService::notify_run_inserted)
    /// does.
    pub fn ensure<O: DistanceOracle>(
        &self,
        spec: &str,
        version: Fingerprint,
        run_names: &[String],
        k: usize,
        seed: u64,
        oracle: &O,
    ) -> Result<ClusterSnapshot, O::Error> {
        let mut members: Vec<String> = run_names.to_vec();
        members.sort();
        members.dedup();
        let mut states = self.states.lock();
        if let Some(state) = states.get(spec) {
            if state.k == k
                && state.seed == seed
                && state.version == version
                && state.members == members
            {
                return Ok(state.snapshot(spec));
            }
        }
        if members.is_empty() {
            if states.remove(spec).is_some() {
                self.mark_spec_dirty(spec);
            }
            return Ok(ClusterSnapshot {
                spec: spec.to_string(),
                k,
                seed,
                clusters: Vec::new(),
                silhouette: 0.0,
                cost: 0.0,
            });
        }
        // Rebuild, keeping the distance memo of a same-version predecessor
        // (a changed k or member set does not invalidate distances).
        let distances = match states.remove(spec) {
            Some(old) if old.version == version => old.distances,
            _ => HashMap::new(),
        };
        let mut state = SpecClusterState {
            k,
            seed,
            version,
            members,
            assignments: HashMap::new(),
            medoids: Vec::new(),
            distances,
            silhouette: 0.0,
            cost: 0.0,
        };
        let n = state.members.len();
        state.reseed_and_stabilize(oracle, k.clamp(1, n))?;
        let snapshot = state.snapshot(spec);
        states.insert(spec.to_string(), state);
        self.mark_spec_dirty(spec);
        Ok(snapshot)
    }

    /// Folds a newly stored run into the clustering, if the index holds
    /// state for the specification (otherwise this is a no-op — the state
    /// will include the run when it is next built).
    ///
    /// Returns `true` when an index state absorbed the run.  A state built
    /// against a different specification version is dropped instead.
    pub fn insert_run<O: DistanceOracle>(
        &self,
        spec: &str,
        version: Fingerprint,
        run_name: &str,
        oracle: &O,
    ) -> Result<bool, O::Error> {
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(spec) else {
            return Ok(false);
        };
        if state.version != version {
            states.remove(spec);
            self.mark_spec_dirty(spec);
            return Ok(false);
        }
        if state.members.binary_search(&run_name.to_string()).is_ok() {
            // A replaced run of the same name: its old distances are stale.
            let name = run_name.to_string();
            state.distances.retain(|(a, b), _| *a != name && *b != name);
        } else {
            // O(k) fresh diffs: the new run against every medoid ...
            let medoids = state.medoids.clone();
            state.prefetch(oracle, run_name, &medoids)?;
            let mut nearest = (f64::INFINITY, 0usize);
            for (c, m) in medoids.iter().enumerate() {
                let d = state.distance(oracle, run_name, m)?;
                if d < nearest.0 {
                    nearest = (d, c);
                }
            }
            // ... plus O(|cluster|) against the members of the cluster it
            // joins, so the medoid update has every sum it needs.
            let cluster_members: Vec<String> = state
                .members
                .iter()
                .filter(|m| state.assignments.get(*m) == Some(&nearest.1))
                .cloned()
                .collect();
            state.prefetch(oracle, run_name, &cluster_members)?;
            let insert_at = state
                .members
                .binary_search(&run_name.to_string())
                .expect_err("name verified absent above");
            state.members.insert(insert_at, run_name.to_string());
            state.assignments.insert(run_name.to_string(), nearest.1);
        }
        // An index built while fewer than k runs were stored clamped its
        // cluster count; growing past the clamp must add clusters back
        // (the mirror of remove_run's shrink path), or the maintained
        // clustering would permanently diverge from a from-scratch one.
        let effective_k = state.k.clamp(1, state.members.len());
        if state.medoids.len() < effective_k {
            state.reseed_and_stabilize(oracle, effective_k)?;
        } else {
            let initial = state.medoid_indices();
            state.stabilize(oracle, initial)?;
        }
        self.mark_spec_dirty(spec);
        Ok(true)
    }

    /// Removes a run from the clustering, if the index holds state for the
    /// specification.  Returns `true` when an index state was updated.
    pub fn remove_run<O: DistanceOracle>(
        &self,
        spec: &str,
        run_name: &str,
        oracle: &O,
    ) -> Result<bool, O::Error> {
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(spec) else {
            return Ok(false);
        };
        let Ok(position) = state.members.binary_search(&run_name.to_string()) else {
            return Ok(false);
        };
        state.members.remove(position);
        state.assignments.remove(run_name);
        let name = run_name.to_string();
        state.distances.retain(|(a, b), _| *a != name && *b != name);
        self.mark_spec_dirty(spec);
        if state.members.is_empty() {
            states.remove(spec);
            return Ok(true);
        }
        let n = state.members.len();
        let effective_k = state.k.clamp(1, n);
        let was_medoid = state.medoids.iter().position(|m| m == run_name);
        if was_medoid.is_some() || state.medoids.len() > effective_k {
            if let (Some(c), true) = (was_medoid, state.medoids.len() <= effective_k) {
                // Replace the lost medoid with the best remaining member of
                // its former cluster (falling back to a deterministic
                // reseed when the cluster emptied out).
                let former: Vec<String> = state
                    .members
                    .iter()
                    .filter(|m| state.assignments.get(*m) == Some(&c))
                    .cloned()
                    .collect();
                if former.is_empty() {
                    state.reseed_and_stabilize(oracle, effective_k)?;
                    return Ok(true);
                }
                let mut best = (f64::INFINITY, former[0].clone());
                for candidate in &former {
                    // One batched fetch per candidate; the inner sum then
                    // runs entirely off the memo.
                    state.prefetch(oracle, candidate, &former)?;
                    let mut sum = 0.0;
                    for member in &former {
                        sum += state.distance(oracle, candidate, member)?;
                    }
                    if sum < best.0 {
                        best = (sum, candidate.clone());
                    }
                }
                state.medoids[c] = best.1;
            } else {
                // The member count dropped below k: reseed deterministically
                // with the clamped cluster count.
                state.reseed_and_stabilize(oracle, effective_k)?;
                return Ok(true);
            }
        }
        let initial = state.medoid_indices();
        state.stabilize(oracle, initial)?;
        Ok(true)
    }

    /// Drops the state of one specification (e.g. after a spec replacement).
    pub fn invalidate(&self, spec: &str) {
        if self.states.lock().remove(spec).is_some() {
            self.mark_spec_dirty(spec);
        }
    }

    /// A read-only snapshot of the current clustering of `spec`, if the
    /// index holds one.
    pub fn snapshot(&self, spec: &str) -> Option<ClusterSnapshot> {
        self.states.lock().get(spec).map(|s| s.snapshot(spec))
    }

    /// Names of the specifications the index currently holds state for.
    pub fn specs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.states.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of memoised distances held for `spec` (testing/diagnostics).
    pub fn memoized_distances(&self, spec: &str) -> usize {
        self.states.lock().get(spec).map(|s| s.distances.len()).unwrap_or(0)
    }

    /// The memoised medoid-to-member distance rows of `spec`, for the
    /// metric index's candidate screening: `rows[member][i]` is the cached
    /// `d(member, medoid_i)` when the clustering happened to fetch it
    /// (`None` otherwise — rows are reused, never computed here).  The
    /// stabilisation iteration touches every member-to-medoid pair, so a
    /// settled clustering yields complete rows for free.
    pub(crate) fn medoid_distance_rows(
        &self,
        spec: &str,
    ) -> Option<HashMap<String, Vec<Option<f64>>>> {
        let states = self.states.lock();
        let state = states.get(spec)?;
        if state.medoids.is_empty() {
            return None;
        }
        Some(
            state
                .members
                .iter()
                .map(|member| {
                    let row = state
                        .medoids
                        .iter()
                        .map(|medoid| {
                            if member == medoid {
                                Some(0.0)
                            } else {
                                state.distances.get(&pair_key(member, medoid)).copied()
                            }
                        })
                        .collect();
                    (member.clone(), row)
                })
                .collect(),
        )
    }

    /// Internal access for the persistence layer.
    pub(crate) fn with_states<T>(
        &self,
        f: impl FnOnce(&mut HashMap<String, SpecClusterState>) -> T,
    ) -> T {
        f(&mut self.states.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A matrix-backed oracle over named points `p0..pN` that counts how
    /// many distances were actually fetched.
    struct MatrixOracle {
        matrix: Vec<Vec<f64>>,
        fetches: RefCell<usize>,
    }

    impl MatrixOracle {
        fn new(matrix: Vec<Vec<f64>>) -> Self {
            MatrixOracle { matrix, fetches: RefCell::new(0) }
        }

        fn index(name: &str) -> usize {
            name.trim_start_matches('p').parse().unwrap()
        }
    }

    impl DistanceOracle for MatrixOracle {
        type Error = String;

        fn distances(&self, source: &str, targets: &[&str]) -> Result<Vec<f64>, String> {
            *self.fetches.borrow_mut() += targets.len();
            let i = Self::index(source);
            Ok(targets.iter().map(|t| self.matrix[i][Self::index(t)]).collect())
        }
    }

    /// Three well-separated blobs on a line; names sort as p0..p8.
    fn blobs() -> Vec<Vec<f64>> {
        let coords: [f64; 9] = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0, 200.0, 201.0, 202.0];
        coords.iter().map(|a| coords.iter().map(|b| (a - b).abs()).collect()).collect()
    }

    fn names(indices: std::ops::Range<usize>) -> Vec<String> {
        indices.map(|i| format!("p{i}")).collect()
    }

    const VERSION: Fingerprint = Fingerprint(42);

    #[test]
    fn ensure_builds_and_then_serves_from_state() {
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        let snap = index.ensure("s", VERSION, &names(0..9), 3, 1, &oracle).unwrap();
        assert_eq!(snap.partition(), vec![names(0..3), names(3..6), names(6..9)]);
        assert_eq!(snap.clusters[0].medoid, "p1");
        assert!(snap.silhouette > 0.9);
        let fetched = *oracle.fetches.borrow();
        assert!(fetched > 0);
        // A second ensure with identical parameters is pure state read.
        let again = index.ensure("s", VERSION, &names(0..9), 3, 1, &oracle).unwrap();
        assert_eq!(again, snap);
        assert_eq!(*oracle.fetches.borrow(), fetched, "no new distance fetches");
    }

    #[test]
    fn streamed_insert_matches_scratch_and_fetches_o_cluster() {
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        // Cluster everything except p0, then stream p0 in (an edge point of
        // its blob, so the blob's medoid p1 stays put and the whole update
        // runs off the memo).
        let mut initial = names(0..9);
        initial.retain(|n| n != "p0");
        index.ensure("s", VERSION, &initial, 3, 1, &oracle).unwrap();
        let before = *oracle.fetches.borrow();
        assert!(index.insert_run("s", VERSION, "p0", &oracle).unwrap());
        let after = *oracle.fetches.borrow();
        // At most k medoids + 2 same-cluster members.
        assert!(after - before <= 3 + 2, "fetched {} fresh distances", after - before);

        let scratch = IncrementalClusterIndex::new();
        let expected = scratch.ensure("s", VERSION, &names(0..9), 3, 1, &oracle).unwrap();
        assert_eq!(index.snapshot("s").unwrap(), expected);
    }

    #[test]
    fn removal_converges_and_medoid_loss_is_repaired() {
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        let snap = index.ensure("s", VERSION, &names(0..9), 3, 1, &oracle).unwrap();
        let medoid = snap.clusters[0].medoid.clone();
        assert!(index.remove_run("s", &medoid, &oracle).unwrap());
        let scratch = IncrementalClusterIndex::new();
        let mut remaining = names(0..9);
        remaining.retain(|n| *n != medoid);
        let expected = scratch.ensure("s", VERSION, &remaining, 3, 1, &oracle).unwrap();
        assert_eq!(index.snapshot("s").unwrap(), expected);
        // Removing an unknown run is a no-op.
        assert!(!index.remove_run("s", "p99", &oracle).unwrap());
        assert!(!index.remove_run("other", "p0", &oracle).unwrap());
    }

    #[test]
    fn version_mismatch_invalidates_on_insert() {
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        index.ensure("s", VERSION, &names(0..6), 2, 1, &oracle).unwrap();
        assert!(!index.insert_run("s", Fingerprint(7), "p6", &oracle).unwrap());
        assert!(index.snapshot("s").is_none(), "stale state was dropped");
    }

    #[test]
    fn growing_past_a_clamped_k_adds_clusters_back() {
        // Built while only 2 runs exist, k=3 clamps to 2 medoids; streaming
        // a third, well-separated run must grow the clustering back to 3
        // clusters — exactly what a from-scratch recluster yields.
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        index.ensure("s", VERSION, &names(0..2), 3, 1, &oracle).unwrap();
        assert_eq!(index.snapshot("s").unwrap().clusters.len(), 2);
        assert!(index.insert_run("s", VERSION, "p6", &oracle).unwrap());
        let grown = index.snapshot("s").unwrap();
        assert_eq!(grown.clusters.len(), 3);
        let scratch = IncrementalClusterIndex::new();
        let expected = scratch
            .ensure("s", VERSION, &["p0".into(), "p1".into(), "p6".into()], 3, 1, &oracle)
            .unwrap();
        assert_eq!(grown, expected);
    }

    #[test]
    fn shrinking_below_k_reseeds_deterministically() {
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        index.ensure("s", VERSION, &names(0..3), 3, 1, &oracle).unwrap();
        assert!(index.remove_run("s", "p0", &oracle).unwrap());
        let snap = index.snapshot("s").unwrap();
        assert_eq!(snap.clusters.len(), 2, "effective k clamps to the member count");
        assert!(index.remove_run("s", "p1", &oracle).unwrap());
        assert!(index.remove_run("s", "p2", &oracle).unwrap());
        assert!(index.snapshot("s").is_none(), "empty state is dropped");
    }

    #[test]
    fn empty_collections_yield_empty_snapshots() {
        let oracle = MatrixOracle::new(blobs());
        let index = IncrementalClusterIndex::new();
        let snap = index.ensure("s", VERSION, &[], 3, 1, &oracle).unwrap();
        assert!(snap.clusters.is_empty());
        assert!(index.snapshot("s").is_none());
        assert!(!index.insert_run("s", VERSION, "p0", &oracle).unwrap());
    }
}
