//! Distance-matrix-backed k-medoids (PAM-style alternating) clustering.
//!
//! The edit distance of Algorithm 4 is a metric over the runs of one
//! specification, which makes medoid-based clustering the natural fit for
//! PDiffView's "group the runs of this workflow" application: a **medoid**
//! is itself a stored run (no averaging in an abstract feature space), so
//! every cluster has a concrete representative run a user can open.
//!
//! The algorithm is the classic alternating (Voronoi) iteration:
//!
//! 1. **seed** — the first medoid is drawn with a seeded [`ChaCha8Rng`] and
//!    the remaining `k - 1` by farthest-point traversal (each new medoid
//!    maximises its distance to the chosen ones; ties break to the lowest
//!    index).  Farthest-point seeding lands one medoid per well-separated
//!    group for *any* seed, which is what lets an incrementally maintained
//!    clustering and a from-scratch one agree,
//! 2. **assign** — a medoid keeps its own cluster; every other point joins
//!    its nearest medoid (ties break to the lowest cluster index), so no
//!    cluster can be left empty even when duplicate points are seeded as
//!    several medoids,
//! 3. **repair** — defensively, a cluster that still ends up empty
//!    re-seeds its medoid with the point farthest from its current medoid,
//! 4. **update** — each cluster's medoid becomes the member minimising the
//!    sum of intra-cluster distances (ties break to the lowest point index),
//! 5. repeat 2–4 until a fixed point (or [`KMedoidsConfig::max_iterations`]).
//!
//! Every choice is tie-broken on indices, so the outcome is a **pure
//! function of the distance matrix, `k` and the seed** — the property the
//! incremental index and the integration tests rely on.
//!
//! Distances are pulled through a fallible callback rather than a
//! materialised matrix, so the same core serves both the in-memory
//! [`kmedoids`] entry point (a full `n × n` matrix) and the incremental
//! index, which fetches only the O(k·n + Σ|cluster|²) entries the iteration
//! actually inspects and memoises them (see
//! [`incremental`](crate::cluster::incremental)).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default seed of the run-clustering entry points: clustering the same
/// store with the same `k` always yields the same clusters.
pub const DEFAULT_CLUSTER_SEED: u64 = 0xC1D5;

/// Configuration of one k-medoids clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMedoidsConfig {
    /// Number of clusters; clamped to the number of points by the callers.
    pub k: usize,
    /// Seed of the initial medoid draw.  The whole algorithm is
    /// deterministic for a fixed seed.
    pub seed: u64,
    /// Iteration ceiling (assignment/update rounds); the alternating
    /// iteration converges long before this on real workloads.
    pub max_iterations: usize,
}

impl KMedoidsConfig {
    /// `k` clusters with the default seed and iteration ceiling.
    pub fn new(k: usize) -> Self {
        KMedoidsConfig { k, seed: DEFAULT_CLUSTER_SEED, max_iterations: 64 }
    }

    /// Replaces the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of a k-medoids clustering over `n` points.
///
/// Clusters are normalised: medoids are listed in ascending point-index
/// order and `assignments[p]` indexes into `medoids`, so two runs of the
/// algorithm over the same input compare equal with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoids {
    /// Medoid point indices, ascending.
    pub medoids: Vec<usize>,
    /// For every point, the index (into [`KMedoids::medoids`]) of its
    /// cluster.
    pub assignments: Vec<usize>,
    /// Sum of every point's distance to its medoid.
    pub cost: f64,
    /// Assignment/update rounds until the fixed point.
    pub iterations: usize,
}

impl KMedoids {
    /// The members of cluster `c`, in ascending point order.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|(_, &a)| a == c).map(|(p, _)| p).collect()
    }

    /// The medoid-based (simplified) silhouette score, in `[-1, 1]`.
    ///
    /// For every point `p`, `a(p)` is its distance to its own medoid and
    /// `b(p)` the distance to the nearest *other* medoid; the score is the
    /// mean of `(b - a) / max(a, b)` (0 for a point sitting on its medoid).
    /// Unlike the classical silhouette this needs only point-to-medoid
    /// distances, so the incremental index can report it without ever
    /// materialising the full distance matrix.
    pub fn silhouette<E>(
        &self,
        dist: &mut impl FnMut(usize, usize) -> Result<f64, E>,
    ) -> Result<f64, E> {
        if self.medoids.len() < 2 || self.assignments.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for (p, &c) in self.assignments.iter().enumerate() {
            let a = dist(p, self.medoids[c])?;
            let mut b = f64::INFINITY;
            for (other, &m) in self.medoids.iter().enumerate() {
                if other != c {
                    b = b.min(dist(p, m)?);
                }
            }
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
        Ok(total / self.assignments.len() as f64)
    }
}

/// Clusters `n` points whose pairwise distances are given by `matrix`
/// (symmetric, zero diagonal), e.g. an
/// [`AllPairsResult::matrix`](crate::service::AllPairsResult).
///
/// `k` is clamped to `n`.  Panics if `n == 0` or `k == 0` — callers
/// validate both (the HTTP layer answers 400).
pub fn kmedoids(matrix: &[Vec<f64>], config: &KMedoidsConfig) -> KMedoids {
    let n = matrix.len();
    let mut get =
        |i: usize, j: usize| -> Result<f64, std::convert::Infallible> { Ok(matrix[i][j]) };
    let outcome = seed_medoids(n, config.k.min(n), config.seed, &mut get)
        .and_then(|seeds| solve(n, seeds, config.max_iterations, &mut get));
    match outcome {
        Ok(result) => result,
        Err(never) => match never {},
    }
}

/// Picks `k` distinct initial medoids out of `0..n`: the first with a
/// seeded [`ChaCha8Rng`] draw, the rest by farthest-point traversal (each
/// next medoid maximises its minimum distance to the already-chosen ones;
/// ties break to the lowest index).
pub(crate) fn seed_medoids<E>(
    n: usize,
    k: usize,
    seed: u64,
    dist: &mut impl FnMut(usize, usize) -> Result<f64, E>,
) -> Result<Vec<usize>, E> {
    assert!(n > 0 && k > 0 && k <= n, "need 0 < k <= n, got k={k}, n={n}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut medoids = vec![rng.gen_range(0..n)];
    while medoids.len() < k {
        let mut farthest = (f64::NEG_INFINITY, 0usize);
        for p in 0..n {
            if medoids.contains(&p) {
                continue;
            }
            let mut nearest = f64::INFINITY;
            for &m in &medoids {
                nearest = nearest.min(dist(p, m)?);
            }
            if nearest > farthest.0 {
                farthest = (nearest, p);
            }
        }
        medoids.push(farthest.1);
    }
    Ok(medoids)
}

/// The alternating iteration from explicit initial medoids; shared by
/// [`kmedoids`] (matrix-backed) and the incremental index (oracle-backed:
/// `dist` may fail, e.g. when a diff against the store fails mid-fetch).
pub(crate) fn solve<E>(
    n: usize,
    initial_medoids: Vec<usize>,
    max_iterations: usize,
    dist: &mut impl FnMut(usize, usize) -> Result<f64, E>,
) -> Result<KMedoids, E> {
    assert!(n > 0, "cannot cluster zero points");
    let mut medoids = initial_medoids;
    debug_assert!(!medoids.is_empty() && medoids.len() <= n);
    let k = medoids.len();
    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        // Assignment: nearest medoid, ties to the lowest cluster index —
        // except that a medoid always keeps its own cluster.  Without that
        // exception, duplicate points seeded as two medoids would tie
        // towards the lower cluster, leave the other empty, and the repair
        // step below would oscillate to the iteration ceiling instead of
        // converging.
        for (p, slot) in assignments.iter_mut().enumerate() {
            if let Some(own) = medoids.iter().position(|&m| m == p) {
                *slot = own;
                continue;
            }
            let mut best = (f64::INFINITY, 0usize);
            for (c, &m) in medoids.iter().enumerate() {
                let d = dist(p, m)?;
                if d < best.0 {
                    best = (d, c);
                }
            }
            *slot = best.1;
        }

        // Repair (defensive: unreachable while the initial medoids are
        // distinct, which every caller guarantees): a cluster with no
        // members — not even its own medoid — is re-seeded with the point
        // farthest from its current medoid, deterministically.
        let mut sizes = vec![0usize; k];
        for &a in &assignments {
            sizes[a] += 1;
        }
        if let Some(empty) = sizes.iter().position(|&s| s == 0) {
            let mut farthest = (f64::NEG_INFINITY, usize::MAX);
            for (p, &a) in assignments.iter().enumerate() {
                if medoids.contains(&p) {
                    continue;
                }
                let d = dist(p, medoids[a])?;
                if d > farthest.0 {
                    farthest = (d, p);
                }
            }
            if farthest.1 == usize::MAX {
                // Fewer distinct points than clusters: every point *is* a
                // medoid already.  Give the empty cluster its own medoid as
                // the sole member and fall through to the update step.
                assignments[medoids[empty]] = empty;
            } else {
                medoids[empty] = farthest.1;
                if iterations < max_iterations {
                    continue;
                }
            }
        }

        // Update: each cluster's medoid minimises the intra-cluster
        // distance sum; ties to the lowest point index.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&p| assignments[p] == c).collect();
            let mut best = (f64::INFINITY, *medoid);
            for &candidate in &members {
                let mut sum = 0.0;
                for &m in &members {
                    sum += dist(candidate, m)?;
                }
                if sum < best.0 || (sum == best.0 && candidate < best.1) {
                    best = (sum, candidate);
                }
            }
            if best.1 != *medoid {
                *medoid = best.1;
                changed = true;
            }
        }

        if !changed || iterations >= max_iterations {
            break;
        }
    }

    // Normalise: clusters ordered by ascending medoid index, so equal
    // clusterings compare equal structurally.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| medoids[c]);
    let mut remap = vec![0usize; k];
    for (new_c, &old_c) in order.iter().enumerate() {
        remap[old_c] = new_c;
    }
    let medoids: Vec<usize> = order.iter().map(|&c| medoids[c]).collect();
    for a in &mut assignments {
        *a = remap[*a];
    }
    let mut cost = 0.0;
    for (p, &c) in assignments.iter().enumerate() {
        cost += dist(p, medoids[c])?;
    }
    Ok(KMedoids { medoids, assignments, cost, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups on a line: {0,1,2} near 0 and {3,4,5} near 100.
    fn two_blob_matrix() -> Vec<Vec<f64>> {
        let coords: [f64; 6] = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0];
        coords.iter().map(|a| coords.iter().map(|b| (a - b).abs()).collect()).collect()
    }

    #[test]
    fn separated_blobs_are_recovered_for_any_seed() {
        let matrix = two_blob_matrix();
        for seed in 0..16 {
            let config = KMedoidsConfig::new(2).seed(seed);
            let result = kmedoids(&matrix, &config);
            assert_eq!(result.assignments[0], result.assignments[1]);
            assert_eq!(result.assignments[1], result.assignments[2]);
            assert_eq!(result.assignments[3], result.assignments[4]);
            assert_eq!(result.assignments[4], result.assignments[5]);
            assert_ne!(result.assignments[0], result.assignments[3], "seed {seed}");
            // The medoids are the group centres (ties none here).
            assert_eq!(result.medoids, vec![1, 4], "seed {seed}");
            assert_eq!(result.cost, 4.0);
            let mut get =
                |i: usize, j: usize| -> Result<f64, std::convert::Infallible> { Ok(matrix[i][j]) };
            let s = result.silhouette(&mut get).unwrap();
            assert!(s > 0.9, "well-separated blobs score near 1, got {s}");
        }
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let matrix = two_blob_matrix();
        let config = KMedoidsConfig::new(3).seed(42);
        assert_eq!(kmedoids(&matrix, &config), kmedoids(&matrix, &config));
    }

    #[test]
    fn more_clusters_than_distinct_points_stays_valid_and_converges() {
        // Two distinct values but k=3: duplicate points are necessarily
        // seeded as multiple medoids.  The clustering must still converge
        // quickly and every cluster must contain its own medoid.
        let coords: [f64; 6] = [0.0, 0.0, 0.0, 100.0, 100.0, 100.0];
        let matrix: Vec<Vec<f64>> =
            coords.iter().map(|a| coords.iter().map(|b| (a - b).abs()).collect()).collect();
        for seed in 0..8 {
            let result = kmedoids(&matrix, &KMedoidsConfig::new(3).seed(seed));
            assert!(result.iterations < 10, "seed {seed}: oscillated ({result:?})");
            for (c, &m) in result.medoids.iter().enumerate() {
                assert_eq!(result.assignments[m], c, "seed {seed}: medoid owns its cluster");
                assert!(!result.members(c).is_empty(), "seed {seed}: empty cluster");
            }
        }
    }

    #[test]
    fn duplicate_points_do_not_wedge_the_iteration() {
        // All-zero distances: every seed draws "duplicate" medoids and the
        // repair step must still terminate with k clusters.
        let matrix = vec![vec![0.0; 4]; 4];
        let result = kmedoids(&matrix, &KMedoidsConfig::new(3).seed(7));
        assert_eq!(result.medoids.len(), 3);
        assert_eq!(result.cost, 0.0);
        let mut get =
            |i: usize, j: usize| -> Result<f64, std::convert::Infallible> { Ok(matrix[i][j]) };
        assert_eq!(result.silhouette(&mut get).unwrap(), 0.0);
    }

    #[test]
    fn k_one_puts_everything_in_one_cluster() {
        let matrix = two_blob_matrix();
        let result = kmedoids(&matrix, &KMedoidsConfig::new(1));
        assert!(result.assignments.iter().all(|&a| a == 0));
        assert_eq!(result.medoids.len(), 1);
        let mut get =
            |i: usize, j: usize| -> Result<f64, std::convert::Infallible> { Ok(matrix[i][j]) };
        assert_eq!(result.silhouette(&mut get).unwrap(), 0.0, "single cluster scores 0");
    }

    #[test]
    fn k_is_clamped_and_seeding_is_distinct() {
        let matrix = two_blob_matrix();
        let result = kmedoids(&matrix, &KMedoidsConfig::new(99));
        assert_eq!(result.medoids.len(), 6, "k clamps to n");
        let mut sorted = result.medoids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "medoids are distinct points");
        let mut get =
            |i: usize, j: usize| -> Result<f64, std::convert::Infallible> { Ok(matrix[i][j]) };
        let seeds = seed_medoids(6, 4, 123, &mut get).unwrap();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "seeded medoids are distinct");
        assert_eq!(seeds, seed_medoids(6, 4, 123, &mut get).unwrap(), "seeding is deterministic");
    }
}
