//! Clustering — both of **modules** (the paper's composite-module "zoom")
//! and of **runs** (PDiffView's headline application: grouping the runs of a
//! workflow specification by provenance similarity).
//!
//! Two families live here:
//!
//! * [`composite`] — the Section VII zoom feature: [`Clustering`] assigns
//!   specification modules to named composite modules and [`ClusterDiff`]
//!   aggregates an edit script per composite module.
//! * run clustering — the edit distance is a metric over the runs of one
//!   specification, so whole run collections can be organised around
//!   representative runs:
//!   * [`mod@kmedoids`] — a deterministic, distance-matrix-backed k-medoids
//!     (PAM-style alternating) clusterer with a medoid-based silhouette
//!     score,
//!   * [`incremental`] — [`IncrementalClusterIndex`], which maintains
//!     per-specification medoids and assignments **as runs stream in or
//!     out**: a streamed insert costs O(k + affected cluster) prepared
//!     diffs (reusing the service's shared diff cache), not O(n²),
//!   * [`persist`] — the optional `cluster_cache.json` artifact that lets a
//!     restarted server resume clustering without re-differencing
//!     (validated on load, silently rebuilt when stale).
//!
//! The run-clustering entry points for most callers are
//! [`DiffService::cluster_medoids`] and [`DiffService::nearest_runs`]
//! (served over HTTP as `GET /cluster?algo=kmedoids` and `GET /similar`).
//!
//! [`DiffService::cluster_medoids`]: crate::service::DiffService::cluster_medoids
//! [`DiffService::nearest_runs`]: crate::service::DiffService::nearest_runs

pub mod composite;
pub mod incremental;
pub mod kmedoids;
pub mod persist;

pub use composite::{ClusterDiff, Clustering};
pub use incremental::{ClusterSnapshot, IncrementalClusterIndex, RunCluster};
pub use kmedoids::{kmedoids, KMedoids, KMedoidsConfig, DEFAULT_CLUSTER_SEED};
pub use persist::{ClusterCacheReport, CLUSTER_CACHE_FORMAT};
