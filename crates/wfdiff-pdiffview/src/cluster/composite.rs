//! Composite-module clustering (the "zoom" feature of Section VII).
//!
//! PDiffView lets users successively cluster modules of the specification
//! into *composite modules* and view the difference of two runs at any level
//! of the resulting hierarchy: composite modules with many changes stand out,
//! unchanged ones can be ignored.  [`Clustering`] assigns specification
//! modules to named clusters and [`ClusterDiff`] aggregates an edit script's
//! operations per cluster.

use crate::session::DiffSession;
use std::collections::{BTreeMap, HashMap};
use wfdiff_core::OpDirection;
use wfdiff_sptree::Specification;

/// An assignment of specification modules (labels) to named composite modules.
#[derive(Debug, Clone, Default)]
pub struct Clustering {
    cluster_of: HashMap<String, String>,
}

impl Clustering {
    /// Creates an empty clustering (every module is its own cluster).
    pub fn new() -> Self {
        Clustering::default()
    }

    /// Assigns a set of module labels to a composite module.
    pub fn assign(&mut self, cluster: &str, modules: &[&str]) -> &mut Self {
        for m in modules {
            self.cluster_of.insert((*m).to_string(), cluster.to_string());
        }
        self
    }

    /// The composite module of a label (labels without an explicit assignment
    /// form singleton clusters named after themselves).
    pub fn cluster_of(&self, module: &str) -> String {
        self.cluster_of.get(module).cloned().unwrap_or_else(|| module.to_string())
    }

    /// Builds a clustering that groups modules by the prefix before the first
    /// occurrence of `separator` in their label (`"blast_swp"` and
    /// `"blast_pir"` both go to `"blast"`); a convenient default for workflows
    /// with hierarchical module names.
    pub fn by_prefix(spec: &Specification, separator: char) -> Self {
        let mut clustering = Clustering::new();
        for (_, node) in spec.graph().nodes() {
            let label = node.label.as_str();
            if let Some(pos) = label.find(separator) {
                clustering.cluster_of.insert(label.to_string(), label[..pos].to_string());
            }
        }
        clustering
    }

    /// Number of explicit assignments.
    pub fn len(&self) -> usize {
        self.cluster_of.len()
    }

    /// `true` when no explicit assignment was made.
    pub fn is_empty(&self) -> bool {
        self.cluster_of.is_empty()
    }
}

/// Per-composite-module aggregation of an edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterDiff {
    /// For every composite module: (deletion touches, insertion touches).
    pub changes: BTreeMap<String, (usize, usize)>,
}

impl ClusterDiff {
    /// Computes the per-cluster difference of two stored runs through a
    /// [`crate::service::DiffService`] (sharing its cost model and cache).
    pub fn compute_with_service(
        service: &crate::service::DiffService,
        spec: &str,
        r1: &str,
        r2: &str,
        clustering: &Clustering,
    ) -> Result<ClusterDiff, crate::service::ServiceError> {
        let session = service.session(spec, r1, r2)?;
        Ok(ClusterDiff::compute(&session, clustering))
    }

    /// Aggregates the session's edit script by composite module: an operation
    /// touches a cluster if any label on its path belongs to the cluster.
    pub fn compute(session: &DiffSession, clustering: &Clustering) -> ClusterDiff {
        let mut changes: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for op in &session.script().ops {
            let mut touched: Vec<String> =
                op.labels.iter().map(|l| clustering.cluster_of(l.as_str())).collect();
            touched.sort();
            touched.dedup();
            for cluster in touched {
                let entry = changes.entry(cluster).or_default();
                match op.direction {
                    OpDirection::Delete => entry.0 += 1,
                    OpDirection::Insert => entry.1 += 1,
                }
            }
        }
        ClusterDiff { changes }
    }

    /// The composite modules ordered by total amount of change (descending) —
    /// "where should the scientist zoom in first".
    pub fn hotspots(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> =
            self.changes.iter().map(|(k, (d, i))| (k.as_str(), d + i)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Composite modules with no change at all are simply absent from
    /// `changes`; this helper reports whether a given cluster changed.
    pub fn changed(&self, cluster: &str) -> bool {
        self.changes.contains_key(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_core::UnitCost;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn cluster_diff_aggregates_changes() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let session = DiffSession::new(&spec, &UnitCost, &r1, &r2).unwrap();
        let mut clustering = Clustering::new();
        clustering.assign("analysis", &["2", "3", "4", "5", "6"]);
        clustering.assign("io", &["1", "7"]);
        let diff = ClusterDiff::compute(&session, &clustering);
        assert!(diff.changed("analysis"));
        // All operations touch the analysis section; the whole-workflow copy
        // insertion also touches the io section.
        let hotspots = diff.hotspots();
        assert_eq!(hotspots[0].0, "analysis");
        assert!(diff.changes["analysis"].0 >= 1);
        assert!(diff.changes["analysis"].1 >= 1);
    }

    #[test]
    fn unassigned_modules_are_singleton_clusters() {
        let clustering = Clustering::new();
        assert_eq!(clustering.cluster_of("BlastSwP"), "BlastSwP");
        assert!(clustering.is_empty());
    }

    #[test]
    fn prefix_clustering_groups_by_separator() {
        let mut b = wfdiff_sptree::SpecificationBuilder::new("prefixed");
        b.path(&["start", "blast_swp", "blast_merge", "report_final"]);
        let spec = b.build().unwrap();
        let clustering = Clustering::by_prefix(&spec, '_');
        assert_eq!(clustering.cluster_of("blast_swp"), "blast");
        assert_eq!(clustering.cluster_of("blast_merge"), "blast");
        assert_eq!(clustering.cluster_of("report_final"), "report");
        assert_eq!(clustering.cluster_of("start"), "start");
    }
}
