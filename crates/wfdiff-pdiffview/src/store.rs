//! A thread-safe in-memory store of specifications and runs.
//!
//! The PDiffView prototype lets users store and later re-open specifications
//! and runs; this is the headless equivalent, also used by the benchmark
//! harness to share generated workloads between experiments.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use wfdiff_sptree::{Run, Specification};

/// A named collection of specifications and, per specification, named runs.
#[derive(Default)]
pub struct WorkflowStore {
    specs: RwLock<BTreeMap<String, Arc<Specification>>>,
    runs: RwLock<BTreeMap<(String, String), Arc<Run>>>,
}

impl WorkflowStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        WorkflowStore::default()
    }

    /// Inserts (or replaces) a specification and returns its shared handle.
    pub fn insert_spec(&self, spec: Specification) -> Arc<Specification> {
        let arc = Arc::new(spec);
        self.specs.write().insert(arc.name().to_string(), Arc::clone(&arc));
        arc
    }

    /// Looks up a specification by name.
    pub fn spec(&self, name: &str) -> Option<Arc<Specification>> {
        self.specs.read().get(name).cloned()
    }

    /// Names of all stored specifications.
    pub fn spec_names(&self) -> Vec<String> {
        self.specs.read().keys().cloned().collect()
    }

    /// Inserts (or replaces) a run under the given name.
    ///
    /// The run's specification must already be stored.
    pub fn insert_run(&self, run_name: &str, run: Run) -> Option<Arc<Run>> {
        self.spec(run.spec_name())?;
        let key = (run.spec_name().to_string(), run_name.to_string());
        let arc = Arc::new(run);
        self.runs.write().insert(key, Arc::clone(&arc));
        Some(arc)
    }

    /// Looks up a run by specification and run name.
    pub fn run(&self, spec_name: &str, run_name: &str) -> Option<Arc<Run>> {
        self.runs.read().get(&(spec_name.to_string(), run_name.to_string())).cloned()
    }

    /// Names of the runs stored for a specification.
    pub fn run_names(&self, spec_name: &str) -> Vec<String> {
        self.runs.read().keys().filter(|(s, _)| s == spec_name).map(|(_, r)| r.clone()).collect()
    }

    /// Removes a run; returns `true` if it existed.
    pub fn remove_run(&self, spec_name: &str, run_name: &str) -> bool {
        self.runs.write().remove(&(spec_name.to_string(), run_name.to_string())).is_some()
    }

    /// Removes a specification and all of its runs; returns `true` if the
    /// specification existed.
    pub fn remove_spec(&self, spec_name: &str) -> bool {
        let existed = self.specs.write().remove(spec_name).is_some();
        self.runs.write().retain(|(s, _), _| s != spec_name);
        existed
    }

    /// Total number of stored runs.
    pub fn run_count(&self) -> usize {
        self.runs.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn store_and_retrieve_specs_and_runs() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification());
        assert_eq!(store.spec_names(), vec!["fig2".to_string()]);
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        assert_eq!(store.run_count(), 2);
        assert!(store.run("fig2", "r1").is_some());
        assert_eq!(store.run_names("fig2"), vec!["r1".to_string(), "r2".to_string()]);
        assert!(store.run("fig2", "r3").is_none());
    }

    #[test]
    fn runs_require_their_spec_to_be_stored() {
        let store = WorkflowStore::new();
        let spec = fig2_specification();
        let run = fig2_run1(&spec);
        assert!(store.insert_run("orphan", run).is_none());
    }

    #[test]
    fn removal_cascades_from_spec_to_runs() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification());
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        assert!(store.remove_run("fig2", "r1"));
        assert!(!store.remove_run("fig2", "r1"));
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        assert!(store.remove_spec("fig2"));
        assert_eq!(store.run_count(), 0);
        assert!(store.spec("fig2").is_none());
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store);
                let spec = Arc::clone(&spec);
                std::thread::spawn(move || {
                    store.insert_run(&format!("run{i}"), fig2_run1(&spec)).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.run_count(), 4);
    }
}
