//! A thread-safe in-memory store of specifications and runs.
//!
//! The PDiffView prototype lets users store and later re-open specifications
//! and runs; this is the headless equivalent, also used by the benchmark
//! harness to share generated workloads between experiments and by
//! [`crate::service::DiffService`] as the source of truth for batch
//! differencing.
//!
//! # Locking discipline
//!
//! The store holds two locks: `specs` and `runs`.  Any operation that needs
//! both acquires them in that fixed order — **`specs` first, `runs` second**
//! — and holds both for the whole mutation/read, so that
//!
//! * a reader can take a consistent [`WorkflowStore::snapshot`] (it never
//!   observes runs of a specification that has been removed, nor a
//!   specification whose runs are mid-replacement), and
//! * writers cannot deadlock against each other (single lock order).
//!
//! Never acquire `specs` while holding `runs`.
//!
//! The full rank order across every store lock is `save_lock` → `specs` →
//! `runs` → `persist_fp_cache`.  This is enforced twice: statically by
//! `wfdiff-lint`'s WFL002 rule, and dynamically by the
//! `lockrank` module's wrappers around these fields, which panic on any
//! out-of-order acquisition when `debug_assertions` are on.
//!
//! # Specification versions
//!
//! Runs are validated against the exact [`Specification`] stored at insert
//! time: their annotated trees carry `origin` references **into that
//! specification's tree arena**.  Re-inserting a *structurally different*
//! specification under an existing name would silently strand those runs on a
//! stale version — diffs computed against the new version would read
//! out-of-range or wrong origins.  [`WorkflowStore::insert_spec`] therefore
//! refuses such a replacement while runs exist (returning
//! [`StoreError::SpecConflict`]), and [`WorkflowStore::replace_spec`]
//! performs it atomically by invalidating (removing) the stale runs in the
//! same critical section.

use crate::lockrank::{LockRank, RankedMutex, RankedRwLock};
use crate::storeio::{IoHandle, StoreIo};
use crate::wal::{WalStats, WalStatsSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wfdiff_sptree::{Run, Specification};

/// Default WAL size (bytes) past which a hot-path append triggers a
/// checkpoint fold; see [`WorkflowStore::set_wal_fold_threshold`].
pub const DEFAULT_WAL_FOLD_THRESHOLD: u64 = 1024 * 1024;

/// Errors raised by store mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A structurally different specification was inserted under a name that
    /// still has runs recorded against the stored version.  Remove the runs
    /// first or use [`WorkflowStore::replace_spec`] to invalidate them.
    SpecConflict {
        /// The contested specification name.
        name: String,
        /// Number of runs recorded against the stored version.
        runs: usize,
    },
    /// A run was inserted whose specification is not in the store.
    MissingSpec {
        /// The specification name the run references.
        name: String,
    },
    /// A run was inserted that was validated against a different *version*
    /// of the stored specification (same name, different structure).
    SpecVersionMismatch {
        /// The specification name.
        name: String,
        /// The rejected run's name.
        run: String,
    },
    /// A run was inserted via [`WorkflowStore::insert_run_new`] under a name
    /// that is already taken for its specification.
    DuplicateRun {
        /// The specification name.
        name: String,
        /// The contested run name.
        run: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::SpecConflict { name, runs } => write!(
                f,
                "specification {name:?} differs from the stored version which still has {runs} \
                 run(s); remove them or call replace_spec to invalidate them"
            ),
            StoreError::MissingSpec { name } => {
                write!(f, "specification {name:?} is not stored; insert it first")
            }
            StoreError::SpecVersionMismatch { name, run } => write!(
                f,
                "run {run:?} was validated against a different version of specification \
                 {name:?}; rebuild it against the stored version"
            ),
            StoreError::DuplicateRun { name, run } => write!(
                f,
                "specification {name:?} already stores a run named {run:?}; remove it first \
                 or pick another name"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// A consistent view of one specification and its runs, as returned by
/// [`WorkflowStore::snapshot`].
pub type SpecSnapshot = (Arc<Specification>, Vec<(String, Arc<Run>)>);

/// A named collection of specifications and, per specification, named runs.
///
/// See the [module docs](self) for the locking discipline and the
/// specification-versioning rules.
#[derive(Debug)]
pub struct WorkflowStore {
    specs: RankedRwLock<BTreeMap<String, Arc<Specification>>>,
    runs: RankedRwLock<BTreeMap<(String, String), Arc<Run>>>,
    /// Every durability-relevant filesystem operation goes through this
    /// handle, so a crash-injection wrapper can fault any of them.
    pub(crate) io: IoHandle,
    /// Live WAL counters (appends, bytes, replays, folds).
    pub(crate) wal_stats: WalStats,
    /// WAL size past which appends fold; 0 disables the automatic fold.
    pub(crate) wal_fold_threshold: AtomicU64,
    /// Serialises [`WorkflowStore::save_to_dir`] calls (two interleaved
    /// saves could tear each other's temp files and garbage-collection);
    /// held for the whole save, never while `specs`/`runs` are locked.
    pub(crate) save_lock: RankedMutex<()>,
    /// Memoised persistent fingerprints, keyed by in-memory arena
    /// fingerprint: both are deterministic functions of the specification,
    /// so repeated saves skip the full descriptor → specification rebuild.
    /// Bounded by the number of distinct spec versions ever saved.
    pub(crate) persist_fp_cache: RankedMutex<
        std::collections::HashMap<wfdiff_sptree::Fingerprint, wfdiff_sptree::Fingerprint>,
    >,
}

/// Iterates one specification's runs in O(log n + k) by ranging over the
/// `(spec, run)`-keyed map instead of scanning it.
fn runs_of<'a>(
    runs: &'a BTreeMap<(String, String), Arc<Run>>,
    spec_name: &str,
) -> impl Iterator<Item = (&'a (String, String), &'a Arc<Run>)> {
    let owned = spec_name.to_string();
    runs.range((owned.clone(), String::new())..).take_while(move |((s, _), _)| *s == owned)
}

impl Default for WorkflowStore {
    fn default() -> Self {
        WorkflowStore {
            specs: RankedRwLock::new(LockRank::Specs, BTreeMap::new()),
            runs: RankedRwLock::new(LockRank::Runs, BTreeMap::new()),
            io: IoHandle::default(),
            wal_stats: WalStats::default(),
            wal_fold_threshold: AtomicU64::new(DEFAULT_WAL_FOLD_THRESHOLD),
            save_lock: RankedMutex::new(LockRank::Save, ()),
            persist_fp_cache: RankedMutex::new(LockRank::FpCache, std::collections::HashMap::new()),
        }
    }
}

impl WorkflowStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        WorkflowStore::default()
    }

    /// Creates an empty store whose durability operations run through `io`
    /// instead of the default [`RealIo`](crate::storeio::RealIo) — the seam
    /// the crash-torture harness uses to inject a
    /// [`FaultIo`](crate::storeio::FaultIo).
    pub fn with_io(io: Arc<dyn StoreIo>) -> Self {
        WorkflowStore { io: IoHandle(io), ..WorkflowStore::default() }
    }

    /// Sets the WAL size (bytes) past which the next hot-path append folds
    /// the log into a full checkpoint (see the [`crate::wal`] docs).  `0`
    /// disables the automatic fold; the default is
    /// [`DEFAULT_WAL_FOLD_THRESHOLD`].
    pub fn set_wal_fold_threshold(&self, bytes: u64) {
        self.wal_fold_threshold.store(bytes, Ordering::Release);
    }

    /// The current automatic-fold threshold in bytes (0 = disabled).
    pub fn wal_fold_threshold(&self) -> u64 {
        self.wal_fold_threshold.load(Ordering::Acquire)
    }

    /// A snapshot of the store's WAL counters (appends, bytes, replayed
    /// records, folds) — the numbers `/metrics` exports per shard.
    pub fn wal_stats(&self) -> WalStatsSnapshot {
        self.wal_stats.snapshot()
    }

    /// Inserts a specification and returns its shared handle.
    ///
    /// Replacing an existing specification of the same name succeeds when the
    /// stored version is structurally identical (its runs remain valid) or
    /// has no runs; otherwise the insert is refused with
    /// [`StoreError::SpecConflict`] so stored runs can never reference a
    /// stale specification version.  Use [`WorkflowStore::replace_spec`] to
    /// force the replacement and invalidate the runs.
    pub fn insert_spec(&self, spec: Specification) -> Result<Arc<Specification>, StoreError> {
        let arc = Arc::new(spec);
        let name = arc.name().to_string();
        // Lock order: specs, then runs; both held across the check + insert
        // so no run can be recorded against the old version mid-replacement.
        let mut specs = self.specs.write();
        let runs = self.runs.read();
        if let Some(existing) = specs.get(&name) {
            if existing.tree() != arc.tree() {
                let run_count = runs_of(&runs, &name).count();
                if run_count > 0 {
                    return Err(StoreError::SpecConflict { name, runs: run_count });
                }
            }
        }
        specs.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Inserts a specification, force-replacing any stored version of the
    /// same name and **invalidating** (removing) the runs recorded against a
    /// structurally different old version.  Returns the new handle and the
    /// names of the invalidated runs.
    ///
    /// The replacement is atomic: no reader can observe the new
    /// specification together with the old version's runs.
    pub fn replace_spec(&self, spec: Specification) -> (Arc<Specification>, Vec<String>) {
        let arc = Arc::new(spec);
        let name = arc.name().to_string();
        let mut specs = self.specs.write();
        let mut runs = self.runs.write();
        let mut invalidated = Vec::new();
        if let Some(existing) = specs.get(&name) {
            if existing.tree() != arc.tree() {
                runs.retain(|(s, r), _| {
                    if *s == name {
                        invalidated.push(r.clone());
                        false
                    } else {
                        true
                    }
                });
            }
        }
        specs.insert(name, Arc::clone(&arc));
        (arc, invalidated)
    }

    /// Looks up a specification by name.
    pub fn spec(&self, name: &str) -> Option<Arc<Specification>> {
        self.specs.read().get(name).cloned()
    }

    /// Names of all stored specifications.
    pub fn spec_names(&self) -> Vec<String> {
        self.specs.read().keys().cloned().collect()
    }

    /// Inserts (or replaces) a run under the given name.
    ///
    /// The run's specification must already be stored **and** the run must
    /// have been validated against that exact version
    /// ([`Run::spec_fingerprint`] must match), so a run built before a
    /// [`WorkflowStore::replace_spec`] can never sneak back in against the
    /// new version.  The checks and the insert happen under one critical
    /// section so a concurrent [`WorkflowStore::remove_spec`] cannot
    /// interleave and leave an orphan run behind.
    pub fn insert_run(&self, run_name: &str, run: Run) -> Result<Arc<Run>, StoreError> {
        let key = (run.spec_name().to_string(), run_name.to_string());
        let specs = self.specs.read();
        let spec = specs
            .get(run.spec_name())
            .ok_or_else(|| StoreError::MissingSpec { name: run.spec_name().to_string() })?;
        if spec.fingerprint() != run.spec_fingerprint() {
            return Err(StoreError::SpecVersionMismatch {
                name: run.spec_name().to_string(),
                run: run_name.to_string(),
            });
        }
        let arc = Arc::new(run);
        self.runs.write().insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Like [`WorkflowStore::insert_run`], but refuses to replace an
    /// existing run of the same name ([`StoreError::DuplicateRun`]).  The
    /// existence check and the insert share one critical section, so two
    /// concurrent inserts of one name cannot both succeed — the network
    /// server relies on this to make its persist-failure rollback remove
    /// only the run it inserted itself.
    pub fn insert_run_new(&self, run_name: &str, run: Run) -> Result<Arc<Run>, StoreError> {
        let key = (run.spec_name().to_string(), run_name.to_string());
        let specs = self.specs.read();
        let spec = specs
            .get(run.spec_name())
            .ok_or_else(|| StoreError::MissingSpec { name: run.spec_name().to_string() })?;
        if spec.fingerprint() != run.spec_fingerprint() {
            return Err(StoreError::SpecVersionMismatch {
                name: run.spec_name().to_string(),
                run: run_name.to_string(),
            });
        }
        let mut runs = self.runs.write();
        if runs.contains_key(&key) {
            return Err(StoreError::DuplicateRun {
                name: run.spec_name().to_string(),
                run: run_name.to_string(),
            });
        }
        let arc = Arc::new(run);
        runs.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Looks up a run by specification and run name.
    pub fn run(&self, spec_name: &str, run_name: &str) -> Option<Arc<Run>> {
        self.runs.read().get(&(spec_name.to_string(), run_name.to_string())).cloned()
    }

    /// Names of the runs stored for a specification.
    pub fn run_names(&self, spec_name: &str) -> Vec<String> {
        runs_of(&self.runs.read(), spec_name).map(|((_, r), _)| r.clone()).collect()
    }

    /// Resolves a specification and a few named runs in one consistent
    /// critical section (specs then runs lock), without materialising the
    /// whole run collection the way [`WorkflowStore::snapshot`] does.
    ///
    /// Returns `None` when the specification is absent; missing runs resolve
    /// to `None` in the per-name slots.
    #[allow(clippy::type_complexity)]
    pub fn lookup_runs(
        &self,
        spec_name: &str,
        run_names: &[&str],
    ) -> Option<(Arc<Specification>, Vec<Option<Arc<Run>>>)> {
        let specs = self.specs.read();
        let runs = self.runs.read();
        let spec = specs.get(spec_name).cloned()?;
        let resolved = run_names
            .iter()
            .map(|name| runs.get(&(spec_name.to_string(), (*name).to_string())).cloned())
            .collect();
        Some((spec, resolved))
    }

    /// A consistent view of one specification and all of its runs (sorted by
    /// run name), taken under the store's lock order: either the
    /// specification with exactly the runs recorded against it, or `None` if
    /// the name is absent.
    pub fn snapshot(&self, spec_name: &str) -> Option<SpecSnapshot> {
        let specs = self.specs.read();
        let runs = self.runs.read();
        let spec = specs.get(spec_name).cloned()?;
        let spec_runs =
            runs_of(&runs, spec_name).map(|((_, name), r)| (name.clone(), r.clone())).collect();
        Some((spec, spec_runs))
    }

    /// A consistent view of **every** stored specification and its runs,
    /// sorted by specification name (and runs by run name), taken in one
    /// critical section under the store's lock order.
    ///
    /// This is the snapshot [`WorkflowStore::save_to_dir`] persists and
    /// [`crate::service::DiffService::warm_start`] replays: because both
    /// maps are read under the same lock acquisition, no concurrent writer
    /// can interleave a spec replacement between two specifications of the
    /// snapshot.
    pub fn snapshot_all(&self) -> Vec<(String, SpecSnapshot)> {
        let specs = self.specs.read();
        let runs = self.runs.read();
        specs
            .iter()
            .map(|(name, spec)| {
                let spec_runs: Vec<(String, Arc<Run>)> =
                    runs_of(&runs, name).map(|((_, r), run)| (r.clone(), run.clone())).collect();
                (name.clone(), (Arc::clone(spec), spec_runs))
            })
            .collect()
    }

    /// Removes a run; returns `true` if it existed.
    pub fn remove_run(&self, spec_name: &str, run_name: &str) -> bool {
        self.runs.write().remove(&(spec_name.to_string(), run_name.to_string())).is_some()
    }

    /// Removes a specification and all of its runs; returns `true` if the
    /// specification existed.
    ///
    /// The removal is atomic: both locks are taken (in the store's fixed
    /// order) before either map is touched, so no reader ever observes runs
    /// for a specification that is already gone.
    pub fn remove_spec(&self, spec_name: &str) -> bool {
        let mut specs = self.specs.write();
        let mut runs = self.runs.write();
        let existed = specs.remove(spec_name).is_some();
        runs.retain(|(s, _), _| s != spec_name);
        existed
    }

    /// Total number of stored runs.
    pub fn run_count(&self) -> usize {
        self.runs.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_sptree::SpecificationBuilder;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn store_and_retrieve_specs_and_runs() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification()).unwrap();
        assert_eq!(store.spec_names(), vec!["fig2".to_string()]);
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        assert_eq!(store.run_count(), 2);
        assert!(store.run("fig2", "r1").is_some());
        assert_eq!(store.run_names("fig2"), vec!["r1".to_string(), "r2".to_string()]);
        assert!(store.run("fig2", "r3").is_none());
    }

    #[test]
    fn runs_require_their_spec_to_be_stored() {
        let store = WorkflowStore::new();
        let spec = fig2_specification();
        let run = fig2_run1(&spec);
        assert!(matches!(store.insert_run("orphan", run), Err(StoreError::MissingSpec { .. })));
    }

    #[test]
    fn runs_built_against_a_replaced_spec_are_rejected() {
        let store = WorkflowStore::new();
        let old_spec = store.insert_spec(fig2_specification()).unwrap();
        let stale_run = fig2_run1(&old_spec);
        // Replace the (run-free) spec with a structurally different version
        // under the same name; the stale run must now be refused.
        store.insert_spec(other_spec_named_fig2()).unwrap();
        assert!(matches!(
            store.insert_run("stale", stale_run),
            Err(StoreError::SpecVersionMismatch { .. })
        ));
        // A run built against the current version is accepted.
        let fresh = store.spec("fig2").unwrap().execute(&mut wfdiff_sptree::FullDecider).unwrap();
        store.insert_run("fresh", fresh).unwrap();
    }

    #[test]
    fn insert_run_new_refuses_to_replace() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification()).unwrap();
        let original = store.insert_run_new("r1", fig2_run1(&spec)).unwrap();
        let err = store.insert_run_new("r1", fig2_run2(&spec)).unwrap_err();
        assert_eq!(
            err,
            StoreError::DuplicateRun { name: "fig2".to_string(), run: "r1".to_string() }
        );
        // The original run is untouched (same Arc), and plain insert_run
        // still replaces.
        assert!(Arc::ptr_eq(&store.run("fig2", "r1").unwrap(), &original));
        store.insert_run("r1", fig2_run2(&spec)).unwrap();
        assert!(!Arc::ptr_eq(&store.run("fig2", "r1").unwrap(), &original));
    }

    #[test]
    fn removal_cascades_from_spec_to_runs() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        assert!(store.remove_run("fig2", "r1"));
        assert!(!store.remove_run("fig2", "r1"));
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        assert!(store.remove_spec("fig2"));
        assert_eq!(store.run_count(), 0);
        assert!(store.spec("fig2").is_none());
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store);
                let spec = Arc::clone(&spec);
                std::thread::spawn(move || {
                    store.insert_run(&format!("run{i}"), fig2_run1(&spec)).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.run_count(), 4);
    }

    fn other_spec_named_fig2() -> wfdiff_sptree::Specification {
        let mut b = SpecificationBuilder::new("fig2");
        b.path(&["1", "2", "6", "7"]);
        b.build().unwrap()
    }

    #[test]
    fn reinserting_an_identical_spec_keeps_runs() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        // Same structure: the runs stay valid and stay stored.
        store.insert_spec(fig2_specification()).unwrap();
        assert_eq!(store.run_count(), 1);
    }

    #[test]
    fn replacing_a_spec_with_runs_is_refused() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        let err = store.insert_spec(other_spec_named_fig2()).unwrap_err();
        assert_eq!(err, StoreError::SpecConflict { name: "fig2".into(), runs: 1 });
        // The stored version and its run are untouched.
        assert!(store.run("fig2", "r1").is_some());
        assert_eq!(store.spec("fig2").unwrap().stats().edges, spec.stats().edges);
    }

    #[test]
    fn replacing_a_spec_without_runs_succeeds() {
        let store = WorkflowStore::new();
        store.insert_spec(fig2_specification()).unwrap();
        let replaced = store.insert_spec(other_spec_named_fig2()).unwrap();
        assert_eq!(store.spec("fig2").unwrap().stats().edges, replaced.stats().edges);
    }

    #[test]
    fn replace_spec_invalidates_stale_runs() {
        let store = WorkflowStore::new();
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        let (new_spec, invalidated) = store.replace_spec(other_spec_named_fig2());
        assert_eq!(invalidated, vec!["r1".to_string(), "r2".to_string()]);
        assert_eq!(store.run_count(), 0, "stale runs are gone");
        assert_eq!(store.spec("fig2").unwrap().stats().edges, new_spec.stats().edges);
        // Replacing with an identical structure never invalidates.
        let (_, invalidated) = store.replace_spec(other_spec_named_fig2());
        assert!(invalidated.is_empty());
    }

    #[test]
    fn arena_permuted_spec_builds_are_distinct_versions() {
        // The same DAG with its parallel branches declared in a different
        // order: equivalent canonical trees, different arena layouts.  Runs
        // reference spec nodes by arena id, so the two builds must count as
        // different versions.
        let build = |order: [&str; 2]| {
            let mut b = SpecificationBuilder::new("perm");
            b.path(&["s", order[0], "t"]);
            b.path(&["s", order[1], "t"]);
            b.build().unwrap()
        };
        let spec_ab = build(["a", "b"]);
        let spec_ba = build(["b", "a"]);
        assert!(spec_ab.tree().equivalent(spec_ba.tree()), "same canonical structure");
        assert_ne!(spec_ab.tree(), spec_ba.tree(), "different arena layouts");
        assert_ne!(spec_ab.fingerprint(), spec_ba.fingerprint());

        let store = WorkflowStore::new();
        let first = store.insert_spec(spec_ab).unwrap();
        let stale_run = first.execute(&mut wfdiff_sptree::FullDecider).unwrap();
        // Replacing with the permuted build succeeds (no runs yet) …
        store.insert_spec(spec_ba).unwrap();
        // … and the run built against the first build is now refused.
        assert!(matches!(
            store.insert_run("stale", stale_run),
            Err(StoreError::SpecVersionMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_removal() {
        // A writer repeatedly inserts the spec + a run and atomically removes
        // the spec; readers must never see runs without their specification.
        let store = Arc::new(WorkflowStore::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let spec = store.insert_spec(fig2_specification()).unwrap();
                    store.insert_run("r1", fig2_run1(&spec)).unwrap();
                    store.remove_spec("fig2");
                    // The removal cascaded atomically.
                    assert!(store.snapshot("fig2").is_none());
                    assert_eq!(store.run_names("fig2"), Vec::<String>::new());
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut observed = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        if let Some((spec, runs)) = store.snapshot("fig2") {
                            observed += 1;
                            for (_, run) in runs {
                                assert_eq!(run.spec_name(), spec.name());
                            }
                        }
                    }
                    observed
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    /// The runtime lock-rank guard (see `crate::lockrank`) fires on the
    /// store's own locks: acquiring `specs` while holding `runs` — the exact
    /// inversion the module docs forbid — panics deterministically in a
    /// debug build instead of deadlocking some unlucky concurrent test.
    #[test]
    #[cfg(debug_assertions)]
    fn lock_rank_guard_rejects_runs_before_specs() {
        let store = WorkflowStore::new();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _runs = store.runs.read();
            let _specs = store.specs.read();
        }));
        std::panic::set_hook(hook);
        let payload = result.expect_err("inverted acquisition must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("lock-rank violation"), "unexpected panic: {msg:?}");
    }
}
