//! The per-shard write-ahead log: `wal.log` beside `manifest.json`.
//!
//! A full [`WorkflowStore::save_to_dir`] rewrites every changed document and
//! commits with a manifest rename — O(store).  The WAL makes the hot
//! mutation paths O(append) instead: a run insert, a run removal or a
//! cluster-state delta is one length-prefixed, checksummed record appended
//! to `wal.log` and fsynced, and nothing else is touched.
//!
//! # Record framing
//!
//! ```text
//! [u32 LE len][u32 LE crc32][u8 kind][len-1 bytes of JSON payload]
//! ```
//!
//! `len` counts the kind byte plus the payload; `crc32` (IEEE) covers the
//! kind byte plus the payload.  Kinds: 1 = run insert, 2 = run remove,
//! 3 = cluster delta, 4 = metric-index delta, 5 = stream event (one
//! node-lifecycle event of an in-flight streamed run).  A record is valid
//! only if its
//! header fits, its length
//! is sane, its checksum matches and its payload deserialises; the **first**
//! invalid record ends the log — everything from its offset on is a torn
//! tail (a crashed append) and is truncated by the next
//! [`WorkflowStore::load_from_dir`].
//!
//! # Replay semantics
//!
//! `load_from_dir` replays the WAL **after** loading the manifest-committed
//! documents, in append order.  Replay is idempotent: re-inserting a run the
//! manifest already holds replaces it with identical content, removing an
//! absent run is a no-op, and an insert recorded against a specification
//! version the manifest no longer lists is skipped (the record predates a
//! spec replacement whose full save crashed before the WAL truncation).
//! Cluster-delta records are consumed by
//! [`DiffService::load_cluster_state`](crate::service::DiffService::load_cluster_state),
//! which overlays them (last write wins per spec) on `cluster_cache.json`
//! and validates the result like any checkpoint entry.
//!
//! A full save **folds** the log: cluster deltas are merged into
//! `cluster_cache.json`, metric-index deltas into `metric_index.json`, the
//! snapshot is committed via the manifest rename, and the WAL is truncated
//! to zero.  The fold runs automatically once the
//! log grows past [`WorkflowStore::set_wal_fold_threshold`].
//!
//! [`WorkflowStore::save_to_dir`]: crate::store::WorkflowStore::save_to_dir
//! [`WorkflowStore::load_from_dir`]: crate::store::WorkflowStore::load_from_dir
//! [`WorkflowStore::set_wal_fold_threshold`]: crate::store::WorkflowStore::set_wal_fold_threshold

use crate::cluster::persist::SpecClusterDoc;
use crate::io::RunDescriptor;
use crate::metricindex::persist::SpecMetricDoc;
use crate::persist::PersistError;
use crate::storeio::StoreIo;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Upper bound on one record's `len` field; anything larger is treated as a
/// torn tail rather than trusted as an allocation size.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of framing before each record's body.
const HEADER_BYTES: usize = 8;

const KIND_RUN_INSERT: u8 = 1;
const KIND_RUN_REMOVE: u8 = 2;
const KIND_CLUSTER_DELTA: u8 = 3;
const KIND_METRIC_DELTA: u8 = 4;
const KIND_STREAM_EVENT: u8 = 5;

/// A run insert: enough to rebuild and re-validate the run at replay time.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct RunInsertRecord {
    /// Specification name.
    pub(crate) spec: String,
    /// Canonical persistent fingerprint (hex) of the specification version
    /// the run belongs to; replay skips the record if the manifest has moved
    /// to a different version.
    pub(crate) spec_fingerprint: String,
    /// Run name.
    pub(crate) name: String,
    /// The run itself.
    pub(crate) run: RunDescriptor,
}

/// A run removal.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct RunRemoveRecord {
    /// Specification name.
    pub(crate) spec: String,
    /// Run name.
    pub(crate) name: String,
}

/// One specification's updated cluster checkpoint entry (last write wins).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct ClusterDeltaRecord {
    /// Cost-model cache key the distances were computed under.
    pub(crate) cost_key: u64,
    /// The checkpoint entry, exactly as `cluster_cache.json` would hold it.
    pub(crate) doc: SpecClusterDoc,
}

/// One specification's updated metric-index checkpoint entry (last write
/// wins), the vantage-point-tree analogue of [`ClusterDeltaRecord`].
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct MetricDeltaRecord {
    /// Cost-model cache key the distances were computed under.
    pub(crate) cost_key: u64,
    /// The checkpoint entry, exactly as `metric_index.json` would hold it.
    pub(crate) doc: SpecMetricDoc,
}

/// One node-lifecycle event of an in-flight streamed run.  Streams are
/// WAL-only state: they have no manifest document, so a fold re-appends the
/// live records of every still-open stream after truncating the log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StreamEventRecord {
    /// Specification name.
    pub(crate) spec: String,
    /// Canonical persistent fingerprint (hex) of the specification version
    /// the stream was opened against; replay drops the whole stream if the
    /// manifest has moved to a different version.
    pub(crate) spec_fingerprint: String,
    /// Stream name (becomes the run name at finalisation).
    pub(crate) stream: String,
    /// Zero-based position of this event in the stream's event sequence.
    pub(crate) seq: u64,
    /// The event itself, or `None` for the closure marker appended once the
    /// finalised run is durable — replay treats a closed stream's records as
    /// already folded into the run and drops them.
    pub(crate) event: Option<crate::stream::StreamEvent>,
}

/// A decoded WAL record.
#[derive(Debug)]
pub(crate) enum WalRecord {
    /// Kind 1.
    RunInsert(RunInsertRecord),
    /// Kind 2.
    RunRemove(RunRemoveRecord),
    /// Kind 3.
    ClusterDelta(ClusterDeltaRecord),
    /// Kind 4.
    MetricDelta(MetricDeltaRecord),
    /// Kind 5.
    StreamEvent(StreamEventRecord),
}

/// CRC32 (IEEE 802.3, reflected) — dependency-free, table-driven.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[usize::from((crc as u8) ^ b)] ^ (crc >> 8);
    }
    !crc
}

fn io_err(path: &Path, context: &'static str, source: std::io::Error) -> PersistError {
    PersistError::Io { path: path.to_path_buf(), context, source }
}

/// The WAL path inside a store directory.
pub(crate) fn wal_path(dir: &Path) -> std::path::PathBuf {
    dir.join(WAL_FILE)
}

fn encode_one(path: &Path, record: &WalRecord, out: &mut Vec<u8>) -> Result<(), PersistError> {
    let (kind, payload) = match record {
        WalRecord::RunInsert(r) => (KIND_RUN_INSERT, serde_json::to_string(r)),
        WalRecord::RunRemove(r) => (KIND_RUN_REMOVE, serde_json::to_string(r)),
        WalRecord::ClusterDelta(r) => (KIND_CLUSTER_DELTA, serde_json::to_string(r)),
        WalRecord::MetricDelta(r) => (KIND_METRIC_DELTA, serde_json::to_string(r)),
        WalRecord::StreamEvent(r) => (KIND_STREAM_EVENT, serde_json::to_string(r)),
    };
    let payload = payload
        .map_err(|source| PersistError::Json { path: path.to_path_buf(), source })?
        .into_bytes();
    let len = 1 + payload.len();
    assert!(len <= MAX_RECORD_BYTES as usize, "WAL record exceeds the framing bound");
    let mut body = Vec::with_capacity(len);
    body.push(kind);
    body.extend_from_slice(&payload);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(())
}

/// Appends `records` to `dir/wal.log` as one write + one fsync (the whole
/// durability cost of a hot-path mutation).  Returns the bytes appended.
pub(crate) fn append(
    io: &dyn StoreIo,
    dir: &Path,
    records: &[WalRecord],
) -> Result<u64, PersistError> {
    let path = wal_path(dir);
    let mut buf = Vec::new();
    for record in records {
        encode_one(&path, record, &mut buf)?;
    }
    if buf.is_empty() {
        return Ok(0);
    }
    io.append_file(&path, &buf).map_err(|e| io_err(&path, "appending to", e))?;
    io.fsync_file(&path).map_err(|e| io_err(&path, "syncing", e))?;
    Ok(buf.len() as u64)
}

/// What [`scan`] found in a WAL file.
#[derive(Debug, Default)]
pub(crate) struct WalScan {
    /// Every valid record, in append order.
    pub(crate) records: Vec<WalRecord>,
    /// Byte offset past the last valid record — where a torn tail (if any)
    /// starts.
    pub(crate) valid_len: u64,
    /// Total file length on disk.
    pub(crate) total_len: u64,
}

/// Reads a little-endian `u32` at `offset`, or `None` past the end — the
/// panic-free form of `bytes[offset..offset + 4].try_into().unwrap()`.
fn read_u32_le(bytes: &[u8], offset: usize) -> Option<u32> {
    let s = bytes.get(offset..offset.checked_add(4)?)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads and decodes `dir/wal.log`.  A missing file is an empty log; a
/// decode failure ends the log at that offset (`valid_len < total_len`
/// flags the torn tail) and is never an error — only unreadable storage is.
pub(crate) fn scan(dir: &Path) -> Result<WalScan, PersistError> {
    let path = wal_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(io_err(&path, "reading", e)),
    };
    let mut out = WalScan { total_len: bytes.len() as u64, ..WalScan::default() };
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER_BYTES {
        let (Some(len), Some(crc)) = (read_u32_le(&bytes, offset), read_u32_le(&bytes, offset + 4))
        else {
            break;
        };
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let body_start = offset + HEADER_BYTES;
        let Some(body_end) = body_start.checked_add(len as usize) else { break };
        if body_end > bytes.len() {
            break;
        }
        let body = &bytes[body_start..body_end];
        if crc32(body) != crc {
            break;
        }
        let Ok(payload) = std::str::from_utf8(&body[1..]) else { break };
        let record = match body[0] {
            KIND_RUN_INSERT => serde_json::from_str(payload).map(WalRecord::RunInsert),
            KIND_RUN_REMOVE => serde_json::from_str(payload).map(WalRecord::RunRemove),
            KIND_CLUSTER_DELTA => serde_json::from_str(payload).map(WalRecord::ClusterDelta),
            KIND_METRIC_DELTA => serde_json::from_str(payload).map(WalRecord::MetricDelta),
            KIND_STREAM_EVENT => serde_json::from_str(payload).map(WalRecord::StreamEvent),
            _ => break,
        };
        let Ok(record) = record else { break };
        out.records.push(record);
        offset = body_end;
    }
    out.valid_len = offset as u64;
    Ok(out)
}

/// Truncates `dir/wal.log` to `len` bytes and syncs it — the torn-tail
/// repair (`len` = last valid offset) and the post-fold reset (`len` = 0).
/// A missing file is only tolerated when truncating to zero.
pub(crate) fn truncate_to(io: &dyn StoreIo, dir: &Path, len: u64) -> Result<(), PersistError> {
    let path = wal_path(dir);
    match io.truncate_file(&path, len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && len == 0 => return Ok(()),
        Err(e) => return Err(io_err(&path, "truncating", e)),
    }
    io.fsync_file(&path).map_err(|e| io_err(&path, "syncing", e))
}

// ---------------------------------------------------------------------------
// Live counters and public snapshots
// ---------------------------------------------------------------------------

/// Live WAL counters of one [`WorkflowStore`](crate::store::WorkflowStore);
/// the store updates them on append, replay and fold.
#[derive(Debug, Default)]
pub(crate) struct WalStats {
    /// Records appended since the store was created.
    pub(crate) appends_total: AtomicU64,
    /// Current `wal.log` length in bytes (0 right after a fold).
    pub(crate) bytes: AtomicU64,
    /// Records replayed past the manifest by the load that built the store.
    pub(crate) replayed_records: AtomicU64,
    /// Checkpoint folds (full saves that truncated the WAL).
    pub(crate) folds_total: AtomicU64,
}

impl WalStats {
    pub(crate) fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            appends_total: self.appends_total.load(Ordering::Acquire),
            bytes: self.bytes.load(Ordering::Acquire),
            replayed_records: self.replayed_records.load(Ordering::Acquire),
            folds_total: self.folds_total.load(Ordering::Acquire),
        }
    }
}

/// A point-in-time snapshot of a store's WAL counters — what the `/metrics`
/// endpoint exports per shard as `wfdiff_wal_appends_total`,
/// `wfdiff_wal_bytes`, `wfdiff_wal_replayed_records` and
/// `wfdiff_checkpoint_folds_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStatsSnapshot {
    /// Records appended since the store was created.
    pub appends_total: u64,
    /// Current `wal.log` length in bytes (0 right after a fold).
    pub bytes: u64,
    /// Records replayed past the manifest by the load that built the store.
    pub replayed_records: u64,
    /// Checkpoint folds (full saves that truncated the WAL).
    pub folds_total: u64,
}

/// What `store_tool wal` reports about one store directory's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalSummary {
    /// Valid records in the log.
    pub records: usize,
    /// Run-insert records (kind 1).
    pub run_inserts: usize,
    /// Run-remove records (kind 2).
    pub run_removes: usize,
    /// Cluster-delta records (kind 3).
    pub cluster_deltas: usize,
    /// Metric-index-delta records (kind 4).
    pub metric_deltas: usize,
    /// Stream-event records (kind 5), closure markers included.
    pub stream_events: usize,
    /// Bytes of valid records.
    pub bytes: u64,
    /// Trailing bytes that do not decode (a torn append; repaired by the
    /// next load).
    pub torn_bytes: u64,
}

/// Inspects `dir/wal.log` without loading the store: record counts by kind,
/// valid bytes and torn-tail bytes.  A missing log is an all-zero summary.
pub fn inspect(dir: impl AsRef<Path>) -> Result<WalSummary, PersistError> {
    let scan = scan(dir.as_ref())?;
    let mut summary = WalSummary {
        records: scan.records.len(),
        bytes: scan.valid_len,
        torn_bytes: scan.total_len - scan.valid_len,
        ..WalSummary::default()
    };
    for record in &scan.records {
        match record {
            WalRecord::RunInsert(_) => summary.run_inserts += 1,
            WalRecord::RunRemove(_) => summary.run_removes += 1,
            WalRecord::ClusterDelta(_) => summary.cluster_deltas += 1,
            WalRecord::MetricDelta(_) => summary.metric_deltas += 1,
            WalRecord::StreamEvent(_) => summary.stream_events += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storeio::RealIo;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("wfdiff-wal-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn insert_record(name: &str) -> WalRecord {
        let spec = wfdiff_workloads::figures::fig2_specification();
        let run = wfdiff_workloads::figures::fig2_run1(&spec);
        WalRecord::RunInsert(RunInsertRecord {
            spec: "fig2".to_string(),
            spec_fingerprint: spec.fingerprint().to_string(),
            name: name.to_string(),
            run: RunDescriptor::from_run(&run),
        })
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC check value; pinning it pins the
        // polynomial, reflection and final xor — i.e. the on-disk format.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_roundtrip_preserves_order_and_kinds() {
        let dir = TempDir::new("roundtrip");
        let records = vec![
            insert_record("r1"),
            WalRecord::RunRemove(RunRemoveRecord {
                spec: "fig2".to_string(),
                name: "r1".to_string(),
            }),
            insert_record("r2"),
        ];
        let bytes = append(&RealIo, dir.path(), &records).unwrap();
        assert!(bytes > 0);
        let scan = scan(dir.path()).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, bytes);
        assert_eq!(scan.total_len, bytes);
        assert!(matches!(&scan.records[0], WalRecord::RunInsert(r) if r.name == "r1"));
        assert!(matches!(&scan.records[1], WalRecord::RunRemove(r) if r.name == "r1"));
        assert!(matches!(&scan.records[2], WalRecord::RunInsert(r) if r.name == "r2"));
        let summary = inspect(dir.path()).unwrap();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.run_inserts, 2);
        assert_eq!(summary.run_removes, 1);
        assert_eq!(summary.cluster_deltas, 0);
        assert_eq!(summary.torn_bytes, 0);
    }

    #[test]
    fn missing_log_scans_empty() {
        let dir = TempDir::new("missing");
        let scan = scan(dir.path()).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.total_len, 0);
        assert_eq!(inspect(dir.path()).unwrap(), WalSummary::default());
        // Truncating an absent log to zero is the fold's no-op case.
        truncate_to(&RealIo, dir.path(), 0).unwrap();
    }

    #[test]
    fn torn_tails_end_the_log_at_the_last_valid_record() {
        let dir = TempDir::new("torn");
        append(&RealIo, dir.path(), &[insert_record("r1"), insert_record("r2")]).unwrap();
        let full = std::fs::read(wal_path(dir.path())).unwrap();
        let keep = full.len() - 7; // chop into the last record's payload
        for torn in [
            full[..keep].to_vec(),                           // truncated payload
            [&full[..], &full[..5]].concat(),                // partial next header
            [&full[..], &[9, 0, 0, 0, 1, 2, 3, 4]].concat(), // bogus header, no body
        ] {
            std::fs::write(wal_path(dir.path()), &torn).unwrap();
            let scan = scan(dir.path()).unwrap();
            assert!(scan.valid_len < scan.total_len, "tail detected");
            let summary = inspect(dir.path()).unwrap();
            assert!(summary.torn_bytes > 0);
            // Repair: truncate to the valid prefix and re-scan clean.
            truncate_to(&RealIo, dir.path(), scan.valid_len).unwrap();
            let repaired = super::scan(dir.path()).unwrap();
            assert_eq!(repaired.valid_len, repaired.total_len);
            assert!(!repaired.records.is_empty());
        }
    }

    #[test]
    fn a_corrupted_byte_invalidates_the_record_checksum() {
        let dir = TempDir::new("crc");
        append(&RealIo, dir.path(), &[insert_record("r1")]).unwrap();
        let mut bytes = std::fs::read(wal_path(dir.path())).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(wal_path(dir.path()), &bytes).unwrap();
        let scan = scan(dir.path()).unwrap();
        assert_eq!(scan.records.len(), 0, "checksum rejects the flipped byte");
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn appends_after_a_fold_start_a_fresh_log() {
        let dir = TempDir::new("fold");
        append(&RealIo, dir.path(), &[insert_record("r1")]).unwrap();
        truncate_to(&RealIo, dir.path(), 0).unwrap();
        assert_eq!(inspect(dir.path()).unwrap().records, 0);
        append(&RealIo, dir.path(), &[insert_record("r2")]).unwrap();
        let scan = scan(dir.path()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(&scan.records[0], WalRecord::RunInsert(r) if r.name == "r2"));
    }
}
