//! PDiffView — a headless provenance-difference viewer (Section VII).
//!
//! The paper's prototype lets users *view, store, generate and import/export*
//! SP-specifications and their runs, and step through the minimum-cost edit
//! script between two runs, with inserted paths highlighted in green and
//! deleted paths in red; large workflows can be clustered into composite
//! modules and the difference viewed at any level of that hierarchy.
//!
//! This crate provides the same capabilities without a GUI:
//!
//! * [`store`] — a thread-safe in-memory store of specifications and runs,
//! * [`persist`] — durable, versioned on-disk persistence for the store
//!   (crash-safe saves, fully validated loads) and the
//!   [`DiffService::warm_start`] cache-priming path,
//! * [`wal`] — the append-only write-ahead log behind hot-path durability:
//!   run inserts/removals and cluster deltas become O(append) records that
//!   [`WorkflowStore::load_from_dir`] replays past the manifest commit point,
//! * [`storeio`] — the [`StoreIo`] trait abstracting every durability-relevant
//!   filesystem operation, with a [`RealIo`] passthrough and a deterministic
//!   crash-injecting [`FaultIo`] used by the crash-torture harness,
//! * [`io`] — JSON import/export and a simple XML export of specifications,
//!   runs and edit scripts (the paper's prototype stored runs as XML),
//! * [`stream`] — streaming run ingestion: the [`PartialRun`] builder
//!   consumes ordered node-lifecycle events (`started` / `completed` /
//!   `error` / `cancelled`), validates each against the specification with
//!   typed errors, maintains the certified prefix profile live drift
//!   detection diffs against cluster medoids, and finalizes into a fully
//!   validated run,
//! * [`session`] — differencing sessions that compute the distance, the
//!   mapping and the edit script and let a caller step through the operations,
//! * [`service`] — the batch diff engine: a store-backed [`DiffService`] with
//!   a shared fingerprint-keyed cache and a worker pool for all-pairs and
//!   batch differencing,
//! * [`render`] — textual and Graphviz/DOT renderings of a diff (red deleted
//!   paths on the source run, green inserted paths on the target run),
//! * [`cluster`] — composite-module clustering (the "zoom" of large
//!   provenance graphs) **and** run clustering: a deterministic k-medoids
//!   clusterer, the [`IncrementalClusterIndex`] that follows the store as
//!   runs stream in or out, and its optional on-disk checkpoint,
//! * [`metricindex`] — the metric index behind pruned `GET /similar`
//!   queries: a deterministic vantage-point tree per specification with
//!   certified triangle-inequality pruning, maintained incrementally and
//!   checkpointed as `metric_index.json`,
//! * [`serve`] — a dependency-free HTTP/1.1 front-end over `std::net`: a
//!   non-blocking reactor feeds a bounded worker pool, specs are partitioned
//!   across N store shards by a stable hash, and a lock-cheap metrics
//!   registry renders Prometheus text at `GET /metrics`; serves store
//!   snapshots, run inserts, single/batch diffs, nearest-run queries and
//!   cluster summaries to remote clients.  See the `wfdiff_serve` binary.
//!
//! # Example
//!
//! Store two runs, difference them through the batch engine and ask the
//! PDiffView question — "which stored run is this one closest to?":
//!
//! ```
//! use std::sync::Arc;
//! use wfdiff_pdiffview::{DiffService, WorkflowStore};
//! use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};
//!
//! let store = Arc::new(WorkflowStore::new());
//! let spec = store.insert_spec(fig2_specification()).unwrap();
//! store.insert_run("r1", fig2_run1(&spec)).unwrap();
//! store.insert_run("r2", fig2_run2(&spec)).unwrap();
//!
//! let service = DiffService::new(Arc::clone(&store));
//! assert_eq!(service.diff("fig2", "r1", "r2").unwrap().distance, 4.0);
//!
//! let nearest = service.nearest_runs("fig2", "r1", 1).unwrap();
//! assert_eq!(nearest[0].target, "r2");
//! ```

#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod io;
mod lockrank;
pub mod metricindex;
pub mod persist;
pub mod render;
pub mod serve;
pub mod service;
pub mod session;
pub mod store;
pub mod storeio;
pub mod stream;
pub mod wal;

pub use cluster::{
    ClusterCacheReport, ClusterDiff, ClusterSnapshot, Clustering, IncrementalClusterIndex,
    KMedoids, KMedoidsConfig, RunCluster, DEFAULT_CLUSTER_SEED,
};
pub use io::{RunDescriptor, SpecDescriptor, DESCRIPTOR_FORMAT};
pub use metricindex::{
    IncrementalMetricIndex, MedoidPivots, MetricIndexReport, PruneStats, DEFAULT_METRIC_SEED,
    METRIC_INDEX_FILE, METRIC_INDEX_FORMAT,
};
pub use persist::{PersistError, SaveSummary, STORE_FORMAT};
pub use render::{render_diff_dot, render_diff_text};
pub use serve::{ServeConfig, ServeMetrics, Server, ServerHandle, ShardEntry, ShardRouter};
pub use service::{
    AllPairsResult, DiffService, DiffServiceBuilder, DriftClusterStatus, DriftMonitor, DriftReport,
    PairDistance, ServiceError, StreamAck, StreamBatchOutcome, StreamLoadReport, WarmStartReport,
};
pub use session::DiffSession;
pub use store::{SpecSnapshot, StoreError, WorkflowStore, DEFAULT_WAL_FOLD_THRESHOLD};
pub use storeio::{
    FaultIo, FaultMode, RealIo, StoreIo, FAULT_EXIT_CODE, FAULT_MODE_ENV, FAULT_POINT_ENV,
};
pub use stream::{EventKind, NodeState, PartialRun, StreamError, StreamEvent};
pub use wal::{WalStatsSnapshot, WalSummary, WAL_FILE};
