//! PDiffView — a headless provenance-difference viewer (Section VII).
//!
//! The paper's prototype lets users *view, store, generate and import/export*
//! SP-specifications and their runs, and step through the minimum-cost edit
//! script between two runs, with inserted paths highlighted in green and
//! deleted paths in red; large workflows can be clustered into composite
//! modules and the difference viewed at any level of that hierarchy.
//!
//! This crate provides the same capabilities without a GUI:
//!
//! * [`store`] — a thread-safe in-memory store of specifications and runs,
//! * [`persist`] — durable, versioned on-disk persistence for the store
//!   (crash-safe saves, fully validated loads) and the
//!   [`DiffService::warm_start`] cache-priming path,
//! * [`io`] — JSON import/export and a simple XML export of specifications,
//!   runs and edit scripts (the paper's prototype stored runs as XML),
//! * [`session`] — differencing sessions that compute the distance, the
//!   mapping and the edit script and let a caller step through the operations,
//! * [`service`] — the batch diff engine: a store-backed [`DiffService`] with
//!   a shared fingerprint-keyed cache and a worker pool for all-pairs and
//!   batch differencing,
//! * [`render`] — textual and Graphviz/DOT renderings of a diff (red deleted
//!   paths on the source run, green inserted paths on the target run),
//! * [`cluster`] — composite-module clustering and per-cluster difference
//!   summaries for zooming into large provenance graphs,
//! * [`serve`] — a dependency-free HTTP/1.1 front-end (bounded worker pool
//!   over `std::net`) that serves store snapshots, run inserts, single/batch
//!   diffs and cluster summaries to remote clients; see the `wfdiff_serve`
//!   binary.

#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod io;
pub mod persist;
pub mod render;
pub mod serve;
pub mod service;
pub mod session;
pub mod store;

pub use cluster::{ClusterDiff, Clustering};
pub use io::{RunDescriptor, SpecDescriptor, DESCRIPTOR_FORMAT};
pub use persist::{PersistError, SaveSummary, STORE_FORMAT};
pub use render::{render_diff_dot, render_diff_text};
pub use serve::{ServeConfig, Server, ServerHandle};
pub use service::{
    AllPairsResult, DiffService, DiffServiceBuilder, PairDistance, ServiceError, WarmStartReport,
};
pub use session::DiffSession;
pub use store::{SpecSnapshot, StoreError, WorkflowStore};
