//! [`IncrementalMetricIndex`] — a per-specification `VpTree` that follows
//! the store, the nearest-run analogue of
//! [`IncrementalClusterIndex`](crate::cluster::incremental::IncrementalClusterIndex).
//!
//! The index holds one vantage-point tree per specification, tagged with
//! the specification's version fingerprint and the exact member set it was
//! built over.  [`IncrementalMetricIndex::nearest`] rebuilds lazily when
//! either diverges; [`IncrementalMetricIndex::insert_run`] descends the
//! existing tree (O(depth) distance evaluations) instead of rebuilding, and
//! [`IncrementalMetricIndex::remove_run`] removes leaf members in place.  A
//! removal that hits a *pivot* — or a run replaced under an unchanged name,
//! whose old distances shaped the tree — drops the specification's state;
//! the next query rebuilds it.  Like the cluster index, every state is a
//! cache of derived data: dropping one never loses information, and
//! [`persist`](crate::metricindex::persist) checkpoints it beside the store
//! so a restarted server resumes without re-differencing.
//!
//! Dirty tracking mirrors the cluster index record for record: mutations
//! mark their specification dirty, and the persistence layer consumes the
//! set to append one WAL delta per changed spec.

use super::vptree::{MedoidPivots, QueryStats, RemoveOutcome, VpTree};
use crate::cluster::incremental::DistanceOracle;
use parking_lot::Mutex;
use std::collections::HashMap;
use wfdiff_sptree::Fingerprint;

/// Default pivot-draw seed of the metric index; a constant so every server
/// builds the same tree over the same store.
pub const DEFAULT_METRIC_SEED: u64 = 0x9D17;

/// Statistics of one pruned `/similar` query — how much work the triangle
/// inequality saved, and under what guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PruneStats {
    /// Distances requested from the oracle (the exact sweep needs `n - 1`).
    pub distance_evals: usize,
    /// Vantage-point-tree nodes visited.
    pub nodes_visited: usize,
    /// Subtrees excluded by a certified (or ε-relaxed) bound.
    pub subtrees_pruned: usize,
    /// Leaf candidates excluded by a memoized medoid-pivot bound.
    pub members_pruned: usize,
    /// The ε the query ran under: `0` means every reported neighbour is
    /// certified exact; `ε > 0` guarantees every reported distance is at
    /// most `(1 + ε)` times the true `k`-th distance.
    pub approx_epsilon: f64,
}

/// Per-specification metric-index state.
#[derive(Debug, Clone)]
pub(crate) struct SpecMetricState {
    /// Seed of the pivot draw the tree was built with.
    pub(crate) seed: u64,
    /// The specification version the tree was built against.
    pub(crate) version: Fingerprint,
    /// Indexed runs, sorted by name.
    pub(crate) members: Vec<String>,
    /// The vantage-point tree over `members`.
    pub(crate) tree: VpTree,
}

/// A thread-safe registry of per-specification vantage-point trees; see the
/// [module docs](self).  Mutations are serialised per index, and the lock is
/// held across the distance fetches a rebuild performs — exactly the
/// cluster index's discipline.
#[derive(Debug, Default)]
pub struct IncrementalMetricIndex {
    states: Mutex<HashMap<String, SpecMetricState>>,
    /// Set by every state mutation, consumed by the persistence layer.
    dirty: std::sync::atomic::AtomicBool,
    /// Specifications mutated since the last checkpoint.
    dirty_specs: Mutex<std::collections::BTreeSet<String>>,
    /// Set by [`Self::mark_dirty`]: every tracked spec must be re-appended.
    all_dirty: std::sync::atomic::AtomicBool,
}

impl IncrementalMetricIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        IncrementalMetricIndex::default()
    }

    /// Marks the whole index as changed since the last checkpoint.
    pub(crate) fn mark_dirty(&self) {
        self.all_dirty.store(true, std::sync::atomic::Ordering::Release);
        self.dirty.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Marks one specification's state as changed since the last checkpoint.
    pub(crate) fn mark_spec_dirty(&self, spec: &str) {
        self.dirty_specs.lock().insert(spec.to_string());
        self.dirty.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Consumes the dirty state; see
    /// [`IncrementalClusterIndex::take_dirty_specs`](crate::cluster::incremental::IncrementalClusterIndex)
    /// for the contract.
    pub(crate) fn take_dirty_specs(&self) -> Option<Vec<String>> {
        if !self.dirty.swap(false, std::sync::atomic::Ordering::AcqRel) {
            return None;
        }
        let all = self.all_dirty.swap(false, std::sync::atomic::Ordering::AcqRel);
        let mut dirty: Vec<String> =
            std::mem::take(&mut *self.dirty_specs.lock()).into_iter().collect();
        if all {
            dirty.extend(self.with_states(|states| states.keys().cloned().collect::<Vec<_>>()));
            dirty.sort();
            dirty.dedup();
        }
        Some(dirty)
    }

    /// The `k` nearest indexed runs to `query`, pruned by the triangle
    /// inequality, building (or rebuilding) the specification's tree when
    /// the index holds no state for the given member set and version.
    ///
    /// With `epsilon == 0` the result is certified identical — order and
    /// tie-breaks included — to the exact O(n) sweep of
    /// [`DiffService::nearest_runs`](crate::service::DiffService::nearest_runs);
    /// `epsilon > 0` trades exactness for pruning under the `(1 + ε)` bound
    /// reported in [`PruneStats::approx_epsilon`].  `pivots` optionally
    /// screens leaf candidates with distances the cluster index already
    /// memoized.  The returned [`PruneStats`] counts query-time work only;
    /// a rebuild's distance fetches are amortised over subsequent queries.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn nearest<O: DistanceOracle>(
        &self,
        spec: &str,
        version: Fingerprint,
        run_names: &[String],
        query: &str,
        k: usize,
        epsilon: f64,
        pivots: Option<&MedoidPivots>,
        seed: u64,
        oracle: &O,
    ) -> Result<(Vec<(String, f64)>, PruneStats), O::Error> {
        let mut members: Vec<String> = run_names.to_vec();
        members.sort();
        members.dedup();
        let mut states = self.states.lock();
        let fresh = states
            .get(spec)
            .is_some_and(|s| s.seed == seed && s.version == version && s.members == members);
        if !fresh {
            let mut row = |source: &str, targets: &[&str]| oracle.distances(source, targets);
            let tree = VpTree::build(&members, seed, &mut row)?;
            states.insert(spec.to_string(), SpecMetricState { seed, version, members, tree });
            self.mark_spec_dirty(spec);
        }
        let Some(state) = states.get(spec) else {
            // Unreachable — the branch above inserted or verified the state —
            // but a serving process must not panic over it.
            let stats = PruneStats {
                distance_evals: 0,
                nodes_visited: 0,
                subtrees_pruned: 0,
                members_pruned: 0,
                approx_epsilon: epsilon,
            };
            return Ok((Vec::new(), stats));
        };
        let mut row = |source: &str, targets: &[&str]| oracle.distances(source, targets);
        let (neighbors, query_stats) = state.tree.nearest(query, k, epsilon, pivots, &mut row)?;
        let QueryStats { distance_evals, nodes_visited, subtrees_pruned, members_pruned } =
            query_stats;
        let stats = PruneStats {
            distance_evals,
            nodes_visited,
            subtrees_pruned,
            members_pruned,
            approx_epsilon: epsilon,
        };
        Ok((neighbors, stats))
    }

    /// Folds a just-stored run into the tree, if the index holds state for
    /// the specification.  Returns `true` when a state absorbed the run; a
    /// version mismatch or a run replaced under an existing name drops the
    /// state instead (rebuilt on the next query).
    pub fn insert_run<O: DistanceOracle>(
        &self,
        spec: &str,
        version: Fingerprint,
        run_name: &str,
        oracle: &O,
    ) -> Result<bool, O::Error> {
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(spec) else {
            return Ok(false);
        };
        if state.version != version || state.members.binary_search(&run_name.to_string()).is_ok() {
            // A replaced specification or a replaced run: the distances the
            // tree was shaped by are stale.
            states.remove(spec);
            self.mark_spec_dirty(spec);
            return Ok(false);
        }
        let mut row = |source: &str, targets: &[&str]| oracle.distances(source, targets);
        state.tree.insert(run_name, &mut row)?;
        let at = state
            .members
            .binary_search(&run_name.to_string())
            .expect_err("name verified absent above");
        state.members.insert(at, run_name.to_string());
        self.mark_spec_dirty(spec);
        Ok(true)
    }

    /// Removes a run from the tree, if the index holds state for the
    /// specification.  Returns `true` when state changed.  Removing a pivot
    /// drops the specification's state (the partition depends on the pivot);
    /// the next query rebuilds it — no distance evaluation happens here
    /// either way.
    pub fn remove_run(&self, spec: &str, run_name: &str) -> bool {
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(spec) else {
            return false;
        };
        let Ok(at) = state.members.binary_search(&run_name.to_string()) else {
            return false;
        };
        state.members.remove(at);
        let emptied = state.members.is_empty();
        match state.tree.remove(run_name) {
            RemoveOutcome::Removed if !emptied => {}
            // Pivot loss, an inconsistent tree, or the last member: drop.
            _ => {
                states.remove(spec);
            }
        }
        self.mark_spec_dirty(spec);
        true
    }

    /// Drops the state of one specification.
    pub fn invalidate(&self, spec: &str) {
        if self.states.lock().remove(spec).is_some() {
            self.mark_spec_dirty(spec);
        }
    }

    /// Names of the specifications the index currently holds a tree for.
    pub fn specs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.states.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// The indexed member count for `spec` (testing/diagnostics).
    pub fn member_count(&self, spec: &str) -> usize {
        self.states.lock().get(spec).map(|s| s.members.len()).unwrap_or(0)
    }

    /// Internal access for the persistence layer.
    pub(crate) fn with_states<T>(
        &self,
        f: impl FnOnce(&mut HashMap<String, SpecMetricState>) -> T,
    ) -> T {
        f(&mut self.states.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A matrix-backed oracle over named points `p0..pN` counting fetches.
    struct MatrixOracle {
        matrix: Vec<Vec<f64>>,
        fetches: RefCell<usize>,
    }

    impl MatrixOracle {
        fn new(matrix: Vec<Vec<f64>>) -> Self {
            MatrixOracle { matrix, fetches: RefCell::new(0) }
        }

        fn index(name: &str) -> usize {
            name.trim_start_matches('p').parse().unwrap()
        }
    }

    impl DistanceOracle for MatrixOracle {
        type Error = String;

        fn distances(&self, source: &str, targets: &[&str]) -> Result<Vec<f64>, String> {
            *self.fetches.borrow_mut() += targets.len();
            let i = Self::index(source);
            Ok(targets.iter().map(|t| self.matrix[i][Self::index(t)]).collect())
        }
    }

    /// 40 points on a line in three well-separated groups.
    fn line() -> Vec<Vec<f64>> {
        let coords: Vec<f64> =
            (0..40).map(|i| (i / 14) as f64 * 500.0 + (i % 14) as f64 * 2.0).collect();
        coords.iter().map(|a| coords.iter().map(|b| (a - b).abs()).collect()).collect()
    }

    fn names(indices: std::ops::Range<usize>) -> Vec<String> {
        indices.map(|i| format!("p{i}")).collect()
    }

    fn exact(
        matrix: &[Vec<f64>],
        query: usize,
        members: &[String],
        k: usize,
    ) -> Vec<(String, f64)> {
        let mut all: Vec<(String, f64)> = members
            .iter()
            .filter(|n| MatrixOracle::index(n) != query)
            .map(|n| (n.clone(), matrix[query][MatrixOracle::index(n)]))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    const VERSION: Fingerprint = Fingerprint(42);

    #[test]
    fn nearest_builds_once_then_serves_and_prunes() {
        let oracle = MatrixOracle::new(line());
        let index = IncrementalMetricIndex::new();
        let members = names(0..40);
        let (got, stats) = index
            .nearest("s", VERSION, &members, "p3", 5, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        assert_eq!(got, exact(&line(), 3, &members, 5));
        assert_eq!(stats.approx_epsilon, 0.0);
        let after_build = *oracle.fetches.borrow();
        // A repeat query rebuilds nothing: only query-time evals accrue.
        let (again, stats) = index
            .nearest("s", VERSION, &members, "p3", 5, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        assert_eq!(again, got);
        assert_eq!(*oracle.fetches.borrow() - after_build, stats.distance_evals);
        assert!(stats.distance_evals < members.len() - 1, "pruning beat the sweep");
    }

    #[test]
    fn streamed_inserts_and_removals_stay_exact() {
        let oracle = MatrixOracle::new(line());
        let index = IncrementalMetricIndex::new();
        let mut members = names(0..35);
        index
            .nearest("s", VERSION, &members, "p0", 3, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        for i in 35..40 {
            assert!(index.insert_run("s", VERSION, &format!("p{i}"), &oracle).unwrap());
            members.push(format!("p{i}"));
        }
        assert_eq!(index.member_count("s"), 40);
        members.sort();
        let (got, _) = index
            .nearest("s", VERSION, &members, "p38", 6, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        assert_eq!(got, exact(&line(), 38, &members, 6));

        assert!(index.remove_run("s", "p12"));
        members.retain(|n| n != "p12");
        let (got, _) = index
            .nearest("s", VERSION, &members, "p10", 4, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        assert_eq!(got, exact(&line(), 10, &members, 4));
        assert!(!index.remove_run("s", "p12"), "already gone");
        assert!(!index.remove_run("other", "p0"));
    }

    #[test]
    fn version_mismatch_and_replacement_invalidate() {
        let oracle = MatrixOracle::new(line());
        let index = IncrementalMetricIndex::new();
        let members = names(0..10);
        index
            .nearest("s", VERSION, &members, "p0", 2, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        // Replaced run under an unchanged name: state dropped.
        assert!(!index.insert_run("s", VERSION, "p3", &oracle).unwrap());
        assert_eq!(index.member_count("s"), 0);
        index
            .nearest("s", VERSION, &members, "p0", 2, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        assert!(!index.insert_run("s", Fingerprint(7), "p10", &oracle).unwrap());
        assert_eq!(index.member_count("s"), 0, "stale state was dropped");
    }

    #[test]
    fn dirty_tracking_mirrors_the_cluster_index() {
        let oracle = MatrixOracle::new(line());
        let index = IncrementalMetricIndex::new();
        assert!(index.take_dirty_specs().is_none(), "clean index skips the append");
        index
            .nearest("s", VERSION, &names(0..10), "p0", 2, 0.0, None, DEFAULT_METRIC_SEED, &oracle)
            .unwrap();
        assert_eq!(index.take_dirty_specs().unwrap(), vec!["s".to_string()]);
        assert!(index.take_dirty_specs().is_none());
        index.mark_dirty();
        assert_eq!(index.take_dirty_specs().unwrap(), vec!["s".to_string()]);
        index.invalidate("s");
        assert_eq!(index.take_dirty_specs().unwrap(), vec!["s".to_string()]);
        assert!(index.specs().is_empty());
    }
}
