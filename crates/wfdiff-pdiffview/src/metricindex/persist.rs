//! The optional `metric_index.json` artifact: checkpointing an
//! [`IncrementalMetricIndex`] next to a store directory, validated exactly
//! like `cluster_cache.json`.
//!
//! The vantage-point tree is *derived* data, so the artifact is strictly a
//! cache: checkpoints append one `MetricDeltaRecord` per dirty
//! specification to the write-ahead log (kind 4), a full save folds the
//! deltas into the file, and a load **validates every entry field by
//! field** — format version, cost-model key, spec version fingerprint,
//! member set and per-run content fingerprints against the live store, and
//! the tree's structural invariants (every member exactly once across
//! pivots and leaves, every node reachable exactly once, finite
//! non-negative radii, strictly ascending leaves).  Any entry that fails a
//! check is silently skipped and rebuilt on the next pruned query; a
//! corrupt or foreign artifact can never poison an answer.

use super::incremental::{IncrementalMetricIndex, SpecMetricState};
use super::vptree::{VpNode, VpTree};
use crate::persist::{read_json, write_json_atomic, PersistError};
use crate::store::WorkflowStore;
use crate::storeio::StoreIo;
use crate::wal::{self, MetricDeltaRecord, WalRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use wfdiff_sptree::Fingerprint;

/// Version tag of the metric-index artifact; unknown versions are treated
/// as stale (rebuilt), never as errors.
pub const METRIC_INDEX_FORMAT: u32 = 1;

/// File name of the artifact inside a store directory.
pub const METRIC_INDEX_FILE: &str = "metric_index.json";

/// What a [`DiffService::load_metric_state`] pass accepted and rejected.
///
/// [`DiffService::load_metric_state`]: crate::service::DiffService::load_metric_state
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricIndexReport {
    /// Specification trees restored into the index.
    pub loaded: usize,
    /// Entries (or the whole artifact) rejected as stale/corrupt; each will
    /// be rebuilt on the next pruned query.
    pub stale: usize,
}

/// The artifact document.
#[derive(Debug, Serialize, Deserialize)]
struct MetricIndexDoc {
    /// Artifact format version; see [`METRIC_INDEX_FORMAT`].
    format: u32,
    /// Cost-model cache key the tree's radii were computed under.
    cost_key: u64,
    /// One entry per indexed specification.
    specs: Vec<SpecMetricDoc>,
}

/// One specification's checkpointed vantage-point tree.  Also the payload
/// of a [`MetricDeltaRecord`] in the write-ahead log (last write wins), so
/// a delta validates exactly like a file entry.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct SpecMetricDoc {
    spec: String,
    /// Version fingerprint (hex) of the specification the tree was built
    /// against; must match the loaded store's version exactly.
    spec_fingerprint: String,
    /// Seed of the pivot draw.
    seed: u64,
    /// Indexed runs, strictly ascending.
    members: Vec<String>,
    /// Canonical tree fingerprint (hex) of each member's run **content**,
    /// aligned with `members` — a run replaced under an unchanged name must
    /// not let a tree shaped by its old distances validate as fresh.
    run_fingerprints: Vec<String>,
    /// Arena index of the root node, `-1` for an empty tree.
    root: i64,
    /// The node arena, flat (the vendored serde has no tagged enums).
    nodes: Vec<NodeDoc>,
}

/// One flattened [`VpNode`]: `leaf` discriminates, unused fields are empty.
#[derive(Debug, Serialize, Deserialize)]
struct NodeDoc {
    /// `true` for a leaf bucket, `false` for a routing node.
    leaf: bool,
    /// Pivot run name (routing nodes only; empty for leaves).
    pivot: String,
    /// Zero-distance duplicates of the pivot, strictly ascending (routing
    /// nodes only; empty for leaves).
    twins: Vec<String>,
    /// Partition radius (routing nodes only; `0` for leaves).
    mu: f64,
    /// Arena index of the inside subtree, `-1` for none.
    inside: i64,
    /// Arena index of the outside subtree, `-1` for none.
    outside: i64,
    /// Leaf members, strictly ascending (leaves only; empty for inner).
    items: Vec<String>,
}

fn child_doc(child: Option<usize>) -> i64 {
    child.map(|c| c as i64).unwrap_or(-1)
}

/// The canonical content fingerprint of a run's annotated tree (the same
/// fingerprint `cluster_cache.json` records).
fn run_content_fingerprint(run: &wfdiff_sptree::Run) -> Fingerprint {
    wfdiff_sptree::TreeFingerprints::compute(run.tree()).of(run.tree().root())
}

/// Builds the checkpoint document for one spec's live state, or `None` when
/// a member cannot be resolved in `store` any more (a concurrent removal).
fn build_doc(spec: &str, state: &SpecMetricState, store: &WorkflowStore) -> Option<SpecMetricDoc> {
    let run_fingerprints: Vec<String> = state
        .members
        .iter()
        .map(|m| store.run(spec, m).map(|run| run_content_fingerprint(&run).to_string()))
        .collect::<Option<_>>()?;
    let nodes = state
        .tree
        .nodes
        .iter()
        .map(|node| match node {
            VpNode::Inner { pivot, twins, mu, inside, outside } => NodeDoc {
                leaf: false,
                pivot: pivot.clone(),
                twins: twins.clone(),
                mu: *mu,
                inside: child_doc(*inside),
                outside: child_doc(*outside),
                items: Vec::new(),
            },
            VpNode::Leaf { items } => NodeDoc {
                leaf: true,
                pivot: String::new(),
                twins: Vec::new(),
                mu: 0.0,
                inside: -1,
                outside: -1,
                items: items.clone(),
            },
        })
        .collect();
    Some(SpecMetricDoc {
        spec: spec.to_string(),
        spec_fingerprint: state.version.to_string(),
        seed: state.seed,
        members: state.members.clone(),
        run_fingerprints,
        root: child_doc(state.tree.root),
        nodes,
    })
}

/// Checkpoints the index by appending one [`MetricDeltaRecord`] per dirty
/// spec to the store directory's write-ahead log — O(changed specs) — the
/// exact discipline of [`crate::cluster::persist::save_wal`].  Returns the
/// number of specs currently tracked by the index.
pub(crate) fn save_wal(
    index: &IncrementalMetricIndex,
    store: &WorkflowStore,
    cost_key: u64,
    dir: &Path,
) -> Result<usize, PersistError> {
    let count = index.with_states(|states| states.len());
    let Some(dirty) = index.take_dirty_specs() else {
        return Ok(count);
    };
    let records: Vec<WalRecord> = index.with_states(|states| {
        dirty
            .iter()
            .filter_map(|spec| {
                let doc = build_doc(spec, states.get(spec)?, store)?;
                Some(WalRecord::MetricDelta(MetricDeltaRecord { cost_key, doc }))
            })
            .collect()
    });
    if let Err(e) = store.append_wal_records(dir, &records) {
        // The states are still unpersisted; make sure the next save retries.
        for spec in &dirty {
            index.mark_spec_dirty(spec);
        }
        return Err(e);
    }
    Ok(count)
}

/// Folds WAL metric deltas into `dir/metric_index.json` during a full save,
/// last-wins per spec; deltas keyed by a different cost model are dropped
/// and an unreadable base file is treated as empty (the cache must never
/// block a save) — the mirror of
/// [`crate::cluster::persist::fold_wal_deltas`].
pub(crate) fn fold_wal_deltas(
    io: &dyn StoreIo,
    dir: &Path,
    deltas: Vec<MetricDeltaRecord>,
) -> Result<(), PersistError> {
    let Some(final_key) = deltas.last().map(|d| d.cost_key) else {
        return Ok(());
    };
    let path = dir.join(METRIC_INDEX_FILE);
    let mut merged: BTreeMap<String, SpecMetricDoc> = BTreeMap::new();
    if path.exists() {
        if let Ok(doc) = read_json::<MetricIndexDoc>(&path) {
            if doc.format == METRIC_INDEX_FORMAT && doc.cost_key == final_key {
                for entry in doc.specs {
                    merged.insert(entry.spec.clone(), entry);
                }
            }
        }
    }
    for delta in deltas {
        if delta.cost_key == final_key {
            merged.insert(delta.doc.spec.clone(), delta.doc);
        }
    }
    let doc = MetricIndexDoc {
        format: METRIC_INDEX_FORMAT,
        cost_key: final_key,
        specs: merged.into_values().collect(),
    };
    write_json_atomic(io, &path, &doc)
}

/// Restores checkpointed trees into the index, validating every entry
/// against the live `store` (see the [module docs](self)).  A missing file
/// is an empty report; a corrupt/foreign/mis-keyed artifact counts as one
/// stale entry and is otherwise ignored.
pub(crate) fn load(
    index: &IncrementalMetricIndex,
    store: &WorkflowStore,
    cost_key: u64,
    dir: &Path,
) -> MetricIndexReport {
    let path = dir.join(METRIC_INDEX_FILE);
    let mut report = MetricIndexReport::default();
    let mut entries: BTreeMap<String, SpecMetricDoc> = BTreeMap::new();
    if path.exists() {
        match read_json::<MetricIndexDoc>(&path) {
            Ok(doc) if doc.format == METRIC_INDEX_FORMAT && doc.cost_key == cost_key => {
                for entry in doc.specs {
                    entries.insert(entry.spec.clone(), entry);
                }
            }
            _ => report.stale += 1,
        }
    }
    if let Ok(scan) = wal::scan(dir) {
        for record in scan.records {
            if let WalRecord::MetricDelta(delta) = record {
                if delta.cost_key == cost_key {
                    entries.insert(delta.doc.spec.clone(), delta.doc);
                } else {
                    report.stale += 1;
                }
            }
        }
    }
    for (spec, entry) in entries {
        match validate(&entry, store) {
            Some(state) => {
                index.with_states(|states| states.insert(spec, state));
                report.loaded += 1;
            }
            None => report.stale += 1,
        }
    }
    if report.stale > 0 {
        index.mark_dirty();
    }
    report
}

/// Full structural validation of one checkpointed spec entry; `None` means
/// stale (rebuild on demand).
fn validate(doc: &SpecMetricDoc, store: &WorkflowStore) -> Option<SpecMetricState> {
    let (spec, runs) = store.snapshot(&doc.spec)?;
    if spec.fingerprint().to_string() != doc.spec_fingerprint {
        return None;
    }
    let version = Fingerprint(u128::from_str_radix(&doc.spec_fingerprint, 16).ok()?);
    // The member set must be exactly the store's current run set, strictly
    // ascending, with matching per-run content fingerprints.
    let store_runs: Vec<&str> = runs.iter().map(|(n, _)| n.as_str()).collect();
    if doc.members.len() != store_runs.len()
        || doc.members.iter().map(String::as_str).ne(store_runs.iter().copied())
        || !doc.members.windows(2).all(|w| w[0] < w[1])
    {
        return None;
    }
    if doc.run_fingerprints.len() != doc.members.len() {
        return None;
    }
    for ((_, run), recorded) in runs.iter().zip(&doc.run_fingerprints) {
        if run_content_fingerprint(run).to_string() != *recorded {
            return None;
        }
    }
    let n = doc.members.len();
    if n == 0 {
        return None;
    }
    // Walk the arena from the root: every node reachable exactly once, every
    // member appearing exactly once across pivots and leaf items.
    let root = usize::try_from(doc.root).ok()?;
    let mut visited = vec![false; doc.nodes.len()];
    let mut held: Vec<&str> = Vec::with_capacity(n);
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = doc.nodes.get(id)?;
        if std::mem::replace(&mut visited[id], true) {
            return None;
        }
        if node.leaf {
            if !node.pivot.is_empty()
                || !node.twins.is_empty()
                || node.inside != -1
                || node.outside != -1
            {
                return None;
            }
            if !node.items.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
            held.extend(node.items.iter().map(String::as_str));
        } else {
            if !node.items.is_empty() || node.pivot.is_empty() {
                return None;
            }
            if !node.mu.is_finite() || node.mu < 0.0 {
                return None;
            }
            if !node.twins.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
            held.push(node.pivot.as_str());
            held.extend(node.twins.iter().map(String::as_str));
            for child in [node.inside, node.outside] {
                if child != -1 {
                    stack.push(usize::try_from(child).ok()?);
                }
            }
        }
    }
    if visited.iter().any(|v| !v) {
        return None;
    }
    held.sort_unstable();
    if held.len() != n || held.iter().copied().ne(doc.members.iter().map(String::as_str)) {
        return None;
    }
    let nodes: Vec<VpNode> = doc
        .nodes
        .iter()
        .map(|node| {
            if node.leaf {
                VpNode::Leaf { items: node.items.clone() }
            } else {
                VpNode::Inner {
                    pivot: node.pivot.clone(),
                    twins: node.twins.clone(),
                    mu: node.mu,
                    inside: usize::try_from(node.inside).ok(),
                    outside: usize::try_from(node.outside).ok(),
                }
            }
        })
        .collect();
    Some(SpecMetricState {
        seed: doc.seed,
        version,
        members: doc.members.clone(),
        tree: VpTree { nodes, root: Some(root) },
    })
}
