//! A deterministic vantage-point tree over the workflow edit distance.
//!
//! The tree partitions a specification's stored runs recursively: an inner
//! node holds a **pivot** run and a radius `mu` (the lower median of the
//! pivot's distances to the node's remaining runs); runs at distance
//! `<= mu` go into the *inside* subtree, the rest into the *outside*
//! subtree.  Because the edit distance is a metric, a query `q` with a
//! current `k`-th best distance `w` can skip a whole subtree whenever the
//! triangle inequality proves every run in it is farther than `w`:
//!
//! * inside subtree: every member `x` has `d(p, x) <= mu`, so
//!   `d(q, x) >= d(q, p) - mu`;
//! * outside subtree: every member has `d(p, x) >= mu`, so
//!   `d(q, x) >= mu - d(q, p)`.
//!
//! Pruning uses the **strict** comparison `bound > w`, so a pruned subtree
//! provably contains no run that could enter the result — not even a run
//! tying the `k`-th distance with a smaller name.  The answer is therefore
//! *certified* identical to the exact O(n) sweep, tie-breaks included.  The
//! opt-in approximate mode relaxes the comparison to `bound > w / (1 + ε)`,
//! which guarantees every reported distance is within `(1 + ε)` of the true
//! `k`-th distance.
//!
//! # Determinism
//!
//! [`VpTree::build`] draws each pivot with a [`ChaCha8Rng`] seeded once and
//! consumed in pre-order, over members kept in sorted name order — the same
//! member set and seed always build the same tree.  Incremental inserts
//! descend without randomness and split overflowing leaves on their
//! lexicographically first item, so a checkpointed tree reloads bit-for-bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use wfdiff_core::triangle_lower_bound;

/// Leaf capacity: a leaf holding more than this many runs is split.  Small
/// enough that an unpruned leaf costs a handful of distance evaluations,
/// large enough that the tree does not degenerate on small stores.
pub(crate) const LEAF_BUCKET: usize = 16;

/// One node of a [`VpTree`], indexing into the tree's arena.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum VpNode {
    /// A routing node: pivot run, radius, and the two subtrees.
    Inner {
        /// The pivot run's name.
        pivot: String,
        /// Runs at distance exactly `0` from the pivot (identical content
        /// stored under other names), strictly ascending.  One evaluation of
        /// `d(q, pivot)` certifies the distance of every twin — the metric
        /// axioms give `d(q, t) = d(q, pivot)` exactly — so large duplicate
        /// groups cost one oracle call per query instead of one per member.
        twins: Vec<String>,
        /// Partition radius: inside members have `d(pivot, x) <= mu`.
        mu: f64,
        /// Subtree of members within `mu` of the pivot.
        inside: Option<usize>,
        /// Subtree of members farther than `mu` from the pivot.
        outside: Option<usize>,
    },
    /// A bucket of up to [`LEAF_BUCKET`] run names, strictly ascending.
    Leaf {
        /// Member run names, strictly ascending.
        items: Vec<String>,
    },
}

/// The vantage-point tree; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct VpTree {
    /// Node arena; parents precede their children (pre-order ids).
    pub(crate) nodes: Vec<VpNode>,
    /// Arena index of the root, `None` for an empty tree.
    pub(crate) root: Option<usize>,
}

/// Counters of one [`VpTree::nearest`] traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct QueryStats {
    /// Distances actually requested from the oracle.
    pub(crate) distance_evals: usize,
    /// Tree nodes visited.
    pub(crate) nodes_visited: usize,
    /// Subtrees skipped under a certified (or ε-relaxed) bound.
    pub(crate) subtrees_pruned: usize,
    /// Individual leaf members skipped under a medoid-pivot bound.
    pub(crate) members_pruned: usize,
}

/// Memoized medoid-to-member distance rows borrowed from the cluster
/// index: `rows[run][i]` is the memoized `d(run, medoids[i])`, when the
/// clustering happened to fetch it.  Both the query's and a candidate's row
/// cost nothing — they are reused, never recomputed — and together they
/// bound the candidate's distance from below via
/// [`wfdiff_core::pivot_lower_bound`]'s max-over-pivots rule.
#[derive(Debug, Clone, Default)]
pub struct MedoidPivots {
    /// Per-run distance rows, aligned with the medoid list they were built
    /// against.
    rows: HashMap<String, Vec<Option<f64>>>,
}

impl MedoidPivots {
    /// Wraps memoized medoid distance rows.
    pub(crate) fn new(rows: HashMap<String, Vec<Option<f64>>>) -> Self {
        MedoidPivots { rows }
    }

    /// The best certified lower bound on `d(q, x)` obtainable from the
    /// memoized rows, or `None` when no medoid has both distances memoized.
    pub(crate) fn lower_bound(&self, q: &str, x: &str) -> Option<f64> {
        let (qr, xr) = (self.rows.get(q)?, self.rows.get(x)?);
        let mut best: Option<f64> = None;
        for (a, b) in qr.iter().zip(xr) {
            if let (Some(a), Some(b)) = (a, b) {
                let lb = triangle_lower_bound(*a, *b);
                best = Some(best.map_or(lb, |c: f64| c.max(lb)));
            }
        }
        best
    }
}

/// A bounded best-`k` collector ordered exactly like the exact sweep's
/// `sort_by(distance.total_cmp then name)` — the max-heap root is the
/// current worst under that total order.
struct BestK {
    k: usize,
    heap: std::collections::BinaryHeap<Cand>,
}

#[derive(Debug, PartialEq)]
struct Cand {
    distance: f64,
    name: String,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.total_cmp(&other.distance).then_with(|| self.name.cmp(&other.name))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl BestK {
    fn new(k: usize) -> Self {
        BestK { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    fn offer(&mut self, distance: f64, name: &str) {
        if self.heap.len() < self.k {
            self.heap.push(Cand { distance, name: name.to_string() });
            return;
        }
        if let Some(worst) = self.heap.peek() {
            let cand = Cand { distance, name: name.to_string() };
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// The current `k`-th best distance — the pruning threshold — or `None`
    /// while fewer than `k` candidates are held (nothing may be pruned yet).
    fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|c| c.distance)
        }
    }

    fn into_sorted(self) -> Vec<(String, f64)> {
        let mut out: Vec<Cand> = self.heap.into_vec();
        out.sort();
        out.into_iter().map(|c| (c.name, c.distance)).collect()
    }
}

impl VpTree {
    /// Builds a tree over `members` (must be sorted, deduplicated) with a
    /// seeded deterministic pivot draw.  `row` supplies one-source-to-many
    /// distance rows (the oracle batch shape).
    pub(crate) fn build<E>(
        members: &[String],
        seed: u64,
        row: &mut impl FnMut(&str, &[&str]) -> Result<Vec<f64>, E>,
    ) -> Result<VpTree, E> {
        let mut tree = VpTree::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        tree.root = tree.build_node(members.to_vec(), &mut rng, row)?;
        Ok(tree)
    }

    fn build_node<E>(
        &mut self,
        mut items: Vec<String>,
        rng: &mut ChaCha8Rng,
        row: &mut impl FnMut(&str, &[&str]) -> Result<Vec<f64>, E>,
    ) -> Result<Option<usize>, E> {
        if items.is_empty() {
            return Ok(None);
        }
        if items.len() <= LEAF_BUCKET {
            let id = self.nodes.len();
            self.nodes.push(VpNode::Leaf { items });
            return Ok(Some(id));
        }
        let pivot = items.remove(rng.gen_range(0..items.len()));
        let targets: Vec<&str> = items.iter().map(String::as_str).collect();
        let distances = row(&pivot, &targets)?;
        // Zero-distance members are duplicates of the pivot: absorb them as
        // twins (answered for free at query time) and partition the rest.
        let mut twins = Vec::new();
        let mut rest = Vec::with_capacity(items.len());
        for (item, d) in items.into_iter().zip(&distances) {
            if *d == 0.0 {
                twins.push(item);
            } else {
                rest.push((item, *d));
            }
        }
        twins.sort();
        if rest.is_empty() {
            let id = self.nodes.len();
            self.nodes.push(VpNode::Inner { pivot, twins, mu: 0.0, inside: None, outside: None });
            return Ok(Some(id));
        }
        let mu = lower_median_of(rest.iter().map(|(_, d)| *d));
        let mut inside = Vec::with_capacity(rest.len() / 2 + 1);
        let mut outside = Vec::with_capacity(rest.len() / 2 + 1);
        for (item, d) in rest {
            if d <= mu {
                inside.push(item);
            } else {
                outside.push(item);
            }
        }
        if outside.is_empty() && twins.is_empty() {
            // Every remaining member ties at the median radius without being
            // a duplicate (an equidistant clump).  Splitting cannot make
            // progress (the inside child would hold everything again), so
            // keep one oversized leaf; search scans leaf items linearly
            // either way, and the medoid screening still applies to them.
            let id = self.nodes.len();
            let mut items = inside;
            items.push(pivot);
            items.sort();
            self.nodes.push(VpNode::Leaf { items });
            return Ok(Some(id));
        }
        let id = self.nodes.len();
        self.nodes.push(VpNode::Inner { pivot, twins, mu, inside: None, outside: None });
        let inside_id = self.build_node(inside, rng, row)?;
        let outside_id = self.build_node(outside, rng, row)?;
        if let VpNode::Inner { inside, outside, .. } = &mut self.nodes[id] {
            *inside = inside_id;
            *outside = outside_id;
        }
        Ok(Some(id))
    }

    /// The certified (or, with `epsilon > 0`, ε-relaxed) `k` nearest members
    /// to `query`, excluding `query` itself, ordered exactly like the exact
    /// sweep.  `pivots` optionally screens leaf candidates with memoized
    /// medoid distances before any evaluation.
    pub(crate) fn nearest<E>(
        &self,
        query: &str,
        k: usize,
        epsilon: f64,
        pivots: Option<&MedoidPivots>,
        row: &mut impl FnMut(&str, &[&str]) -> Result<Vec<f64>, E>,
    ) -> Result<(Vec<(String, f64)>, QueryStats), E> {
        let mut best = BestK::new(k);
        let mut stats = QueryStats::default();
        if k > 0 {
            self.search(self.root, query, epsilon, pivots, row, &mut best, &mut stats)?;
        }
        Ok((best.into_sorted(), stats))
    }

    /// `true` when the bound proves exclusion: every distance behind it
    /// strictly exceeds the current `k`-th best (relaxed by `1 + ε`).
    fn prunable(bound: f64, threshold: Option<f64>, epsilon: f64) -> bool {
        threshold.is_some_and(|w| bound > w / (1.0 + epsilon))
    }

    #[allow(clippy::too_many_arguments)]
    fn search<E>(
        &self,
        node: Option<usize>,
        query: &str,
        epsilon: f64,
        pivots: Option<&MedoidPivots>,
        row: &mut impl FnMut(&str, &[&str]) -> Result<Vec<f64>, E>,
        best: &mut BestK,
        stats: &mut QueryStats,
    ) -> Result<(), E> {
        let Some(id) = node else {
            return Ok(());
        };
        stats.nodes_visited += 1;
        match &self.nodes[id] {
            VpNode::Leaf { items } => {
                let mut survivors: Vec<&str> = Vec::with_capacity(items.len());
                for item in items {
                    if item == query {
                        continue;
                    }
                    let screened = pivots
                        .and_then(|p| p.lower_bound(query, item))
                        .is_some_and(|lb| Self::prunable(lb, best.threshold(), epsilon));
                    if screened {
                        stats.members_pruned += 1;
                    } else {
                        survivors.push(item);
                    }
                }
                if survivors.is_empty() {
                    return Ok(());
                }
                let distances = row(query, &survivors)?;
                stats.distance_evals += survivors.len();
                for (item, d) in survivors.iter().zip(distances) {
                    best.offer(d, item);
                }
                Ok(())
            }
            VpNode::Inner { pivot, twins, mu, inside, outside } => {
                let d = if pivot == query {
                    0.0
                } else {
                    let d = row(query, &[pivot.as_str()])?[0];
                    stats.distance_evals += 1;
                    best.offer(d, pivot);
                    d
                };
                // Twins share the pivot's content, so `d(q, twin) == d` by
                // the metric axioms — certified answers at zero extra evals.
                for twin in twins {
                    if twin != query {
                        best.offer(d, twin);
                    }
                }
                // Visit the side containing the query's ball centre first so
                // the threshold tightens before the far side is judged.
                let (near, far, far_bound) = if d <= *mu {
                    (*inside, *outside, (*mu - d).max(0.0))
                } else {
                    (*outside, *inside, (d - *mu).max(0.0))
                };
                self.search(near, query, epsilon, pivots, row, best, stats)?;
                if Self::prunable(far_bound, best.threshold(), epsilon) {
                    if far.is_some() {
                        stats.subtrees_pruned += 1;
                    }
                    return Ok(());
                }
                self.search(far, query, epsilon, pivots, row, best, stats)
            }
        }
    }

    /// Inserts a member not currently in the tree, descending by distance
    /// and splitting an overflowing leaf on its first item (no randomness —
    /// see the [module docs](self)).  Returns the distance evaluations
    /// spent.
    pub(crate) fn insert<E>(
        &mut self,
        name: &str,
        row: &mut impl FnMut(&str, &[&str]) -> Result<Vec<f64>, E>,
    ) -> Result<usize, E> {
        let mut evals = 0usize;
        let Some(mut id) = self.root else {
            self.nodes.push(VpNode::Leaf { items: vec![name.to_string()] });
            self.root = Some(self.nodes.len() - 1);
            return Ok(evals);
        };
        loop {
            let step = match &self.nodes[id] {
                VpNode::Inner { pivot, mu, inside, outside, .. } => {
                    let d = row(name, &[pivot.as_str()])?[0];
                    evals += 1;
                    let goes_inside = d <= *mu;
                    Some((d == 0.0, goes_inside, if goes_inside { *inside } else { *outside }))
                }
                VpNode::Leaf { .. } => None,
            };
            match step {
                Some((true, _, _)) => {
                    // A duplicate of this pivot: absorb it as a twin — every
                    // future query answers it with the pivot's evaluation.
                    if let VpNode::Inner { twins, .. } = &mut self.nodes[id] {
                        if let Err(at) = twins.binary_search(&name.to_string()) {
                            twins.insert(at, name.to_string());
                        }
                    }
                    return Ok(evals);
                }
                Some((_, _, Some(next))) => id = next,
                Some((_, goes_inside, None)) => {
                    let leaf = self.nodes.len();
                    self.nodes.push(VpNode::Leaf { items: vec![name.to_string()] });
                    if let VpNode::Inner { inside, outside, .. } = &mut self.nodes[id] {
                        let slot = if goes_inside { inside } else { outside };
                        *slot = Some(leaf);
                    }
                    return Ok(evals);
                }
                None => break,
            }
        }
        if let VpNode::Leaf { items } = &mut self.nodes[id] {
            if let Err(at) = items.binary_search(&name.to_string()) {
                items.insert(at, name.to_string());
            }
            if items.len() > LEAF_BUCKET {
                evals += self.split_leaf(id, row)?;
            }
        }
        Ok(evals)
    }

    /// Splits the overflowing leaf `id` into an inner node: the pivot is the
    /// leaf's first (lexicographically smallest) item, `mu` the lower median
    /// of its distances to the rest.
    fn split_leaf<E>(
        &mut self,
        id: usize,
        row: &mut impl FnMut(&str, &[&str]) -> Result<Vec<f64>, E>,
    ) -> Result<usize, E> {
        let mut items = match &mut self.nodes[id] {
            VpNode::Leaf { items } => std::mem::take(items),
            VpNode::Inner { .. } => return Ok(0),
        };
        let pivot = items.remove(0);
        let targets: Vec<&str> = items.iter().map(String::as_str).collect();
        let distances = row(&pivot, &targets)?;
        let evals = distances.len();
        let mut twins = Vec::new();
        let mut rest = Vec::new();
        for (item, d) in items.into_iter().zip(&distances) {
            if *d == 0.0 {
                twins.push(item);
            } else {
                rest.push((item, *d));
            }
        }
        twins.sort();
        if rest.is_empty() {
            self.nodes[id] = VpNode::Inner { pivot, twins, mu: 0.0, inside: None, outside: None };
            return Ok(evals);
        }
        let mu = lower_median_of(rest.iter().map(|(_, d)| *d));
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for (item, d) in rest {
            if d <= mu {
                inside.push(item);
            } else {
                outside.push(item);
            }
        }
        if outside.is_empty() && twins.is_empty() {
            // Degenerate split (an equidistant clump): keep the oversized
            // leaf instead of growing a one-pivot-per-level chain of inners.
            inside.push(pivot);
            inside.sort();
            self.nodes[id] = VpNode::Leaf { items: inside };
            return Ok(evals);
        }
        let inside_id = if inside.is_empty() {
            None
        } else {
            self.nodes.push(VpNode::Leaf { items: inside });
            Some(self.nodes.len() - 1)
        };
        let outside_id = if outside.is_empty() {
            None
        } else {
            self.nodes.push(VpNode::Leaf { items: outside });
            Some(self.nodes.len() - 1)
        };
        self.nodes[id] = VpNode::Inner { pivot, twins, mu, inside: inside_id, outside: outside_id };
        Ok(evals)
    }

    /// Removes `name` when it sits in a leaf — O(nodes) scan, zero distance
    /// evaluations.  A pivot cannot be removed in place (its subtree
    /// partition depends on it); the caller drops and rebuilds instead.
    pub(crate) fn remove(&mut self, name: &str) -> RemoveOutcome {
        for node in &mut self.nodes {
            match node {
                VpNode::Leaf { items } => {
                    if let Ok(at) = items.binary_search(&name.to_string()) {
                        items.remove(at);
                        return RemoveOutcome::Removed;
                    }
                }
                VpNode::Inner { pivot, twins, .. } => {
                    if pivot == name {
                        return RemoveOutcome::IsPivot;
                    }
                    if let Ok(at) = twins.binary_search(&name.to_string()) {
                        twins.remove(at);
                        return RemoveOutcome::Removed;
                    }
                }
            }
        }
        RemoveOutcome::NotFound
    }

    /// Every member the tree holds (pivots and leaf items), sorted.
    #[cfg(test)]
    pub(crate) fn members(&self) -> Vec<String> {
        let mut out = Vec::new();
        for node in &self.nodes {
            match node {
                VpNode::Leaf { items } => out.extend(items.iter().cloned()),
                VpNode::Inner { pivot, twins, .. } => {
                    out.push(pivot.clone());
                    out.extend(twins.iter().cloned());
                }
            }
        }
        out.sort();
        out
    }
}

/// What [`VpTree::remove`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RemoveOutcome {
    /// The name sat in a leaf and was removed.
    Removed,
    /// The name is a pivot; the tree must be rebuilt without it.
    IsPivot,
    /// The name is not in the tree.
    NotFound,
}

/// The lower median of a non-empty distance iterator under `total_cmp`.
fn lower_median_of(distances: impl Iterator<Item = f64>) -> f64 {
    let mut sorted: Vec<f64> = distances.collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[(sorted.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Absolute-difference metric over integer-named points `p000..`.
    fn line_row(
        coords: &HashMap<String, f64>,
    ) -> impl FnMut(&str, &[&str]) -> Result<Vec<f64>, String> + '_ {
        move |source: &str, targets: &[&str]| {
            let s = *coords.get(source).ok_or("unknown source")?;
            targets
                .iter()
                .map(|t| coords.get(*t).map(|x| (s - x).abs()).ok_or_else(|| "unknown".into()))
                .collect()
        }
    }

    fn points(n: usize) -> (Vec<String>, HashMap<String, f64>) {
        let names: Vec<String> = (0..n).map(|i| format!("p{i:03}")).collect();
        // A lumpy but deterministic layout (not uniform, so medians differ).
        let coords =
            names.iter().enumerate().map(|(i, n)| (n.clone(), ((i * i) % 97) as f64)).collect();
        (names, coords)
    }

    fn exact(coords: &HashMap<String, f64>, query: &str, k: usize) -> Vec<(String, f64)> {
        let q = coords[query];
        let mut all: Vec<(String, f64)> = coords
            .iter()
            .filter(|(n, _)| n.as_str() != query)
            .map(|(n, x)| (n.clone(), (q - x).abs()))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn build_is_deterministic_and_holds_every_member() {
        let (names, coords) = points(60);
        let t1 = VpTree::build(&names, 7, &mut line_row(&coords)).unwrap();
        let t2 = VpTree::build(&names, 7, &mut line_row(&coords)).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(t1.members(), names);
        let t3 = VpTree::build(&names, 8, &mut line_row(&coords)).unwrap();
        assert_eq!(t3.members(), names, "any seed partitions the same member set");
    }

    #[test]
    fn nearest_matches_the_exact_sweep_with_ties() {
        let (names, coords) = points(80);
        let tree = VpTree::build(&names, 1, &mut line_row(&coords)).unwrap();
        for query in ["p000", "p013", "p079"] {
            for k in [1, 3, 10, 200] {
                let (got, stats) =
                    tree.nearest(query, k, 0.0, None, &mut line_row(&coords)).unwrap();
                assert_eq!(got, exact(&coords, query, k), "query={query} k={k}");
                assert!(stats.distance_evals < names.len());
            }
        }
    }

    #[test]
    fn pruning_saves_evaluations_on_clustered_data() {
        // Tight clusters far apart: most subtrees prune.
        let names: Vec<String> = (0..128).map(|i| format!("p{i:03}")).collect();
        let coords: HashMap<String, f64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), (i / 16) as f64 * 1000.0 + (i % 16) as f64))
            .collect();
        let tree = VpTree::build(&names, 3, &mut line_row(&coords)).unwrap();
        let (got, stats) = tree.nearest("p000", 5, 0.0, None, &mut line_row(&coords)).unwrap();
        assert_eq!(got, exact(&coords, "p000", 5));
        assert!(
            stats.distance_evals * 2 < names.len(),
            "pruned search evaluated {} of {} candidates",
            stats.distance_evals,
            names.len() - 1,
        );
        assert!(stats.subtrees_pruned > 0);
    }

    #[test]
    fn inserts_and_leaf_removals_keep_answers_exact() {
        let (names, coords) = points(40);
        let (head, tail) = names.split_at(30);
        let mut tree = VpTree::build(head, 5, &mut line_row(&coords)).unwrap();
        for name in tail {
            tree.insert(name, &mut line_row(&coords)).unwrap();
        }
        assert_eq!(tree.members(), names);
        let (got, _) = tree.nearest("p035", 7, 0.0, None, &mut line_row(&coords)).unwrap();
        assert_eq!(got, exact(&coords, "p035", 7));

        // Remove a leaf member and re-query against the shrunken exact set.
        let leaf_member = tree
            .nodes
            .iter()
            .find_map(|n| match n {
                VpNode::Leaf { items } => items.first().cloned(),
                VpNode::Inner { .. } => None,
            })
            .unwrap();
        assert_eq!(tree.remove(&leaf_member), RemoveOutcome::Removed);
        assert_eq!(tree.remove(&leaf_member), RemoveOutcome::NotFound);
        let mut shrunk = coords.clone();
        shrunk.remove(&leaf_member);
        let query = names.iter().find(|n| **n != leaf_member).unwrap();
        let (got, _) = tree.nearest(query, 5, 0.0, None, &mut line_row(&shrunk)).unwrap();
        assert_eq!(got, exact(&shrunk, query, 5));
    }

    #[test]
    fn pivot_removal_is_refused() {
        let (names, coords) = points(60);
        let mut tree = VpTree::build(&names, 2, &mut line_row(&coords)).unwrap();
        let pivot = tree
            .nodes
            .iter()
            .find_map(|n| match n {
                VpNode::Inner { pivot, .. } => Some(pivot.clone()),
                VpNode::Leaf { .. } => None,
            })
            .unwrap();
        assert_eq!(tree.remove(&pivot), RemoveOutcome::IsPivot);
    }

    #[test]
    fn approx_mode_is_within_the_reported_bound() {
        let (names, coords) = points(90);
        let tree = VpTree::build(&names, 11, &mut line_row(&coords)).unwrap();
        let eps = 0.5;
        for query in ["p001", "p044"] {
            let truth = exact(&coords, query, 5);
            let (got, _) = tree.nearest(query, 5, eps, None, &mut line_row(&coords)).unwrap();
            assert_eq!(got.len(), truth.len());
            let true_kth = truth.last().unwrap().1;
            for (_, d) in &got {
                assert!(*d <= (1.0 + eps) * true_kth + 1e-9, "{d} vs {true_kth}");
            }
        }
    }

    #[test]
    fn duplicate_groups_collapse_into_twins() {
        // 200 points in 5 duplicate groups of 40: the tree must absorb each
        // group under one pivot, and a query must resolve whole groups with
        // one evaluation each — far fewer than the 199-eval sweep.
        let names: Vec<String> = (0..200).map(|i| format!("p{i:03}")).collect();
        let coords: HashMap<String, f64> =
            names.iter().enumerate().map(|(i, n)| (n.clone(), (i % 5) as f64 * 10.0)).collect();
        let tree = VpTree::build(&names, 9, &mut line_row(&coords)).unwrap();
        assert_eq!(tree.members(), names);
        let twin_total: usize = tree
            .nodes
            .iter()
            .map(|n| match n {
                VpNode::Inner { twins, .. } => twins.len(),
                VpNode::Leaf { .. } => 0,
            })
            .sum();
        assert!(twin_total >= 150, "only {twin_total} of 195 duplicates became twins");
        for (query, k) in [("p000", 10), ("p003", 45), ("p199", 3)] {
            let (got, stats) = tree.nearest(query, k, 0.0, None, &mut line_row(&coords)).unwrap();
            assert_eq!(got, exact(&coords, query, k), "query={query} k={k}");
            assert!(
                stats.distance_evals <= 20,
                "query={query} k={k} spent {} evals on 5 distinct shapes",
                stats.distance_evals
            );
        }

        // Streamed duplicates join their pivot's twin set.
        let mut grown = coords.clone();
        grown.insert("q000".to_string(), 10.0);
        let mut tree = tree;
        tree.insert("q000", &mut line_row(&grown)).unwrap();
        assert!(tree.members().contains(&"q000".to_string()));
        let (got, _) = tree.nearest("p000", 60, 0.0, None, &mut line_row(&grown)).unwrap();
        assert_eq!(got, exact(&grown, "p000", 60));
        // And a twin removal is an in-place edit, not a rebuild.
        assert_eq!(tree.remove("q000"), RemoveOutcome::Removed);
        assert_eq!(tree.remove("q000"), RemoveOutcome::NotFound);
    }

    #[test]
    fn medoid_pivots_screen_candidates_without_changing_answers() {
        // A planar layout where the vantage ring is too loose to prune the
        // far leaf (the query sits exactly on the ring) but a medoid near
        // the query screens every far item: q=(0,0), pivot p=(100,0) with
        // mu = 100, near leaf {a=(1,0), b=(0,1), q}, far leaf {m=(0,3),
        // x=(0,200)}, medoid m.
        let coords: HashMap<String, (f64, f64)> = [
            ("q", (0.0, 0.0)),
            ("a", (1.0, 0.0)),
            ("b", (0.0, 1.0)),
            ("m", (0.0, 3.0)),
            ("p", (100.0, 0.0)),
            ("x", (0.0, 200.0)),
        ]
        .into_iter()
        .map(|(n, xy)| (n.to_string(), xy))
        .collect();
        let dist =
            |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let mut row = |source: &str, targets: &[&str]| -> Result<Vec<f64>, ()> {
            let s = coords[source];
            Ok(targets.iter().map(|t| dist(s, coords[*t])).collect())
        };
        let tree = VpTree {
            nodes: vec![
                VpNode::Inner {
                    pivot: "p".to_string(),
                    twins: Vec::new(),
                    mu: 100.0,
                    inside: Some(1),
                    outside: Some(2),
                },
                VpNode::Leaf { items: vec!["a".to_string(), "b".to_string(), "q".to_string()] },
                VpNode::Leaf { items: vec!["m".to_string(), "x".to_string()] },
            ],
            root: Some(0),
        };
        let rows: HashMap<String, Vec<Option<f64>>> =
            coords.iter().map(|(n, xy)| (n.clone(), vec![Some(dist(*xy, coords["m"]))])).collect();
        let pivots = MedoidPivots::new(rows);
        let (plain, plain_stats) = tree.nearest("q", 2, 0.0, None, &mut row).unwrap();
        let (screened, stats) = tree.nearest("q", 2, 0.0, Some(&pivots), &mut row).unwrap();
        assert_eq!(screened, plain);
        assert_eq!(screened, vec![("a".to_string(), 1.0), ("b".to_string(), 1.0)]);
        // The far leaf is visited (the query sits on the vantage ring) but
        // both its items are screened by the medoid bound before any
        // evaluation: |d(q,m) - d(m,x)| = 197 > 1 and d(q,m) - d(m,m) = 3 > 1.
        assert_eq!(stats.members_pruned, 2, "medoid rows screened the far leaf");
        assert!(stats.distance_evals < plain_stats.distance_evals);
    }
}
