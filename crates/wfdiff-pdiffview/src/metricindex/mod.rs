//! Metric indexing of the workflow edit distance: sublinear certified
//! nearest-run queries for `GET /similar`.
//!
//! The edit distance of Algorithm 4 is a true metric over the runs of one
//! specification, which this module exploits end to end:
//!
//! * `vptree` — a deterministic vantage-point tree with
//!   triangle-inequality subtree bounds and medoid-pivot candidate bounds
//!   (the latter reusing distances the cluster index already memoized),
//! * [`incremental`] — [`IncrementalMetricIndex`], the per-specification
//!   registry of trees that follows store inserts and removals alongside
//!   the cluster notifications,
//! * [`persist`] — the WAL-delta'd `metric_index.json` checkpoint,
//!   validated against the live store exactly like `cluster_cache.json`.
//!
//! Pruning is **certified**: a subtree or candidate is skipped only when a
//! triangle-inequality bound proves it cannot enter the top-`k`, so the
//! default mode returns results identical — ordering and tie-breaks
//! included — to the exact O(n) sweep.  The opt-in `ε`-approximate mode
//! relaxes the bound by `1 + ε` and reports that factor back as the error
//! bound.

pub mod incremental;
pub mod persist;
pub(crate) mod vptree;

pub use incremental::{IncrementalMetricIndex, PruneStats, DEFAULT_METRIC_SEED};
pub use persist::{MetricIndexReport, METRIC_INDEX_FILE, METRIC_INDEX_FORMAT};
pub use vptree::MedoidPivots;
