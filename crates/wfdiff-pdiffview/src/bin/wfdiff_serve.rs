//! `wfdiff_serve` — serve a persisted PDiffView store over HTTP.
//!
//! ```text
//! wfdiff_serve <store-dir> [addr] [threads]
//!     Load the store directory at <store-dir> (full validation), warm-start
//!     a DiffService over it and serve queries on [addr] (default
//!     127.0.0.1:7411) with [threads] workers (default: available CPUs).
//! ```
//!
//! When `<store-dir>` contains `shard-NNN` subdirectories (as written by
//! `store_tool shard`), each is loaded as an independent shard — its own
//! store, diff service and cluster cache — and requests are routed by spec
//! name; otherwise the directory is served as a single shard.  In both modes
//! `[threads]` is the *HTTP worker* count; each shard additionally gets its
//! own diff thread pool.
//!
//! Endpoints, limits and the error model are documented on
//! [`wfdiff_pdiffview::serve`]; operations (sharding, metrics, tuning) in
//! `docs/OPERATIONS.md`.  Runs inserted through `POST /runs` are appended
//! durably to the owning shard's directory.
//!
//! Exit codes: `2` for usage errors (wrong arguments), `1` when the store
//! fails to load or the address cannot be bound.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wfdiff_pdiffview::serve::shard::{detect_shard_dirs, ShardEntry, ShardRouter};
use wfdiff_pdiffview::serve::{ServeConfig, Server};
use wfdiff_pdiffview::{DiffService, WorkflowStore};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 3 || args[0].starts_with('-') {
        eprintln!("usage: wfdiff_serve <store-dir> [addr] [threads]");
        std::process::exit(2);
    }
    let dir = args[0].clone();
    let addr = args.get(1).cloned().unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let threads = match args.get(2) {
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("wfdiff_serve: thread count must be a positive integer, got {raw:?}");
                eprintln!("usage: wfdiff_serve <store-dir> [addr] [threads]");
                std::process::exit(2);
            }
        },
    };

    if let Err(message) = serve(&dir, &addr, threads) {
        eprintln!("wfdiff_serve: {message}");
        std::process::exit(1);
    }
}

/// Loads one shard: store, diff service, warm start, cluster-cache resume.
/// Returns the entry plus its warm (spec, run) counts.
fn load_shard(dir: &Path, threads: usize) -> Result<(ShardEntry, usize, usize), String> {
    let store =
        Arc::new(WorkflowStore::load_from_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?);
    let service = Arc::new(DiffService::builder(store).threads(threads).build());
    let report = service.warm_start().map_err(|e| e.to_string())?;
    // Resume any checkpointed run clustering (validated entry by entry;
    // stale or corrupt state is simply rebuilt on the next cluster query).
    let clusters = service.load_cluster_state(dir);
    if clusters.loaded > 0 || clusters.stale > 0 {
        println!(
            "wfdiff_serve cluster cache [{}]: {} spec(s) resumed, {} stale entr(ies) to rebuild",
            dir.display(),
            clusters.loaded,
            clusters.stale
        );
    }
    // Same resume for the vantage-point metric index behind pruned /similar.
    let metric = service.load_metric_state(dir);
    if metric.loaded > 0 || metric.stale > 0 {
        println!(
            "wfdiff_serve metric index [{}]: {} tree(s) resumed, {} stale entr(ies) to rebuild",
            dir.display(),
            metric.loaded,
            metric.stale
        );
    }
    // Rebuild the in-flight stream registry from the write-ahead log so
    // streams survive a restart (stale or finalised groups are skipped).
    let streams = service.load_streams(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if streams.loaded > 0 || streams.skipped > 0 {
        println!(
            "wfdiff_serve streams [{}]: {} in-flight stream(s) resumed, {} skipped",
            dir.display(),
            streams.loaded,
            streams.skipped
        );
    }
    Ok((ShardEntry::new(service, Some(dir.to_path_buf())), report.specs, report.runs))
}

fn serve(dir: &str, addr: &str, threads: usize) -> Result<(), String> {
    let shard_dirs = detect_shard_dirs(dir);
    let dirs: Vec<PathBuf> =
        if shard_dirs.is_empty() { vec![PathBuf::from(dir)] } else { shard_dirs };
    let mut shards = Vec::with_capacity(dirs.len());
    let (mut specs, mut runs) = (0usize, 0usize);
    for shard_dir in &dirs {
        let (entry, shard_specs, shard_runs) = load_shard(shard_dir, threads)?;
        specs += shard_specs;
        runs += shard_runs;
        shards.push(entry);
    }
    let shard_count = shards.len();
    let router = ShardRouter::new(shards);
    let config = ServeConfig { addr: addr.to_string(), threads, ..ServeConfig::default() };
    let server =
        Server::bind_sharded(router, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "wfdiff_serve listening on http://{bound} ({specs} spec(s), {runs} run(s) warm, \
         {shard_count} shard(s), {threads} worker(s))"
    );
    // The address line is what scripts wait for; make sure it is not stuck
    // in a pipe buffer when stdout is not a terminal.
    let _ = std::io::stdout().flush();
    server.start().map_err(|e| e.to_string())?.join();
    Ok(())
}
