//! `store_tool` — export, import, verify and query PDiffView store
//! directories.
//!
//! ```text
//! store_tool export <dir> [specs] [runs-per-spec] [seed]
//!     Generate a synthetic workload (wfdiff-workloads generator) and
//!     persist it to <dir>.
//!
//! store_tool import <src> <dst>
//!     Load the store at <src> (full validation), re-save it to <dst> and
//!     report what round-tripped.
//!
//! store_tool verify <dir>
//!     Load the store at <dir>, warm-start a DiffService over it and
//!     difference every run pair of every specification.  A directory
//!     holding shard-NNN subdirectories is verified shard by shard, plus
//!     cross-shard checks: no specification may appear in two shards, and
//!     every specification must live in the shard the pinned routing hash
//!     assigns it.
//!
//! store_tool wal <dir>
//!     Print write-ahead-log record counts (inserts/removals/cluster
//!     deltas), byte sizes and any torn-tail bytes, per shard when the
//!     directory is sharded.
//!
//! store_tool checkpoint <dir>
//!     Force a checkpoint fold: load each store (replaying its WAL), save
//!     it back (folding the WAL into the manifest) and truncate the log.
//!
//! store_tool diff <dir> <spec> <run-a> <run-b>
//!     Load the store at <dir> and print the edit distance of one pair to
//!     stdout — rendered exactly like the diff server's JSON `distance`
//!     field, so shell pipelines can compare the two byte-for-byte.
//!
//! store_tool shard <src> <dst> <n>
//!     Partition the single-store directory at <src> into <n> hash-routed
//!     shard directories <dst>/shard-000 ... <dst>/shard-NNN — the operator
//!     migration path to a sharded `wfdiff_serve` deployment (see
//!     docs/OPERATIONS.md).  Cluster caches are not migrated; each shard
//!     rebuilds its own on the first cluster query.
//!
//! store_tool bench-compare <baseline.json> <current.json> [max-ratio]
//!     Compare two bench JSON documents (BENCH_serve.json and friends):
//!     every numeric leaf whose key contains "p50" is matched by path and
//!     the current value must not exceed `max-ratio` (default 2.0) times
//!     the baseline.  Exits 1 listing every regressed latency, 0 when the
//!     baseline file does not exist (first run: nothing to compare) — the
//!     CI bench-regression gate.
//! ```
//!
//! # Exit codes
//!
//! Scripted callers (CI smoke steps) can tell misuse from data problems:
//!
//! * `0` — success,
//! * `1` — **data error**: the store failed to load/save/verify (corrupt or
//!   version-mismatched documents, I/O failures, non-metric distances),
//! * `2` — **usage error**: unknown subcommand, missing argument or an
//!   unparsable numeric argument; the usage string is printed to stderr.
//!
//! Every load goes through [`WorkflowStore::load_from_dir`], so corrupt or
//! hand-edited documents are reported with their file path instead of
//! crashing the tool.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use wfdiff_pdiffview::{DiffService, WorkflowStore};
use wfdiff_workloads::generator::{random_specification, SpecGenConfig};
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

const USAGE: &str = "usage: store_tool export <dir> [specs] [runs-per-spec] [seed]\n\
                     \u{20}      store_tool import <src> <dst>\n\
                     \u{20}      store_tool verify <dir>\n\
                     \u{20}      store_tool wal <dir>\n\
                     \u{20}      store_tool checkpoint <dir>\n\
                     \u{20}      store_tool diff <dir> <spec> <run-a> <run-b>\n\
                     \u{20}      store_tool shard <src> <dst> <n>\n\
                     \u{20}      store_tool bench-compare <baseline.json> <current.json> [max-ratio]";

/// A failure, split by who caused it: the invocation or the data.
enum ToolError {
    /// Bad invocation: exits 2 with the usage string.
    Usage(String),
    /// The store (or the filesystem) is at fault: exits 1.
    Data(String),
}

impl From<String> for ToolError {
    fn from(message: String) -> Self {
        ToolError::Data(message)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("export") => export(&args[1..]),
        Some("import") => import(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("wal") => wal(&args[1..]),
        Some("checkpoint") => checkpoint(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("shard") => shard(&args[1..]),
        Some("bench-compare") => bench_compare(&args[1..]),
        Some(other) => Err(ToolError::Usage(format!("unknown subcommand {other:?}"))),
        None => Err(ToolError::Usage("no subcommand given".to_string())),
    };
    match result {
        Ok(()) => {}
        Err(ToolError::Usage(message)) => {
            eprintln!("store_tool: {message}\n{USAGE}");
            std::process::exit(2);
        }
        Err(ToolError::Data(message)) => {
            eprintln!("store_tool: {message}");
            std::process::exit(1);
        }
    }
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, ToolError> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| ToolError::Usage(format!("missing argument: {what}")))
}

/// Parses an optional numeric argument; an argument that is present but
/// unparsable is a usage error, not a silent fallback to the default.
fn parse_or<T: std::str::FromStr>(
    args: &[String],
    i: usize,
    what: &str,
    default: T,
) -> Result<T, ToolError> {
    match args.get(i) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| ToolError::Usage(format!("argument {what} is not a number: {raw:?}"))),
    }
}

/// Builds a seeded synthetic store and saves it.
fn export(args: &[String]) -> Result<(), ToolError> {
    let dir = arg(args, 0, "target directory")?;
    let specs: usize = parse_or(args, 1, "specs", 2)?;
    let runs: usize = parse_or(args, 2, "runs-per-spec", 5)?;
    let seed: u64 = parse_or(args, 3, "seed", 0x5704E)?;

    let store = WorkflowStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for s in 0..specs {
        let spec = random_specification(
            &format!("spec{s:02}"),
            &SpecGenConfig { target_edges: 40, series_parallel_ratio: 1.0, forks: 2, loops: 1 },
            &mut rng,
        );
        let spec = store.insert_spec(spec).map_err(|e| e.to_string())?;
        let config = RunGenConfig { prob_p: 0.85, max_f: 3, prob_f: 0.6, max_l: 3, prob_l: 0.6 };
        for r in 0..runs {
            store
                .insert_run(&format!("run{r:03}"), generate_run(&spec, &config, &mut rng))
                .map_err(|e| e.to_string())?;
        }
    }
    let summary = store.save_to_dir(dir).map_err(|e| e.to_string())?;
    println!("exported {} spec(s), {} run(s) to {dir}", summary.specs, summary.runs);
    Ok(())
}

/// Loads a store (validated) and re-saves it elsewhere.
fn import(args: &[String]) -> Result<(), ToolError> {
    let src = arg(args, 0, "source directory")?;
    let dst = arg(args, 1, "target directory")?;
    let store = WorkflowStore::load_from_dir(src).map_err(|e| e.to_string())?;
    let summary = store.save_to_dir(dst).map_err(|e| e.to_string())?;
    println!(
        "imported {} spec(s), {} run(s) from {src} and re-saved to {dst}",
        summary.specs, summary.runs
    );
    Ok(())
}

/// Loads a store (or every shard of a sharded layout), warms a service
/// over it and differences every pair.  Sharded layouts additionally get
/// cross-shard checks: spec-slug disjointness and routing-hash placement.
fn verify(args: &[String]) -> Result<(), ToolError> {
    let dir = arg(args, 0, "store directory")?;
    let shards = wfdiff_pdiffview::serve::shard::detect_shard_dirs(dir);
    if shards.is_empty() {
        verify_one(std::path::Path::new(dir), "")?;
        println!("store at {dir} verifies clean");
        return Ok(());
    }
    let n = shards.len();
    let mut owner: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for (i, shard_dir) in shards.iter().enumerate() {
        let label = wfdiff_pdiffview::serve::shard::shard_dir_name(i);
        let specs = verify_one(shard_dir, &format!("{label}: "))?;
        for spec in specs {
            let routed = wfdiff_pdiffview::serve::shard::shard_of(&spec, n);
            if routed != i {
                return Err(ToolError::Data(format!(
                    "specification {spec:?} lives in {label} but the routing hash places it \
                     in shard {routed} of {n}"
                )));
            }
            if let Some(previous) = owner.insert(spec.clone(), i) {
                return Err(ToolError::Data(format!(
                    "specification {spec:?} appears in both shard {previous} and shard {i}"
                )));
            }
        }
    }
    println!("sharded store at {dir} verifies clean ({n} shard(s), {} spec(s))", owner.len());
    Ok(())
}

/// Verifies one store directory; returns its specification names.
fn verify_one(dir: &std::path::Path, prefix: &str) -> Result<Vec<String>, ToolError> {
    let store = Arc::new(WorkflowStore::load_from_dir(dir).map_err(|e| e.to_string())?);
    let names = store.spec_names();
    let service = DiffService::new(Arc::clone(&store));
    let report = service.warm_start().map_err(|e| e.to_string())?;
    println!("{prefix}loaded {} spec(s), {} run(s); cache warmed", report.specs, report.runs);
    for name in &names {
        let result = service.diff_all_pairs(name).map_err(|e| e.to_string())?;
        let n = result.runs.len();
        let mut max = 0.0f64;
        for (_, _, d) in result.pairs() {
            if !d.is_finite() || d < 0.0 {
                return Err(ToolError::Data(format!(
                    "specification {name:?}: non-metric distance {d}"
                )));
            }
            max = max.max(d);
        }
        println!(
            "{prefix}  {name}: {n} run(s), {} pair(s), max distance {max}",
            n * n.saturating_sub(1) / 2
        );
    }
    Ok(names)
}

/// The store directories a WAL/checkpoint subcommand operates on: the
/// shard subdirectories of a sharded layout, or the directory itself.
fn store_dirs(dir: &str) -> Vec<(String, std::path::PathBuf)> {
    let shards = wfdiff_pdiffview::serve::shard::detect_shard_dirs(dir);
    if shards.is_empty() {
        vec![(dir.to_string(), std::path::PathBuf::from(dir))]
    } else {
        shards
            .into_iter()
            .enumerate()
            .map(|(i, p)| (wfdiff_pdiffview::serve::shard::shard_dir_name(i), p))
            .collect()
    }
}

/// Prints WAL record counts, kinds and byte sizes, per shard.
fn wal(args: &[String]) -> Result<(), ToolError> {
    let dir = arg(args, 0, "store directory")?;
    for (label, path) in store_dirs(dir) {
        if !path.join("manifest.json").exists() {
            return Err(ToolError::Data(format!("{label}: not a store directory")));
        }
        let summary = wfdiff_pdiffview::wal::inspect(&path).map_err(|e| e.to_string())?;
        println!(
            "{label}: {} record(s) ({} insert(s), {} removal(s), {} cluster delta(s), \
             {} metric delta(s)), {} byte(s), {} torn byte(s)",
            summary.records,
            summary.run_inserts,
            summary.run_removes,
            summary.cluster_deltas,
            summary.metric_deltas,
            summary.bytes,
            summary.torn_bytes
        );
    }
    Ok(())
}

/// Forces a checkpoint fold: load (replaying the WAL), save (folding it
/// into the manifest), truncate the log.
fn checkpoint(args: &[String]) -> Result<(), ToolError> {
    let dir = arg(args, 0, "store directory")?;
    for (label, path) in store_dirs(dir) {
        let before = wfdiff_pdiffview::wal::inspect(&path).map_err(|e| e.to_string())?;
        let store = WorkflowStore::load_from_dir(&path).map_err(|e| e.to_string())?;
        let summary = store.save_to_dir(&path).map_err(|e| e.to_string())?;
        println!(
            "{label}: folded {} WAL record(s) into {} spec(s), {} run(s)",
            before.records, summary.specs, summary.runs
        );
    }
    Ok(())
}

/// Loads a store and prints one pair's distance, JSON-formatted.
fn diff(args: &[String]) -> Result<(), ToolError> {
    let dir = arg(args, 0, "store directory")?;
    let spec = arg(args, 1, "specification name")?;
    let a = arg(args, 2, "first run name")?;
    let b = arg(args, 3, "second run name")?;
    let store = Arc::new(WorkflowStore::load_from_dir(dir).map_err(|e| e.to_string())?);
    let service = DiffService::new(store);
    let pair = service.diff(spec, a, b).map_err(|e| e.to_string())?;
    // Render through the JSON serializer so the output is byte-identical to
    // the `distance` field a diff server returns for the same pair.
    println!(
        "{}",
        serde_json::to_string(&pair.distance).map_err(|e| ToolError::Data(e.to_string()))?
    );
    Ok(())
}

/// Collects every numeric leaf of a bench JSON document whose key mentions
/// `p50`, as `(dotted.path, value)` pairs — the latencies the regression
/// gate guards.
fn p50_leaves(value: &serde::Value, path: &str, out: &mut Vec<(String, f64)>) {
    match value {
        serde::Value::Map(entries) => {
            for (key, child) in entries {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                p50_leaves(child, &child_path, out);
            }
        }
        serde::Value::Seq(items) => {
            for (i, child) in items.iter().enumerate() {
                p50_leaves(child, &format!("{path}[{i}]"), out);
            }
        }
        serde::Value::Int(v) => leaf(path, *v as f64, out),
        serde::Value::UInt(v) => leaf(path, *v as f64, out),
        serde::Value::Float(v) => leaf(path, *v, out),
        serde::Value::Null | serde::Value::Bool(_) | serde::Value::Str(_) => {}
    }
}

fn leaf(path: &str, value: f64, out: &mut Vec<(String, f64)>) {
    let key = path.rsplit('.').next().unwrap_or(path);
    if key.contains("p50") {
        out.push((path.to_string(), value));
    }
}

/// Compares the `p50` latencies of two bench JSON documents; any current
/// value above `max-ratio` times its baseline is a regression (exit 1).  A
/// missing baseline file is a clean pass — the first CI run has no previous
/// artifact to compare against.
fn bench_compare(args: &[String]) -> Result<(), ToolError> {
    let baseline_path = arg(args, 0, "baseline JSON file")?;
    let current_path = arg(args, 1, "current JSON file")?;
    let max_ratio: f64 = parse_or(args, 2, "max-ratio", 2.0)?;
    if !(max_ratio.is_finite() && max_ratio > 0.0) {
        return Err(ToolError::Usage(format!(
            "max-ratio must be a positive number, got {max_ratio}"
        )));
    }
    if !std::path::Path::new(baseline_path).exists() {
        println!("bench-compare: no baseline at {baseline_path}, nothing to compare");
        return Ok(());
    }
    let read = |path: &str| -> Result<serde::Value, ToolError> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| ToolError::Data(format!("{path}: {e}")))
    };
    let mut baseline = Vec::new();
    p50_leaves(&read(baseline_path)?, "", &mut baseline);
    let mut current = Vec::new();
    p50_leaves(&read(current_path)?, "", &mut current);
    let current: std::collections::BTreeMap<String, f64> = current.into_iter().collect();

    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for (path, base) in &baseline {
        let Some(now) = current.get(path) else {
            continue; // the metric disappeared: schema evolution, not a regression
        };
        compared += 1;
        // Sub-microsecond baselines are noise-dominated; never gate on them.
        if *base <= 1e-6 {
            continue;
        }
        let ratio = now / base;
        if ratio > max_ratio {
            regressions.push(format!("  {path}: {base} -> {now} ({ratio:.2}x > {max_ratio}x)"));
        } else {
            println!("  {path}: {base} -> {now} ({ratio:.2}x, limit {max_ratio}x)");
        }
    }
    if !regressions.is_empty() {
        return Err(ToolError::Data(format!(
            "{} of {compared} p50 latenc(ies) regressed beyond {max_ratio}x:\n{}",
            regressions.len(),
            regressions.join("\n")
        )));
    }
    println!("bench-compare: {compared} p50 latenc(ies) within {max_ratio}x of {baseline_path}");
    Ok(())
}

/// Partitions a single-store directory into hash-routed shard directories.
fn shard(args: &[String]) -> Result<(), ToolError> {
    let src = arg(args, 0, "source directory")?;
    let dst = arg(args, 1, "target directory")?;
    let n: usize = match arg(args, 2, "shard count")?.parse() {
        Ok(n) if n > 0 => n,
        _ => {
            return Err(ToolError::Usage(format!(
                "shard count must be a positive integer, got {:?}",
                args[2]
            )))
        }
    };
    let summaries = wfdiff_pdiffview::serve::shard::split_store_into_shards(src, dst, n)
        .map_err(|e| ToolError::Data(e.to_string()))?;
    for (i, summary) in summaries.iter().enumerate() {
        println!(
            "  {}: {} spec(s), {} run(s)",
            wfdiff_pdiffview::serve::shard::shard_dir_name(i),
            summary.specs,
            summary.runs
        );
    }
    println!(
        "sharded {src} into {n} shard(s) under {dst} ({} spec(s), {} run(s) total)",
        summaries.iter().map(|s| s.specs).sum::<usize>(),
        summaries.iter().map(|s| s.runs).sum::<usize>()
    );
    Ok(())
}
