//! `store_tool` — export, import and verify PDiffView store directories.
//!
//! ```text
//! store_tool export <dir> [specs] [runs-per-spec] [seed]
//!     Generate a synthetic workload (wfdiff-workloads generator) and
//!     persist it to <dir>.
//!
//! store_tool import <src> <dst>
//!     Load the store at <src> (full validation), re-save it to <dst> and
//!     report what round-tripped.
//!
//! store_tool verify <dir>
//!     Load the store at <dir>, warm-start a DiffService over it and
//!     difference every run pair of every specification; exits non-zero if
//!     anything fails validation.
//! ```
//!
//! Every load goes through [`WorkflowStore::load_from_dir`], so corrupt or
//! hand-edited documents are reported with their file path instead of
//! crashing the tool.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use wfdiff_pdiffview::{DiffService, WorkflowStore};
use wfdiff_workloads::generator::{random_specification, SpecGenConfig};
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("export") => export(&args[1..]),
        Some("import") => import(&args[1..]),
        Some("verify") => verify(&args[1..]),
        _ => {
            eprintln!(
                "usage: store_tool export <dir> [specs] [runs-per-spec] [seed]\n\
                 \u{20}      store_tool import <src> <dst>\n\
                 \u{20}      store_tool verify <dir>"
            );
            std::process::exit(2);
        }
    };
    if let Err(message) = result {
        eprintln!("store_tool: {message}");
        std::process::exit(1);
    }
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i).map(String::as_str).ok_or_else(|| format!("missing argument: {what}"))
}

fn parse_or<T: std::str::FromStr>(args: &[String], i: usize, default: T) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Builds a seeded synthetic store and saves it.
fn export(args: &[String]) -> Result<(), String> {
    let dir = arg(args, 0, "target directory")?;
    let specs: usize = parse_or(args, 1, 2);
    let runs: usize = parse_or(args, 2, 5);
    let seed: u64 = parse_or(args, 3, 0x5704E);

    let store = WorkflowStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for s in 0..specs {
        let spec = random_specification(
            &format!("spec{s:02}"),
            &SpecGenConfig { target_edges: 40, series_parallel_ratio: 1.0, forks: 2, loops: 1 },
            &mut rng,
        );
        let spec = store.insert_spec(spec).map_err(|e| e.to_string())?;
        let config = RunGenConfig { prob_p: 0.85, max_f: 3, prob_f: 0.6, max_l: 3, prob_l: 0.6 };
        for r in 0..runs {
            store
                .insert_run(&format!("run{r:03}"), generate_run(&spec, &config, &mut rng))
                .map_err(|e| e.to_string())?;
        }
    }
    let summary = store.save_to_dir(dir).map_err(|e| e.to_string())?;
    println!("exported {} spec(s), {} run(s) to {dir}", summary.specs, summary.runs);
    Ok(())
}

/// Loads a store (validated) and re-saves it elsewhere.
fn import(args: &[String]) -> Result<(), String> {
    let src = arg(args, 0, "source directory")?;
    let dst = arg(args, 1, "target directory")?;
    let store = WorkflowStore::load_from_dir(src).map_err(|e| e.to_string())?;
    let summary = store.save_to_dir(dst).map_err(|e| e.to_string())?;
    println!(
        "imported {} spec(s), {} run(s) from {src} and re-saved to {dst}",
        summary.specs, summary.runs
    );
    Ok(())
}

/// Loads a store, warms a service over it and differences every pair.
fn verify(args: &[String]) -> Result<(), String> {
    let dir = arg(args, 0, "store directory")?;
    let store = Arc::new(WorkflowStore::load_from_dir(dir).map_err(|e| e.to_string())?);
    let names = store.spec_names();
    let service = DiffService::new(Arc::clone(&store));
    let report = service.warm_start().map_err(|e| e.to_string())?;
    println!("loaded {} spec(s), {} run(s); cache warmed", report.specs, report.runs);
    for name in names {
        let result = service.diff_all_pairs(&name).map_err(|e| e.to_string())?;
        let n = result.runs.len();
        let mut max = 0.0f64;
        for (_, _, d) in result.pairs() {
            if !d.is_finite() || d < 0.0 {
                return Err(format!("specification {name:?}: non-metric distance {d}"));
            }
            max = max.max(d);
        }
        println!(
            "  {name}: {n} run(s), {} pair(s), max distance {max}",
            n * n.saturating_sub(1) / 2
        );
    }
    println!("store at {dir} verifies clean");
    Ok(())
}
