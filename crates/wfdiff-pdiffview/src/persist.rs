//! Durable on-disk persistence for [`WorkflowStore`] (versioned format,
//! crash-safe writes, fully validated loads).
//!
//! The PDiffView prototype is a *persistent* provenance database:
//! specifications and runs are stored as documents and differenced on
//! demand.  This module gives the in-memory [`WorkflowStore`] that
//! durability.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   manifest.json                    # StoreManifest: format version + spec index
//!   wal.log                          # write-ahead log of post-manifest mutations
//!   specs/<slug>-<fp8>/spec.json     # spec document: version, fingerprint, SpecDescriptor
//!   specs/<slug>-<fp8>/runs/<n>.json # one self-describing run document per run
//! ```
//!
//! * The **manifest** is the root of truth: only specification directories it
//!   lists are loaded, so stray or orphaned directories are ignored.
//! * The **write-ahead log** holds the mutations appended *since* the
//!   manifest committed: run inserts, run removals and cluster-checkpoint
//!   deltas, each a length-prefixed checksummed record (see [`crate::wal`]).
//!   [`WorkflowStore::load_from_dir`] replays it past the manifest state
//!   (truncating a torn tail first), and a full save **folds** it — merges
//!   the cluster deltas into `cluster_cache.json`, commits the snapshot,
//!   truncates the log to zero.
//! * Each specification directory is keyed by a slug of the name plus the
//!   first 8 hex digits of the spec's **canonical persistent fingerprint**
//!   (the arena fingerprint of the specification *as rebuilt from its
//!   descriptor* — a deterministic function of the document, so load can
//!   verify it byte-for-byte).  A structurally changed spec therefore lands
//!   in a *fresh* directory and the old one stays intact until the manifest
//!   rename commits the switch.
//! * Runs are **not** listed in the manifest: every `runs/*.json` document
//!   carries its own name and the fingerprint of the spec version it belongs
//!   to.  Appending a run to a live store directory is a single atomic file
//!   creation — no index rewrite.
//!
//! # Crash safety
//!
//! Every file is written to a temporary sibling and atomically
//! `rename(2)`d into place, and the manifest is written **last**.  A crash
//! mid-save leaves the previous manifest pointing at the previous (still
//! complete) spec directories; at worst a fingerprint-identical spec
//! directory has gained or lost some run files, all of which remain valid
//! for that exact spec version.  WAL replay is idempotent, so a crash
//! anywhere between a manifest commit and the WAL truncation that follows
//! it merely replays records whose effects the manifest already holds.
//! Every durability-relevant operation runs through the store's
//! [`StoreIo`] trait object, which is how the
//! crash-torture harness proves these windows safe at every single fault
//! point.
//!
//! Saves from one process are serialised internally (a per-store lock).
//! **Concurrent saves into one directory from different processes are not
//! coordinated** — their garbage-collection passes could delete each
//! other's spec directories; give each writer its own directory or add
//! external locking.  Concurrent *loaders* are always safe: they only see
//! whatever manifest rename committed last.
//!
//! # Validation on load
//!
//! [`WorkflowStore::load_from_dir`] trusts nothing it reads: format
//! versions, fingerprints (manifest vs spec document vs rebuilt
//! specification vs run documents), directory names, control edge indices
//! and run node indices are all checked, and every failure surfaces as a
//! [`PersistError`] naming the offending file — never a panic.  See
//! [`PersistError`] for recovery semantics.

use crate::io::{RunDescriptor, SpecDescriptor};
use crate::store::{StoreError, WorkflowStore};
use crate::storeio::StoreIo;
use crate::wal;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use wfdiff_sptree::Specification;
use wfdiff_sptree::{Fingerprint, SpTreeError};

/// Version tag of the store directory format written by this module.
///
/// Version 1 is the initial layout described in the [module docs](self).
/// Loaders reject any other version rather than guessing; bump this constant
/// whenever the layout or document schemas change incompatibly.
pub const STORE_FORMAT: u32 = 1;

/// Errors raised while persisting or loading a store directory.
///
/// # Recovery semantics
///
/// A `PersistError` from [`WorkflowStore::load_from_dir`] means the store
/// directory (or one document in it) could not be trusted; **nothing is
/// partially loaded** — the failed load returns no store.  The variants tell
/// the operator what to do:
///
/// * [`PersistError::Io`] — the directory is unreadable or mid-copy; retry
///   or fix permissions.  No data interpretation happened.
/// * [`PersistError::Json`] / [`PersistError::Format`] — a document is
///   corrupt, hand-edited, truncated or from an incompatible format version.
///   Restore the file from a good copy or delete the offending run document
///   (spec documents are load-bearing; run documents are individually
///   disposable).
/// * [`PersistError::Tree`] — a document parsed but describes an invalid
///   specification or run (bad edge/node indices, non-SP graph, run that
///   does not replay).  Same recovery as corrupt documents.
/// * [`PersistError::Store`] — documents were individually valid but
///   mutually inconsistent (e.g. two spec directories claiming one name).
///
/// A `PersistError` from [`WorkflowStore::save_to_dir`] means the directory
/// may hold a partial new save.  The previous manifest and every spec
/// document it references are untouched unless the final manifest rename
/// succeeded; run documents inside a spec directory whose version did not
/// change may however already have been rewritten or pruned to the new run
/// set (each individually valid for that spec version — see the
/// crash-safety notes in the [module docs](self)).
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// What the operation was trying to do.
        context: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A document failed to parse as JSON (or to serialise).
    Json {
        /// The offending document.
        path: PathBuf,
        /// The underlying JSON error.
        source: serde_json::Error,
    },
    /// A document parsed but its framing is wrong: unsupported format
    /// version, fingerprint mismatch, name mismatch or unsafe path.
    Format {
        /// The offending document or directory entry.
        path: PathBuf,
        /// What was wrong.
        what: String,
    },
    /// A document described an invalid specification or run.
    Tree {
        /// The offending document.
        path: PathBuf,
        /// The underlying rebuild/validation error.
        source: SpTreeError,
    },
    /// The rebuilt documents could not be inserted into one coherent store.
    Store {
        /// The underlying store error.
        source: StoreError,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, context, source } => {
                write!(f, "{context} {}: {source}", path.display())
            }
            PersistError::Json { path, source } => {
                write!(f, "invalid JSON in {}: {source}", path.display())
            }
            PersistError::Format { path, what } => {
                write!(f, "malformed store document {}: {what}", path.display())
            }
            PersistError::Tree { path, source } => {
                write!(f, "invalid specification/run in {}: {source}", path.display())
            }
            PersistError::Store { source } => write!(f, "inconsistent store contents: {source}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Json { source, .. } => Some(source),
            PersistError::Tree { source, .. } => Some(source),
            PersistError::Store { source } => Some(source),
            PersistError::Format { .. } => None,
        }
    }
}

impl From<StoreError> for PersistError {
    fn from(source: StoreError) -> Self {
        PersistError::Store { source }
    }
}

/// What [`WorkflowStore::save_to_dir`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveSummary {
    /// Number of specifications persisted.
    pub specs: usize,
    /// Number of runs persisted (across all specifications).
    pub runs: usize,
}

// ---------------------------------------------------------------------------
// Document schemas
// ---------------------------------------------------------------------------

/// `manifest.json`: the root of truth for a store directory.
#[derive(Debug, Serialize, Deserialize)]
struct StoreManifest {
    /// Store directory format version; see [`STORE_FORMAT`].
    format: u32,
    /// One entry per persisted specification.
    specs: Vec<ManifestSpec>,
}

/// One manifest entry.
#[derive(Debug, Serialize, Deserialize)]
struct ManifestSpec {
    /// Specification name (authoritative; directory names are only slugs).
    name: String,
    /// Directory under `specs/` holding the spec document and its runs.
    dir: String,
    /// Canonical persistent fingerprint (hex) of the specification.
    fingerprint: String,
}

/// `spec.json`: a specification document.
#[derive(Debug, Serialize, Deserialize)]
struct SpecDocument {
    /// Store format version the document was written under.
    format: u32,
    /// Canonical persistent fingerprint (hex); must match the manifest entry
    /// and the specification rebuilt from `spec`.
    fingerprint: String,
    /// The specification itself.
    spec: SpecDescriptor,
}

/// `runs/<n>.json`: a self-describing run document.
#[derive(Debug, Serialize, Deserialize)]
struct RunDocument {
    /// Store format version the document was written under.
    format: u32,
    /// Run name within its specification.
    name: String,
    /// Canonical persistent fingerprint (hex) of the specification version
    /// this run was validated against.
    spec_fingerprint: String,
    /// The run itself.
    run: RunDescriptor,
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn io_err(path: &Path, context: &'static str, source: std::io::Error) -> PersistError {
    PersistError::Io { path: path.to_path_buf(), context, source }
}

fn format_err(path: &Path, what: impl Into<String>) -> PersistError {
    PersistError::Format { path: path.to_path_buf(), what: what.into() }
}

fn parse_fingerprint(path: &Path, hex: &str) -> Result<Fingerprint, PersistError> {
    u128::from_str_radix(hex, 16)
        .map(Fingerprint)
        .map_err(|_| format_err(path, format!("unparsable fingerprint {hex:?}")))
}

/// Turns an arbitrary name into a safe, human-recognisable file-name stem.
/// Uniqueness is provided by the caller (fingerprint suffix / counter), not
/// by the slug itself.
fn slug(name: &str) -> String {
    let mut out: String = name
        .chars()
        .take(48)
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '_' })
        .collect();
    // A leading dot would make the entry hidden (and "." / ".." unsafe).
    if out.is_empty() || out.starts_with('.') {
        out.insert(0, '_');
    }
    out
}

/// FNV-1a over a name, as 16 hex digits.  Appended to run-file slugs so that
/// a run's file name is a function of the run name *alone*: re-saving a
/// changed run set overwrites surviving runs in place instead of shifting
/// documents between file names (a shift would open a crash window in which
/// two files carry the same run name and the store refuses to load).  The
/// full 64-bit hash keeps same-slug collisions — which would fall back to a
/// position-dependent bump — out of practical reach.
fn name_hash(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Rejects manifest `dir` values that could escape the store directory.
fn check_dir_component(manifest_path: &Path, dir: &str) -> Result<(), PersistError> {
    // `:` covers Windows drive-relative prefixes like `C:evil`, which
    // `Path::join` would resolve outside the store root.
    let unsafe_component = dir.is_empty()
        || dir == "."
        || dir == ".."
        || dir.contains('/')
        || dir.contains('\\')
        || dir.contains(':')
        || dir.contains('\0');
    if unsafe_component {
        return Err(format_err(
            manifest_path,
            format!("spec directory entry {dir:?} is not a plain directory name"),
        ));
    }
    Ok(())
}

/// Serialises `value` and atomically replaces `path` with it (write to a
/// temporary sibling, then `rename`).  Byte-identical documents are left
/// untouched: the content of every document is a deterministic function of
/// the store state, so skipping unchanged files keeps a re-save's durable
/// writes (each a write + fsync + rename) proportional to the delta rather
/// than to the whole store.
pub(crate) fn write_json_atomic<T: Serialize>(
    io: &dyn StoreIo,
    path: &Path,
    value: &T,
) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|source| PersistError::Json { path: path.to_path_buf(), source })?;
    if fs::read_to_string(path).is_ok_and(|existing| existing == json) {
        return Ok(());
    }
    // The temp name carries the process id and a counter so two writers
    // (e.g. a service save racing a store_tool import from another process)
    // never truncate each other's in-flight temp file; saves within one
    // process are additionally serialised by the store's save lock.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}-{seq}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp);
    // The data must be on stable storage *before* the rename is: journalling
    // filesystems may otherwise persist the rename ahead of the data blocks
    // and a power loss would leave a committed-looking but truncated file.
    io.write_file(&tmp, json.as_bytes()).map_err(|e| io_err(&tmp, "writing", e))?;
    io.fsync_file(&tmp).map_err(|e| io_err(&tmp, "syncing", e))?;
    io.rename(&tmp, path).map_err(|e| io_err(path, "committing", e))?;
    // Make the rename itself durable by syncing the parent directory.
    // Best-effort: not every platform lets a directory be opened and synced,
    // and a failure here only weakens durability, never atomicity.
    if let Some(parent) = path.parent() {
        let _ = io.fsync_dir(parent);
    }
    Ok(())
}

pub(crate) fn read_json<T: for<'de> Deserialize<'de>>(path: &Path) -> Result<T, PersistError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, "reading", e))?;
    serde_json::from_str(&text)
        .map_err(|source| PersistError::Json { path: path.to_path_buf(), source })
}

/// The canonical persistent fingerprint of a descriptor: the arena
/// fingerprint of the specification it deterministically rebuilds into.
/// (The in-memory original may have been built with a different arena
/// layout; what load can verify is the rebuilt identity, so that is what
/// gets recorded.)
fn canonical_fingerprint(
    path: &Path,
    descriptor: &SpecDescriptor,
) -> Result<(Fingerprint, wfdiff_sptree::Specification), PersistError> {
    let rebuilt = descriptor
        .to_specification()
        .map_err(|source| PersistError::Tree { path: path.to_path_buf(), source })?;
    Ok((rebuilt.fingerprint(), rebuilt))
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

impl WorkflowStore {
    /// Persists a consistent snapshot of the whole store into `dir`,
    /// creating it if needed (see the [module docs](self) for the layout).
    ///
    /// The write is crash-safe: all spec and run documents are written (each
    /// atomically via rename) before the manifest — the commit point — is
    /// renamed into place.  Re-saving over an existing store directory
    /// reuses fingerprint-identical spec directories, prunes run documents
    /// that no longer exist in the store, and garbage-collects spec
    /// directories the new manifest no longer references.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<SaveSummary, PersistError> {
        // One save at a time per store: interleaved saves could prune each
        // other's freshly written documents or garbage-collect a directory
        // the other's manifest is about to reference.  (Writers in other
        // *processes* must coordinate externally — see the module docs.)
        let _guard = self.save_lock.lock();
        self.save_to_dir_locked(dir.as_ref())
    }

    /// The body of [`WorkflowStore::save_to_dir`]; the caller holds
    /// `save_lock` (either the public wrapper or a WAL append whose
    /// threshold check escalated into a fold).
    fn save_to_dir_locked(&self, dir: &Path) -> Result<SaveSummary, PersistError> {
        // The records appended since the last fold.  Scanned up front so the
        // cluster deltas can be merged into `cluster_cache.json` before the
        // log is truncated; nothing can append concurrently (save_lock).
        let wal_scan = wal::scan(dir)?;
        // Refuse to clobber a store this build cannot read: the
        // garbage-collection pass below would otherwise silently destroy a
        // newer-format (or foreign) store's spec directories.  Only the
        // `format` field is probed, so the guard also fires for future
        // manifest schemas this build cannot fully parse.  An absent or
        // JSON-invalid manifest is fine — an empty target, or a corrupt
        // store being repaired by a fresh save (delete `manifest.json` to
        // force a save past this guard).
        #[derive(Deserialize)]
        struct FormatProbe {
            #[serde(default)]
            format: u32,
        }
        let manifest_path = dir.join("manifest.json");
        if let Ok(text) = fs::read_to_string(&manifest_path) {
            if let Ok(existing) = serde_json::from_str::<FormatProbe>(&text) {
                if existing.format != STORE_FORMAT {
                    return Err(format_err(
                        &manifest_path,
                        format!(
                            "refusing to overwrite a store of format {} (this build writes \
                             format {STORE_FORMAT}); save into a fresh directory instead",
                            existing.format
                        ),
                    ));
                }
            }
        }
        let specs_root = dir.join("specs");
        self.io.create_dir_all(&specs_root).map_err(|e| io_err(&specs_root, "creating", e))?;

        let snapshot = self.snapshot_all();
        let mut manifest = StoreManifest { format: STORE_FORMAT, specs: Vec::new() };
        let mut total_runs = 0usize;
        let mut used_dirs = std::collections::BTreeSet::new();

        for (name, (spec, runs)) in &snapshot {
            let descriptor = SpecDescriptor::from_specification(spec);
            // Error-context label only: the real directory name needs the
            // fingerprint, which is what this step computes, so a rebuild
            // failure is reported against the slug prefix of the spec.
            let spec_json_path = specs_root.join(slug(name));
            // The descriptor → specification rebuild behind
            // `canonical_fingerprint` repeats the full SP decomposition;
            // memoise its result per in-memory spec version so repeated
            // saves of an unchanged store stay cheap.
            let cached = self.persist_fp_cache.lock().get(&spec.fingerprint()).copied();
            let fp = match cached {
                Some(fp) => fp,
                None => {
                    let (fp, _) = canonical_fingerprint(&spec_json_path, &descriptor)?;
                    self.persist_fp_cache.lock().insert(spec.fingerprint(), fp);
                    fp
                }
            };
            let fp_hex = fp.to_string();
            // Distinct names can share a slug (and even a structure), so the
            // directory name gets a counter on collision.  A candidate is
            // also bumped when it already exists on disk holding a spec
            // document for a *different name or version* (the 8-hex dir
            // suffix is only a prefix of the full fingerprint): overwriting
            // a committed directory before the new manifest lands would
            // break the crash-safety guarantee (the old manifest must keep
            // pointing at intact directories).  The snapshot is name-sorted,
            // keeping the assignment stable across saves of the same spec
            // set.
            let base = format!("{}-{}", slug(name), &fp_hex[..8]);
            let mut dir_name = base.clone();
            let mut bump = 1usize;
            loop {
                if used_dirs.contains(&dir_name) {
                    bump += 1;
                    dir_name = format!("{base}-{bump}");
                    continue;
                }
                let existing = specs_root.join(&dir_name).join("spec.json");
                let occupied = match fs::read_to_string(&existing) {
                    // Absent spec.json: the slot is free.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                    // Any other read failure (permissions, fd exhaustion, …)
                    // must abort: guessing "free" could overwrite a
                    // committed directory owned by another spec.
                    Err(e) => return Err(io_err(&existing, "probing", e)),
                    Ok(text) => match serde_json::from_str::<SpecDocument>(&text) {
                        Ok(doc) => doc.spec.name != *name || doc.fingerprint != fp_hex,
                        // Corrupt spec.json: no loadable state can
                        // reference this directory, so it is reclaimable.
                        Err(_) => false,
                    },
                };
                if occupied {
                    bump += 1;
                    dir_name = format!("{base}-{bump}");
                    continue;
                }
                break;
            }
            used_dirs.insert(dir_name.clone());
            let spec_dir = specs_root.join(&dir_name);
            let runs_dir = spec_dir.join("runs");
            self.io.create_dir_all(&runs_dir).map_err(|e| io_err(&runs_dir, "creating", e))?;

            let spec_path = spec_dir.join("spec.json");
            write_json_atomic(
                &*self.io,
                &spec_path,
                &SpecDocument {
                    format: STORE_FORMAT,
                    fingerprint: fp_hex.clone(),
                    spec: descriptor,
                },
            )?;

            // One document per run.  The file name is a function of the run
            // name alone (slug + name hash, bumped deterministically on the
            // residual hash collision), so a re-save with a changed run set
            // rewrites surviving runs in place — a crash between the writes
            // and the prune can leave extra or missing documents but never
            // two documents claiming one run name.  The authoritative run
            // name lives inside the document.
            let mut written = std::collections::BTreeSet::new();
            for (run_name, run) in runs.iter() {
                let base = format!("{}-{}", slug(run_name), name_hash(run_name));
                let mut file = format!("{base}.json");
                let mut bump = 1usize;
                while written.contains(&file) {
                    bump += 1;
                    file = format!("{base}-{bump}.json");
                }
                let run_path = runs_dir.join(&file);
                write_json_atomic(
                    &*self.io,
                    &run_path,
                    &RunDocument {
                        format: STORE_FORMAT,
                        name: run_name.clone(),
                        spec_fingerprint: fp_hex.clone(),
                        run: RunDescriptor::from_run(run),
                    },
                )?;
                written.insert(file);
                total_runs += 1;
            }
            // Prune run documents from a previous save of this same spec
            // version that are no longer in the store, plus `.tmp` leftovers
            // of writes that crashed mid-flight (our own temp files were
            // all renamed away by this point).
            for entry in fs::read_dir(&runs_dir).map_err(|e| io_err(&runs_dir, "listing", e))? {
                let entry = entry.map_err(|e| io_err(&runs_dir, "listing", e))?;
                let file_name = entry.file_name().to_string_lossy().into_owned();
                let stale_doc = file_name.ends_with(".json") && !written.contains(&file_name);
                if stale_doc || file_name.ends_with(".tmp") {
                    let stale = entry.path();
                    self.io.remove_file(&stale).map_err(|e| io_err(&stale, "pruning", e))?;
                }
            }

            manifest.specs.push(ManifestSpec {
                name: name.clone(),
                dir: dir_name,
                fingerprint: fp_hex,
            });
        }

        // Fold the WAL's cluster and metric deltas into `cluster_cache.json`
        // and `metric_index.json` before the commit point.  A crash after this merge is safe on both sides of
        // the manifest rename: the cache is validated entry by entry on
        // load, and the still-untruncated WAL replays to the same state.
        let mut cluster_deltas: Vec<wal::ClusterDeltaRecord> = Vec::new();
        let mut metric_deltas: Vec<wal::MetricDeltaRecord> = Vec::new();
        // Stream events grouped per (spec, stream) in arrival order.  A
        // closure marker kills its group (those events are folded into the
        // finalised run); later records under the same key — a legal reuse
        // of the name after the run was deleted — start a fresh group.
        let mut streams: Vec<((String, String), Vec<wal::StreamEventRecord>)> = Vec::new();
        for record in wal_scan.records {
            match record {
                wal::WalRecord::ClusterDelta(delta) => cluster_deltas.push(delta),
                wal::WalRecord::MetricDelta(delta) => metric_deltas.push(delta),
                wal::WalRecord::StreamEvent(event) => {
                    let key = (event.spec.clone(), event.stream.clone());
                    if event.event.is_none() {
                        streams.retain(|(k, _)| *k != key);
                    } else if let Some((_, group)) = streams.iter_mut().find(|(k, _)| *k == key) {
                        group.push(event);
                    } else {
                        streams.push((key, vec![event]));
                    }
                }
                _ => {}
            }
        }
        crate::cluster::persist::fold_wal_deltas(&*self.io, dir, cluster_deltas)?;
        crate::metricindex::persist::fold_wal_deltas(&*self.io, dir, metric_deltas)?;

        // Commit point: the manifest rename atomically switches loaders from
        // the previous state to this one.
        write_json_atomic(&*self.io, &dir.join("manifest.json"), &manifest)?;

        // The manifest now holds everything the WAL recorded; truncate it.
        // (Replay past the *new* manifest is idempotent, so a crash anywhere
        // between the rename above and this truncation loses nothing.)
        wal::truncate_to(&*self.io, dir, 0)?;

        // Streams are WAL-only state — they have no manifest document — so
        // the live records of every still-open stream are re-appended to the
        // fresh log.  A stream is dropped when the manifest moved to another
        // version of its specification, or when its name already denotes a
        // stored run (a finalisation whose closure marker was lost to a
        // crash between the run-insert append and the marker append).
        let survivors: Vec<wal::WalRecord> = streams
            .into_iter()
            .filter(|((spec, stream), group)| {
                let live_version = group.first().is_some_and(|first| {
                    manifest
                        .specs
                        .iter()
                        .any(|s| s.name == *spec && s.fingerprint == first.spec_fingerprint)
                });
                live_version && self.run(spec, stream).is_none()
            })
            .flat_map(|(_, group)| group.into_iter().map(wal::WalRecord::StreamEvent))
            .collect();
        let stream_bytes =
            if survivors.is_empty() { 0 } else { wal::append(&*self.io, dir, &survivors)? };
        self.wal_stats.bytes.store(stream_bytes, Ordering::Release);
        self.wal_stats.folds_total.fetch_add(1, Ordering::AcqRel);

        // Garbage-collect spec directories the new manifest does not
        // reference (left over from replaced spec versions), plus `.tmp`
        // leftovers of crashed manifest/spec.json writes (the runs/ sweep
        // above covers run documents).  Failures here are ignored: the
        // store is already committed and orphans are inert.
        let sweep_tmp = |d: &Path| {
            if let Ok(entries) = fs::read_dir(d) {
                for entry in entries.flatten() {
                    if entry.file_name().to_string_lossy().ends_with(".tmp") {
                        let _ = self.io.remove_file(&entry.path());
                    }
                }
            }
        };
        sweep_tmp(dir);
        if let Ok(entries) = fs::read_dir(&specs_root) {
            let live: std::collections::BTreeSet<&str> =
                manifest.specs.iter().map(|s| s.dir.as_str()).collect();
            for entry in entries.flatten() {
                if !live.contains(entry.file_name().to_string_lossy().as_ref()) {
                    let _ = self.io.remove_dir_all(&entry.path());
                } else {
                    sweep_tmp(&entry.path());
                }
            }
        }

        Ok(SaveSummary { specs: manifest.specs.len(), runs: total_runs })
    }

    /// Makes one run durable by appending a single checksummed record to the
    /// store directory's write-ahead log — the persistence path of the diff
    /// server's `POST /runs` endpoint.  One append plus one fsync, O(run):
    /// no manifest rewrite, no document rename, no checkpoint rewrite.
    ///
    /// The run must already be stored in (and validated by) this store, and
    /// the directory must hold the **same specification version**: the
    /// manifest entry for `run.spec_name()` must carry the canonical
    /// persistent fingerprint of the stored specification.  A directory
    /// holding a different version (or not holding the specification at
    /// all) is refused with [`PersistError::Format`] — run a full
    /// [`WorkflowStore::save_to_dir`] instead.
    ///
    /// [`WorkflowStore::load_from_dir`] replays the record after the
    /// manifest-committed documents; the next full save folds it into a
    /// regular run document and truncates the log (appends past the
    /// [`WorkflowStore::set_wal_fold_threshold`] trigger that fold
    /// themselves).  Appends take the store's save lock, so they cannot
    /// interleave with an in-flight save from this process.
    pub fn append_run_to_dir(
        &self,
        dir: impl AsRef<Path>,
        run_name: &str,
        run: &wfdiff_sptree::Run,
    ) -> Result<(), PersistError> {
        let _guard = self.save_lock.lock();
        let dir = dir.as_ref();
        let spec = self.spec(run.spec_name()).ok_or_else(|| PersistError::Store {
            source: StoreError::MissingSpec { name: run.spec_name().to_string() },
        })?;
        if spec.fingerprint() != run.spec_fingerprint() {
            return Err(PersistError::Store {
                source: StoreError::SpecVersionMismatch {
                    name: run.spec_name().to_string(),
                    run: run_name.to_string(),
                },
            });
        }

        let fp_hex = self.persistent_fp_for_append(dir, &spec)?;
        let record = wal::WalRecord::RunInsert(wal::RunInsertRecord {
            spec: spec.name().to_string(),
            spec_fingerprint: fp_hex,
            name: run_name.to_string(),
            run: RunDescriptor::from_run(run),
        });
        self.append_wal_locked(dir, &[record])
    }

    /// Checks that `dir` is a current-format store whose manifest lists the
    /// exact version of `spec` this store holds, and returns the canonical
    /// *persistent* fingerprint (hex) the manifest records — the shared
    /// precondition of every hot-path WAL append.  The in-memory → persistent
    /// fingerprint mapping is memoised exactly like `save_to_dir`.  The
    /// caller holds `save_lock`.
    pub(crate) fn persistent_fp_for_append(
        &self,
        dir: &Path,
        spec: &Specification,
    ) -> Result<String, PersistError> {
        let manifest_path = dir.join("manifest.json");
        let manifest: StoreManifest = read_json(&manifest_path)?;
        if manifest.format != STORE_FORMAT {
            return Err(format_err(
                &manifest_path,
                format!(
                    "store format {} is not supported by this build (expected {STORE_FORMAT})",
                    manifest.format
                ),
            ));
        }
        let descriptor = SpecDescriptor::from_specification(spec);
        let cached = self.persist_fp_cache.lock().get(&spec.fingerprint()).copied();
        let fp = match cached {
            Some(fp) => fp,
            None => {
                let (fp, _) = canonical_fingerprint(&manifest_path, &descriptor)?;
                self.persist_fp_cache.lock().insert(spec.fingerprint(), fp);
                fp
            }
        };
        let fp_hex = fp.to_string();
        let entry = manifest.specs.iter().find(|s| s.name == spec.name()).ok_or_else(|| {
            format_err(
                &manifest_path,
                format!(
                    "specification {:?} is not in the store directory; run a full save first",
                    spec.name()
                ),
            )
        })?;
        if entry.fingerprint != fp_hex {
            return Err(format_err(
                &manifest_path,
                format!(
                    "the directory holds specification {:?} at version {}, but the store has \
                     version {fp_hex}; run a full save instead of appending",
                    spec.name(),
                    entry.fingerprint
                ),
            ));
        }
        check_dir_component(&manifest_path, &entry.dir)?;
        Ok(fp_hex)
    }

    /// Makes a batch of stream events durable by appending one kind-5 record
    /// per event to the write-ahead log — the persistence path of the diff
    /// server's `POST /runs/stream` endpoint.  One append plus one fsync for
    /// the whole batch; `base_seq` is the stream's event count before the
    /// batch, so record `i` carries sequence `base_seq + i`.
    ///
    /// In-flight streams are WAL-only state: [`WorkflowStore::load_from_dir`]
    /// counts the records as replayed, and
    /// [`DiffService::load_streams`](crate::service::DiffService::load_streams)
    /// rebuilds the `PartialRun`s from them.  A full save re-appends the
    /// records of still-open streams after truncating the log, so they
    /// survive folds; [`WorkflowStore::append_stream_close_to_dir`] marks a
    /// stream finalised, after which its records are dropped.
    ///
    /// Like [`WorkflowStore::append_run_to_dir`], the directory must hold
    /// the same specification version as this store.
    pub fn append_stream_events_to_dir(
        &self,
        dir: impl AsRef<Path>,
        spec: &str,
        stream: &str,
        base_seq: u64,
        events: &[crate::stream::StreamEvent],
    ) -> Result<(), PersistError> {
        let _guard = self.save_lock.lock();
        let dir = dir.as_ref();
        let spec_arc = self.spec(spec).ok_or_else(|| PersistError::Store {
            source: StoreError::MissingSpec { name: spec.to_string() },
        })?;
        let fp_hex = self.persistent_fp_for_append(dir, &spec_arc)?;
        let records: Vec<wal::WalRecord> = events
            .iter()
            .enumerate()
            .map(|(i, event)| {
                wal::WalRecord::StreamEvent(wal::StreamEventRecord {
                    spec: spec.to_string(),
                    spec_fingerprint: fp_hex.clone(),
                    stream: stream.to_string(),
                    seq: base_seq + i as u64,
                    event: Some(event.clone()),
                })
            })
            .collect();
        self.append_wal_locked(dir, &records)
    }

    /// Appends the closure marker of a finalised stream: a kind-5 record
    /// with no event.  From this marker on, the stream's earlier records are
    /// dead — the finalised run was made durable (as a regular run-insert
    /// record) *before* the marker, so a crash between the two merely leaves
    /// an unclosed stream whose name already denotes a stored run, which
    /// both the fold and [`DiffService::load_streams`] treat as closed.
    ///
    /// [`DiffService::load_streams`]: crate::service::DiffService::load_streams
    pub fn append_stream_close_to_dir(
        &self,
        dir: impl AsRef<Path>,
        spec: &str,
        stream: &str,
        seq: u64,
    ) -> Result<(), PersistError> {
        let _guard = self.save_lock.lock();
        let dir = dir.as_ref();
        let spec_arc = self.spec(spec).ok_or_else(|| PersistError::Store {
            source: StoreError::MissingSpec { name: spec.to_string() },
        })?;
        let fp_hex = self.persistent_fp_for_append(dir, &spec_arc)?;
        let record = wal::WalRecord::StreamEvent(wal::StreamEventRecord {
            spec: spec.to_string(),
            spec_fingerprint: fp_hex,
            stream: stream.to_string(),
            seq,
            event: None,
        });
        self.append_wal_locked(dir, &[record])
    }

    /// Makes one run *removal* durable by appending a record to the
    /// write-ahead log — the mirror of [`WorkflowStore::append_run_to_dir`],
    /// used by the server's `DELETE /runs` path.  Replay removes the run
    /// whether it lives in a manifest-committed document or an earlier WAL
    /// record; removing a run the directory never held is a durable no-op.
    ///
    /// The directory must be a readable store of the current format; a
    /// specification the manifest does not list needs no removal record, so
    /// that case returns `Ok` without appending.
    pub fn append_run_removal_to_dir(
        &self,
        dir: impl AsRef<Path>,
        spec: &str,
        run_name: &str,
    ) -> Result<(), PersistError> {
        let _guard = self.save_lock.lock();
        let dir = dir.as_ref();
        let manifest_path = dir.join("manifest.json");
        let manifest: StoreManifest = read_json(&manifest_path)?;
        if manifest.format != STORE_FORMAT {
            return Err(format_err(
                &manifest_path,
                format!(
                    "store format {} is not supported by this build (expected {STORE_FORMAT})",
                    manifest.format
                ),
            ));
        }
        if !manifest.specs.iter().any(|s| s.name == spec) {
            return Ok(());
        }
        let record = wal::WalRecord::RunRemove(wal::RunRemoveRecord {
            spec: spec.to_string(),
            name: run_name.to_string(),
        });
        self.append_wal_locked(dir, &[record])
    }

    /// Appends pre-built records to `dir`'s WAL under the save lock — the
    /// entry point the cluster checkpoint's delta writer uses.
    pub(crate) fn append_wal_records(
        &self,
        dir: &Path,
        records: &[wal::WalRecord],
    ) -> Result<(), PersistError> {
        let _guard = self.save_lock.lock();
        self.append_wal_locked(dir, records)
    }

    /// Appends records and maintains the counters + fold threshold; the
    /// caller holds `save_lock`.
    fn append_wal_locked(
        &self,
        dir: &Path,
        records: &[wal::WalRecord],
    ) -> Result<(), PersistError> {
        let appended = wal::append(&*self.io, dir, records)?;
        self.wal_stats.appends_total.fetch_add(records.len() as u64, Ordering::AcqRel);
        let bytes = self.wal_stats.bytes.fetch_add(appended, Ordering::AcqRel) + appended;
        let threshold = self.wal_fold_threshold.load(Ordering::Acquire);
        if threshold != 0 && bytes >= threshold {
            // The log has grown past the fold threshold: absorb it into a
            // full checkpoint so replay time stays bounded.
            self.save_to_dir_locked(dir)?;
        }
        Ok(())
    }

    /// Loads a store previously written by [`WorkflowStore::save_to_dir`],
    /// validating every document (see the [module docs](self)); corrupt,
    /// truncated, hand-edited or version-mismatched input returns a
    /// [`PersistError`] instead of panicking or loading garbage.
    ///
    /// After the manifest-committed documents, the directory's write-ahead
    /// log is replayed in append order: a torn tail (a crashed append) is
    /// truncated off first, run inserts and removals are re-applied
    /// idempotently, and records against a specification version the
    /// manifest no longer lists are skipped.  The loaded store keeps the
    /// surviving log — its cluster deltas feed
    /// [`DiffService::load_cluster_state`](crate::service::DiffService::load_cluster_state),
    /// and the next full save folds everything.
    pub fn load_from_dir(dir: impl AsRef<Path>) -> Result<WorkflowStore, PersistError> {
        WorkflowStore::load_from_dir_with_io(dir, Arc::new(crate::storeio::RealIo))
    }

    /// [`WorkflowStore::load_from_dir`] with an explicit
    /// [`StoreIo`] handle: the torn-tail truncation runs through it, and the
    /// returned store keeps it for every later save/append — the loading
    /// half of the crash-torture seam.
    pub fn load_from_dir_with_io(
        dir: impl AsRef<Path>,
        io: Arc<dyn StoreIo>,
    ) -> Result<WorkflowStore, PersistError> {
        let dir = dir.as_ref();
        let manifest_path = dir.join("manifest.json");
        let manifest: StoreManifest = read_json(&manifest_path)?;
        if manifest.format != STORE_FORMAT {
            return Err(format_err(
                &manifest_path,
                format!(
                    "store format {} is not supported by this build (expected {STORE_FORMAT})",
                    manifest.format
                ),
            ));
        }

        let store = WorkflowStore::with_io(io);
        let mut seen_spec_names = std::collections::BTreeSet::new();
        for entry in &manifest.specs {
            check_dir_component(&manifest_path, &entry.dir)?;
            if !seen_spec_names.insert(entry.name.clone()) {
                return Err(format_err(
                    &manifest_path,
                    format!("specification {:?} is listed more than once", entry.name),
                ));
            }
            let spec_dir = dir.join("specs").join(&entry.dir);
            let spec_path = spec_dir.join("spec.json");
            let manifest_fp = parse_fingerprint(&manifest_path, &entry.fingerprint)?;

            let doc: SpecDocument = read_json(&spec_path)?;
            if doc.format != STORE_FORMAT {
                return Err(format_err(
                    &spec_path,
                    format!("document format {} (expected {STORE_FORMAT})", doc.format),
                ));
            }
            let doc_fp = parse_fingerprint(&spec_path, &doc.fingerprint)?;
            if doc_fp != manifest_fp {
                return Err(format_err(
                    &spec_path,
                    format!(
                        "fingerprint {} disagrees with the manifest entry {} — the document \
                         was swapped or the manifest is stale",
                        doc.fingerprint, entry.fingerprint
                    ),
                ));
            }
            let (rebuilt_fp, spec) = canonical_fingerprint(&spec_path, &doc.spec)?;
            if rebuilt_fp != doc_fp {
                return Err(format_err(
                    &spec_path,
                    format!(
                        "specification content rebuilds to fingerprint {rebuilt_fp}, not the \
                         recorded {doc_fp} — the document was corrupted or hand-edited"
                    ),
                ));
            }
            if spec.name() != entry.name {
                return Err(format_err(
                    &spec_path,
                    format!(
                        "specification is named {:?} but the manifest lists it as {:?}",
                        spec.name(),
                        entry.name
                    ),
                ));
            }
            let spec_arc = store.insert_spec(spec)?;

            // Runs: every *.json in runs/ is a self-describing document.  A
            // missing runs directory is a spec with no runs, not an error.
            let runs_dir = spec_dir.join("runs");
            let mut run_files: Vec<PathBuf> = match fs::read_dir(&runs_dir) {
                Ok(entries) => entries
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                    .collect(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(io_err(&runs_dir, "listing", e)),
            };
            run_files.sort();
            let mut seen_run_names = std::collections::BTreeSet::new();
            for run_path in run_files {
                let doc: RunDocument = read_json(&run_path)?;
                if doc.format != STORE_FORMAT {
                    return Err(format_err(
                        &run_path,
                        format!("document format {} (expected {STORE_FORMAT})", doc.format),
                    ));
                }
                let run_fp = parse_fingerprint(&run_path, &doc.spec_fingerprint)?;
                if run_fp != manifest_fp {
                    // The PR-2 spec-version machinery, at the persistence
                    // layer: a run document saved against a different
                    // version of this specification must not sneak in.
                    return Err(format_err(
                        &run_path,
                        format!(
                            "run {:?} was saved against specification version {run_fp}, but \
                             the stored specification is version {manifest_fp}; the run \
                             predates a spec replacement and must be regenerated",
                            doc.name
                        ),
                    ));
                }
                if doc.run.spec != entry.name {
                    return Err(format_err(
                        &run_path,
                        format!(
                            "run {:?} claims specification {:?}, but lives under {:?}",
                            doc.name, doc.run.spec, entry.name
                        ),
                    ));
                }
                if !seen_run_names.insert(doc.name.clone()) {
                    // Two documents claiming one run name would silently
                    // shadow each other (last file wins); refuse instead —
                    // mutually inconsistent documents must fail the load.
                    return Err(format_err(
                        &run_path,
                        format!(
                            "run name {:?} appears in more than one document of this \
                             specification; delete one of the duplicates",
                            doc.name
                        ),
                    ));
                }
                let run = doc
                    .run
                    .to_run(&spec_arc)
                    .map_err(|source| PersistError::Tree { path: run_path.clone(), source })?;
                store.insert_run(&doc.name, run)?;
            }
        }

        // Replay the write-ahead log past the manifest commit point.  A
        // torn tail — the only damage a crashed append can do — is
        // truncated off first; valid records are applied in append order.
        let wal_scan = wal::scan(dir)?;
        if wal_scan.valid_len < wal_scan.total_len {
            wal::truncate_to(&*store.io, dir, wal_scan.valid_len)?;
        }
        let wal_file = wal::wal_path(dir);
        let mut replayed = 0u64;
        for record in &wal_scan.records {
            match record {
                wal::WalRecord::RunInsert(insert) => {
                    // The record carries the persistent fingerprint it was
                    // validated against; a manifest that has since moved to
                    // another spec version (or dropped the spec) makes the
                    // record stale — skipped, exactly like a stale run
                    // document would be pruned by the next save.
                    let entry = manifest.specs.iter().find(|s| {
                        s.name == insert.spec && s.fingerprint == insert.spec_fingerprint
                    });
                    if entry.is_none() {
                        continue;
                    }
                    let spec_arc = store
                        .spec(&insert.spec)
                        .expect("every manifest-listed specification was just loaded");
                    let run = insert
                        .run
                        .to_run(&spec_arc)
                        .map_err(|source| PersistError::Tree { path: wal_file.clone(), source })?;
                    // Replaces any manifest-committed document of the same
                    // name — the WAL is newer by construction.
                    store.insert_run(&insert.name, run)?;
                    replayed += 1;
                }
                wal::WalRecord::RunRemove(remove) => {
                    store.remove_run(&remove.spec, &remove.name);
                    replayed += 1;
                }
                // Consumed by `DiffService::load_cluster_state`, which
                // overlays deltas on the checkpoint file and validates the
                // result against this store.
                wal::WalRecord::ClusterDelta(_) => replayed += 1,
                // Likewise consumed by `DiffService::load_metric_state`.
                wal::WalRecord::MetricDelta(_) => replayed += 1,
                // Consumed by `DiffService::load_streams`, which rebuilds
                // the in-flight `PartialRun`s from these records.
                wal::WalRecord::StreamEvent(_) => replayed += 1,
            }
        }
        store.wal_stats.replayed_records.store(replayed, Ordering::Release);
        store.wal_stats.bytes.store(wal_scan.valid_len, Ordering::Release);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DiffService;
    use crate::storeio::RealIo;
    use std::sync::Arc;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_run3, fig2_specification};

    /// A scratch directory that cleans up after itself.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("wfdiff-persist-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn seeded_store() -> Arc<WorkflowStore> {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        store.insert_run("r3", fig2_run3(&spec)).unwrap();
        store
    }

    #[test]
    fn save_load_roundtrip_preserves_distances() {
        let dir = TempDir::new("roundtrip");
        let store = seeded_store();
        let summary = store.save_to_dir(dir.path()).unwrap();
        assert_eq!(summary, SaveSummary { specs: 1, runs: 3 });

        let loaded = Arc::new(WorkflowStore::load_from_dir(dir.path()).unwrap());
        assert_eq!(loaded.spec_names(), vec!["fig2".to_string()]);
        assert_eq!(loaded.run_count(), 3);

        let before = DiffService::new(Arc::clone(&store)).diff_all_pairs("fig2").unwrap();
        let after = DiffService::new(Arc::clone(&loaded)).diff_all_pairs("fig2").unwrap();
        assert_eq!(before.runs, after.runs);
        assert_eq!(before.matrix, after.matrix, "distances survive persistence exactly");
    }

    #[test]
    fn resave_prunes_removed_runs_and_replaced_specs() {
        let dir = TempDir::new("resave");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();

        store.remove_run("fig2", "r2");
        let summary = store.save_to_dir(dir.path()).unwrap();
        assert_eq!(summary.runs, 2);
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_names("fig2"), vec!["r1".to_string(), "r3".to_string()]);

        // Replace the spec (new fingerprint → new directory); the old spec
        // directory is garbage-collected after the manifest commit.
        let mut b = wfdiff_sptree::SpecificationBuilder::new("fig2");
        b.path(&["1", "2", "6", "7"]);
        store.replace_spec(b.build().unwrap());
        store.save_to_dir(dir.path()).unwrap();
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_count(), 0);
        let dirs: Vec<_> = fs::read_dir(dir.path().join("specs"))
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(dirs.len(), 1, "the replaced spec version's directory was collected");
    }

    #[test]
    fn appended_run_documents_are_picked_up_without_a_manifest_rewrite() {
        let dir = TempDir::new("append");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();

        // Simulate an external appender: write one more run document into
        // the spec's runs directory, touching nothing else.
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        let spec_dir = dir.path().join("specs").join(&manifest.specs[0].dir);
        let spec = store.spec("fig2").unwrap();
        let doc = RunDocument {
            format: STORE_FORMAT,
            name: "appended".to_string(),
            spec_fingerprint: manifest.specs[0].fingerprint.clone(),
            run: RunDescriptor::from_run(&fig2_run1(&spec)),
        };
        write_json_atomic(&RealIo, &spec_dir.join("runs").join("zz-appended.json"), &doc).unwrap();

        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_count(), 4);
        assert!(loaded.run("fig2", "appended").is_some());
    }

    #[test]
    fn corrupt_documents_are_rejected_with_context() {
        let dir = TempDir::new("corrupt");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        let spec_dir = dir.path().join("specs").join(&manifest.specs[0].dir);

        // Truncated spec document → JSON error naming the file.
        let spec_path = spec_dir.join("spec.json");
        let original = fs::read_to_string(&spec_path).unwrap();
        fs::write(&spec_path, &original[..original.len() / 2]).unwrap();
        let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
        assert!(matches!(err, PersistError::Json { .. }), "got {err}");
        assert!(err.to_string().contains("spec.json"));
        fs::write(&spec_path, &original).unwrap();

        // Hand-edited spec content → fingerprint mismatch.
        fs::write(&spec_path, original.replace("\"1\"", "\"1x\"")).unwrap();
        let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }), "got {err}");
        assert!(err.to_string().contains("fingerprint"));
        fs::write(&spec_path, &original).unwrap();

        // Out-of-range node index in a run document → SpTreeError with the
        // file attached, not a panic.
        let run_path = fs::read_dir(spec_dir.join("runs"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .unwrap();
        let run_text = fs::read_to_string(&run_path).unwrap();
        let mut doc: RunDocument = serde_json::from_str(&run_text).unwrap();
        doc.run.edges.push((9999, 0));
        fs::write(&run_path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
        let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
        assert!(matches!(err, PersistError::Tree { .. }), "got {err}");
        fs::write(&run_path, &run_text).unwrap();

        // Stale run from another spec version → version mismatch.
        let mut doc: RunDocument = serde_json::from_str(&run_text).unwrap();
        doc.spec_fingerprint = format!("{:032x}", 0xdead_beefu128);
        fs::write(&run_path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
        let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
        assert!(err.to_string().contains("spec replacement"), "got {err}");
        fs::write(&run_path, &run_text).unwrap();

        // The repaired directory loads again.
        assert_eq!(WorkflowStore::load_from_dir(dir.path()).unwrap().run_count(), 3);
    }

    #[test]
    fn unsupported_versions_and_unsafe_dirs_are_rejected() {
        let dir = TempDir::new("versions");
        seeded_store().save_to_dir(dir.path()).unwrap();
        let manifest_path = dir.path().join("manifest.json");
        let original = fs::read_to_string(&manifest_path).unwrap();

        fs::write(&manifest_path, original.replace("\"format\": 1", "\"format\": 99")).unwrap();
        let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
        assert!(err.to_string().contains("format 99"));
        // Saving over a store of another format is refused too: the save's
        // garbage-collection would destroy data this build cannot load.
        let err = seeded_store().save_to_dir(dir.path()).unwrap_err();
        assert!(err.to_string().contains("refusing to overwrite"), "got {err}");

        // A manifest smuggling a path-traversal directory entry is refused
        // — including Windows drive-relative prefixes.
        for evil in ["../outside", "C:evil", "a/b", "a\\b", ""] {
            let mut manifest: StoreManifest = serde_json::from_str(&original).unwrap();
            manifest.specs[0].dir = evil.to_string();
            fs::write(&manifest_path, serde_json::to_string_pretty(&manifest).unwrap()).unwrap();
            let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
            assert!(err.to_string().contains("plain directory name"), "{evil:?}: got {err}");
        }

        // Missing manifest: not a store directory.
        fs::remove_file(&manifest_path).unwrap();
        assert!(matches!(WorkflowStore::load_from_dir(dir.path()), Err(PersistError::Io { .. })));
    }

    #[test]
    fn run_file_names_are_stable_across_resaves() {
        // File names must be a function of the run name alone: if removing
        // a run shifted the other runs' documents to different file names,
        // a crash between the rewrite and the prune would leave two
        // documents with one run name and the store would refuse to load.
        let dir = TempDir::new("stable-names");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        let runs_dir = dir.path().join("specs").join(&manifest.specs[0].dir).join("runs");
        let files = |dir: &Path| -> std::collections::BTreeSet<String> {
            fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect()
        };
        let before = files(&runs_dir);
        assert_eq!(before.len(), 3);

        store.remove_run("fig2", "r2");
        store.save_to_dir(dir.path()).unwrap();
        let after = files(&runs_dir);
        assert_eq!(after.len(), 2);
        assert!(after.is_subset(&before), "surviving runs kept their file names: {after:?}");
    }

    #[test]
    fn crashed_tmp_files_are_swept_by_the_next_save() {
        let dir = TempDir::new("tmp-sweep");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        let runs_dir = dir.path().join("specs").join(&manifest.specs[0].dir).join("runs");
        // A write that crashed between create and rename leaves a .tmp file.
        let orphan = runs_dir.join("gone-00000000.json.tmp");
        fs::write(&orphan, "{").unwrap();
        store.save_to_dir(dir.path()).unwrap();
        assert!(!orphan.exists(), "stale tmp files are swept");
        assert_eq!(WorkflowStore::load_from_dir(dir.path()).unwrap().run_count(), 3);
    }

    #[test]
    fn duplicate_run_documents_fail_the_load() {
        let dir = TempDir::new("dup-run");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        let spec_dir = dir.path().join("specs").join(&manifest.specs[0].dir);
        // An appended document reusing the name "r1" must not silently
        // shadow the original r1 (its file sorts last and would win).
        let spec = store.spec("fig2").unwrap();
        let doc = RunDocument {
            format: STORE_FORMAT,
            name: "r1".to_string(),
            spec_fingerprint: manifest.specs[0].fingerprint.clone(),
            run: RunDescriptor::from_run(&fig2_run2(&spec)),
        };
        write_json_atomic(&RealIo, &spec_dir.join("runs").join("zz-dup.json"), &doc).unwrap();
        let err = WorkflowStore::load_from_dir(dir.path()).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }), "got {err}");
        assert!(err.to_string().contains("more than one document"), "got {err}");
    }

    #[test]
    fn save_never_overwrites_a_directory_owned_by_another_spec() {
        // "pipeline v1" and "pipeline_v1" share a slug; give them the same
        // structure so they also share a fingerprint — and therefore compete
        // for the same directory name.
        let dir = TempDir::new("dir-owner");
        let build = |name: &str| {
            let mut b = wfdiff_sptree::SpecificationBuilder::new(name);
            b.path(&["a", "b", "c"]);
            b.build().unwrap()
        };
        let store = WorkflowStore::new();
        store.insert_spec(build("pipeline v1")).unwrap();
        store.insert_spec(build("pipeline_v1")).unwrap();
        store.save_to_dir(dir.path()).unwrap();
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        let dir_of = |m: &StoreManifest, name: &str| {
            m.specs.iter().find(|s| s.name == name).unwrap().dir.clone()
        };
        let kept_dir = dir_of(&manifest, "pipeline_v1");
        assert_ne!(kept_dir, dir_of(&manifest, "pipeline v1"));

        // Removing the first claimant must not let the survivor migrate
        // into (and overwrite) the first one's still-committed directory.
        store.remove_spec("pipeline v1");
        store.save_to_dir(dir.path()).unwrap();
        let manifest: StoreManifest = read_json(&dir.path().join("manifest.json")).unwrap();
        assert_eq!(dir_of(&manifest, "pipeline_v1"), kept_dir);
        assert_eq!(WorkflowStore::load_from_dir(dir.path()).unwrap().spec_names().len(), 1);
    }

    #[test]
    fn appended_runs_survive_a_reload_and_a_resave() {
        let dir = TempDir::new("append-api");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();

        // Append through the public API (the server's POST /runs path):
        // one WAL record, no manifest rewrite.
        let manifest_before = fs::read(dir.path().join("manifest.json")).unwrap();
        let spec = store.spec("fig2").unwrap();
        let run = store.insert_run("r4", fig2_run1(&spec)).unwrap();
        store.append_run_to_dir(dir.path(), "r4", &run).unwrap();
        assert_eq!(fs::read(dir.path().join("manifest.json")).unwrap(), manifest_before);
        assert_eq!(crate::wal::inspect(dir.path()).unwrap().run_inserts, 1);

        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_count(), 4);
        assert!(loaded.run("fig2", "r4").is_some());
        assert_eq!(loaded.wal_stats().replayed_records, 1);

        // A later full save folds the log: the run becomes a regular
        // document and the WAL resets to empty.
        store.save_to_dir(dir.path()).unwrap();
        assert_eq!(crate::wal::inspect(dir.path()).unwrap().records, 0);
        assert_eq!(store.wal_stats().bytes, 0);
        assert_eq!(WorkflowStore::load_from_dir(dir.path()).unwrap().run_count(), 4);

        // Re-appending the same run name replaces it at replay time.
        store.append_run_to_dir(dir.path(), "r4", &run).unwrap();
        store.append_run_to_dir(dir.path(), "r4", &run).unwrap();
        assert_eq!(WorkflowStore::load_from_dir(dir.path()).unwrap().run_count(), 4);
    }

    #[test]
    fn removals_and_torn_tails_replay_correctly() {
        let dir = TempDir::new("wal-remove");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        store.remove_run("fig2", "r2");
        store.append_run_removal_to_dir(dir.path(), "fig2", "r2").unwrap();
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_names("fig2"), vec!["r1".to_string(), "r3".to_string()]);

        // A torn tail (half-written record) is truncated on load and the
        // valid prefix still replays.
        use std::io::Write as _;
        let wal_file = dir.path().join(crate::wal::WAL_FILE);
        let mut f = fs::OpenOptions::new().append(true).open(&wal_file).unwrap();
        f.write_all(&[0x55; 13]).unwrap();
        drop(f);
        assert_eq!(crate::wal::inspect(dir.path()).unwrap().torn_bytes, 13);
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_names("fig2"), vec!["r1".to_string(), "r3".to_string()]);
        assert_eq!(
            crate::wal::inspect(dir.path()).unwrap().torn_bytes,
            0,
            "load repaired the file"
        );

        // Removing a run the directory never held is a durable no-op, and a
        // spec the manifest does not list appends nothing at all.
        store.append_run_removal_to_dir(dir.path(), "fig2", "ghost").unwrap();
        let before = fs::metadata(&wal_file).unwrap().len();
        store.append_run_removal_to_dir(dir.path(), "no-such-spec", "r1").unwrap();
        assert_eq!(fs::metadata(&wal_file).unwrap().len(), before);
        assert_eq!(WorkflowStore::load_from_dir(dir.path()).unwrap().run_count(), 2);
    }

    #[test]
    fn threshold_folds_absorb_the_wal_into_a_checkpoint() {
        let dir = TempDir::new("wal-threshold");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        store.set_wal_fold_threshold(1); // every append folds immediately
        let spec = store.spec("fig2").unwrap();
        let run = store.insert_run("r4", fig2_run1(&spec)).unwrap();
        store.append_run_to_dir(dir.path(), "r4", &run).unwrap();
        assert_eq!(crate::wal::inspect(dir.path()).unwrap().records, 0, "append folded");
        assert_eq!(store.wal_stats().bytes, 0);
        assert!(store.wal_stats().folds_total >= 2);
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_count(), 4);
        assert_eq!(loaded.wal_stats().replayed_records, 0);
    }

    #[test]
    fn stale_wal_records_from_a_replaced_spec_are_skipped() {
        let dir = TempDir::new("wal-stale");
        let store = seeded_store();
        store.save_to_dir(dir.path()).unwrap();
        let spec = store.spec("fig2").unwrap();
        let run = store.insert_run("r4", fig2_run1(&spec)).unwrap();
        store.append_run_to_dir(dir.path(), "r4", &run).unwrap();

        // Simulate the crash window after a spec replacement's manifest
        // commit but before the WAL truncation: the old record survives in
        // the log while the manifest lists a different fingerprint.
        let wal_bytes = fs::read(dir.path().join(crate::wal::WAL_FILE)).unwrap();
        let mut b = wfdiff_sptree::SpecificationBuilder::new("fig2");
        b.path(&["1", "2", "6", "7"]);
        store.replace_spec(b.build().unwrap());
        store.save_to_dir(dir.path()).unwrap();
        fs::write(dir.path().join(crate::wal::WAL_FILE), &wal_bytes).unwrap();

        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.run_count(), 0, "records against the old spec version are skipped");
    }

    #[test]
    fn appends_into_foreign_or_stale_directories_are_refused() {
        let dir = TempDir::new("append-refuse");
        let store = seeded_store();
        let spec = store.spec("fig2").unwrap();
        let run = store.insert_run("r4", fig2_run1(&spec)).unwrap();

        // No manifest at all: not a store directory.
        let err = store.append_run_to_dir(dir.path(), "r4", &run).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }), "got {err}");

        // A directory holding a *different* version of the spec.
        let other = Arc::new(WorkflowStore::new());
        let mut b = wfdiff_sptree::SpecificationBuilder::new("fig2");
        b.path(&["1", "2", "6", "7"]);
        other.insert_spec(b.build().unwrap()).unwrap();
        other.save_to_dir(dir.path()).unwrap();
        let err = store.append_run_to_dir(dir.path(), "r4", &run).unwrap_err();
        assert!(err.to_string().contains("full save"), "got {err}");

        // A directory without the specification.
        let empty_dir = TempDir::new("append-empty");
        Arc::new(WorkflowStore::new()).save_to_dir(empty_dir.path()).unwrap();
        let err = store.append_run_to_dir(empty_dir.path(), "r4", &run).unwrap_err();
        assert!(err.to_string().contains("not in the store directory"), "got {err}");

        // A run whose spec is not in the *store* any more.
        store.remove_spec("fig2");
        let err = store.append_run_to_dir(dir.path(), "r4", &run).unwrap_err();
        assert!(matches!(err, PersistError::Store { .. }), "got {err}");
    }

    #[test]
    fn empty_store_roundtrips() {
        let dir = TempDir::new("empty");
        let store = WorkflowStore::new();
        assert_eq!(store.save_to_dir(dir.path()).unwrap(), SaveSummary { specs: 0, runs: 0 });
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert!(loaded.spec_names().is_empty());
    }

    #[test]
    fn slugs_tame_hostile_names() {
        let dir = TempDir::new("slugs");
        let store = WorkflowStore::new();
        let mut b = wfdiff_sptree::SpecificationBuilder::new("../we ird/√name");
        b.path(&["a", "b"]);
        let spec = store.insert_spec(b.build().unwrap()).unwrap();
        store
            .insert_run("run/with/slashes", spec.execute(&mut wfdiff_sptree::FullDecider).unwrap())
            .unwrap();
        store.save_to_dir(dir.path()).unwrap();
        let loaded = WorkflowStore::load_from_dir(dir.path()).unwrap();
        assert_eq!(loaded.spec_names(), vec!["../we ird/√name".to_string()]);
        assert!(loaded.run("../we ird/√name", "run/with/slashes").is_some());
    }
}
