//! Runtime lock-rank guard for the store's locks — the dynamic counterpart
//! of the static `WFL002` lock-order rule in `wfdiff-lint`.
//!
//! Every [`WorkflowStore`](crate::store::WorkflowStore) lock carries a
//! [`LockRank`]; a thread may only acquire a lock whose rank is strictly
//! greater than every rank it already holds:
//!
//! ```text
//! save_lock (0)  →  specs (1)  →  runs (2)  →  persist_fp_cache (3)  →  streams (4)
//! ```
//!
//! Under `debug_assertions` (every `cargo test` run, including the store's
//! concurrency tests) each thread keeps a thread-local stack of held ranks
//! and **panics** on an out-of-order acquisition — turning a potential
//! ABBA deadlock, which a test would only hit under an unlucky interleaving,
//! into a deterministic failure on *any* interleaving that reaches the
//! second acquisition.  In release builds the bookkeeping compiles to
//! nothing and the wrappers are zero-cost passthroughs to the underlying
//! `parking_lot` primitives.
//!
//! The wrappers expose the same call syntax as the raw locks (`.read()`,
//! `.write()`, `.lock()`) and return RAII guards that deref to the data, so
//! call sites are unchanged; guards pop their rank when dropped.

use std::ops::{Deref, DerefMut};

/// The acquisition order of the store's locks, lowest first.  The variant
/// order must match the discipline documented on
/// [`WorkflowStore`](crate::store::WorkflowStore)'s fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum LockRank {
    /// `save_lock` — serialises whole saves; taken first, never under any
    /// other store lock.
    Save = 0,
    /// `specs` — the specification map.
    Specs = 1,
    /// `runs` — the run map; always after `specs` when both are held.
    Runs = 2,
    /// `persist_fp_cache` — the fingerprint memo; innermost of the store's
    /// own locks.
    FpCache = 3,
    /// `streams` — the in-flight stream registry owned by
    /// [`DiffService`](crate::service::DiffService); innermost overall.
    /// Being last enforces the stream discipline: state is cloned *out*
    /// under this lock, mutated and persisted with no lock held, and
    /// committed back in — holding it across a store or WAL call panics.
    Streams = 4,
}

impl LockRank {
    #[cfg(debug_assertions)]
    fn name(self) -> &'static str {
        match self {
            LockRank::Save => "save_lock",
            LockRank::Specs => "specs",
            LockRank::Runs => "runs",
            LockRank::FpCache => "persist_fp_cache",
            LockRank::Streams => "streams",
        }
    }
}

#[cfg(debug_assertions)]
mod held {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static STACK: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: LockRank) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(&worst) = stack.iter().max() {
                assert!(
                    worst < rank,
                    "lock-rank violation: acquiring `{}` (rank {}) while `{}` (rank {}) is \
                     held; the store's order is save_lock → specs → runs → persist_fp_cache \
                     (see store.rs and WFL002)",
                    rank.name(),
                    rank as u8,
                    worst.name(),
                    worst as u8,
                );
            }
            stack.push(rank);
        });
    }

    pub(super) fn release(rank: LockRank) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&r| r == rank) {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(debug_assertions)]
fn acquire(rank: LockRank) {
    held::acquire(rank);
}

#[cfg(not(debug_assertions))]
fn acquire(_rank: LockRank) {}

#[cfg(debug_assertions)]
fn release(rank: LockRank) {
    held::release(rank);
}

#[cfg(not(debug_assertions))]
fn release(_rank: LockRank) {}

/// RAII record of one acquisition; popping happens on drop.
struct Token {
    rank: LockRank,
}

impl Token {
    /// Checks the rank against the thread's held stack (panicking on a
    /// violation under `debug_assertions`) and records the acquisition.
    fn new(rank: LockRank) -> Token {
        acquire(rank);
        Token { rank }
    }
}

impl Drop for Token {
    fn drop(&mut self) {
        release(self.rank);
    }
}

/// A guard pairing the underlying lock guard with its rank token.  Derefs
/// to the protected data.  Field order matters: the real guard unlocks
/// first, then the token pops the rank.
pub(crate) struct RankedGuard<G> {
    inner: G,
    _token: Token,
}

impl<G: Deref> Deref for RankedGuard<G> {
    type Target = G::Target;

    fn deref(&self) -> &G::Target {
        &self.inner
    }
}

impl<G: DerefMut> DerefMut for RankedGuard<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.inner
    }
}

/// A reader-writer lock with a fixed [`LockRank`].
#[derive(Debug)]
pub(crate) struct RankedRwLock<T> {
    rank: LockRank,
    inner: parking_lot::RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Creates the lock at `rank` around `value`.
    pub(crate) fn new(rank: LockRank, value: T) -> Self {
        RankedRwLock { rank, inner: parking_lot::RwLock::new(value) }
    }

    /// Acquires a shared read lock, rank-checked.
    pub(crate) fn read(&self) -> RankedGuard<impl Deref<Target = T> + '_> {
        let token = Token::new(self.rank);
        RankedGuard { inner: self.inner.read(), _token: token }
    }

    /// Acquires an exclusive write lock, rank-checked.
    pub(crate) fn write(&self) -> RankedGuard<impl DerefMut<Target = T> + '_> {
        let token = Token::new(self.rank);
        RankedGuard { inner: self.inner.write(), _token: token }
    }
}

/// A mutex with a fixed [`LockRank`].
#[derive(Debug)]
pub(crate) struct RankedMutex<T> {
    rank: LockRank,
    inner: parking_lot::Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Creates the mutex at `rank` around `value`.
    pub(crate) fn new(rank: LockRank, value: T) -> Self {
        RankedMutex { rank, inner: parking_lot::Mutex::new(value) }
    }

    /// Acquires the mutex, rank-checked.
    pub(crate) fn lock(&self) -> RankedGuard<impl DerefMut<Target = T> + '_> {
        let token = Token::new(self.rank);
        RankedGuard { inner: self.inner.lock(), _token: token }
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(result: std::thread::Result<()>) -> String {
        match result {
            Ok(()) => String::new(),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default(),
        }
    }

    /// Runs `f` with the default panic hook silenced, so an *expected*
    /// panic does not spray a backtrace into the test output.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn in_order_acquisition_passes() {
        let save = RankedMutex::new(LockRank::Save, ());
        let specs = RankedRwLock::new(LockRank::Specs, 1u32);
        let runs = RankedRwLock::new(LockRank::Runs, 2u32);
        let cache = RankedMutex::new(LockRank::FpCache, 3u32);
        let _g0 = save.lock();
        let g1 = specs.read();
        let mut g2 = runs.write();
        let g3 = cache.lock();
        assert_eq!((*g1, *g2, *g3), (1, 2, 3));
        *g2 += 1;
    }

    #[test]
    fn reacquisition_after_drop_passes() {
        let runs = RankedRwLock::new(LockRank::Runs, ());
        let specs = RankedRwLock::new(LockRank::Specs, ());
        drop(runs.read());
        // `runs` was released, so taking `specs` now is in order.
        let _s = specs.read();
        drop(_s);
        let _r = runs.read();
    }

    #[test]
    fn out_of_order_acquisition_panics_with_a_named_violation() {
        let specs = RankedRwLock::new(LockRank::Specs, ());
        let runs = RankedRwLock::new(LockRank::Runs, ());
        let result = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                let _r = runs.read();
                let _s = specs.read(); // rank 1 under rank 2: must panic
            }))
        });
        let msg = panic_message(result);
        assert!(msg.contains("lock-rank violation"), "unexpected panic message: {msg:?}");
        assert!(msg.contains("`specs`") && msg.contains("`runs`"), "names the locks: {msg:?}");
    }

    #[test]
    fn save_lock_under_a_data_guard_panics() {
        let save = RankedMutex::new(LockRank::Save, ());
        let specs = RankedRwLock::new(LockRank::Specs, ());
        let result = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                let _s = specs.read();
                let _g = save.lock(); // save_lock is taken first or not at all
            }))
        });
        assert!(panic_message(result).contains("lock-rank violation"));
    }

    #[test]
    fn ranks_are_tracked_per_thread() {
        // One thread holding `runs` must not poison another thread's
        // ordering: the stack is thread-local.
        let runs = std::sync::Arc::new(RankedRwLock::new(LockRank::Runs, ()));
        let specs = std::sync::Arc::new(RankedRwLock::new(LockRank::Specs, ()));
        let _r = runs.read();
        let (specs2, runs2) = (std::sync::Arc::clone(&specs), std::sync::Arc::clone(&runs));
        std::thread::spawn(move || {
            let _s = specs2.read();
            let _r = runs2.read();
        })
        .join()
        .expect("the other thread acquires in order and must not panic");
    }
}
