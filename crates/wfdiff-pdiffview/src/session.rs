//! Differencing sessions: compute a diff once, then step through its edit
//! script the way the PDiffView GUI steps through operations.
//!
//! Sessions own shared handles ([`Arc`]) to their specification and runs, so
//! they can be created directly from borrowed values
//! ([`DiffSession::new`] clones) or — the cheap path — from the store-backed
//! handles a [`crate::service::DiffService`] already holds
//! ([`DiffSession::from_arcs`]), optionally sharing a
//! [`DiffCache`] with the rest of the service.

use std::sync::Arc;
use wfdiff_core::script::diff_with_script_prepared;
use wfdiff_core::{
    CostModel, DiffCache, DiffError, DiffResult, EditScript, MappingSummary, PathOperation,
    WorkflowDiff,
};
use wfdiff_sptree::{Run, Specification};

/// A differencing session between two runs of the same specification.
pub struct DiffSession {
    spec: Arc<Specification>,
    source: Arc<Run>,
    target: Arc<Run>,
    result: DiffResult,
    script: EditScript,
    cursor: usize,
}

impl DiffSession {
    /// Computes the diff and edit script for the pair of runs.
    ///
    /// The specification and runs are cloned into shared handles; when they
    /// are already behind [`Arc`]s (e.g. coming out of a
    /// [`crate::WorkflowStore`]) prefer [`DiffSession::from_arcs`].
    pub fn new(
        spec: &Specification,
        cost: &dyn CostModel,
        source: &Run,
        target: &Run,
    ) -> Result<Self, DiffError> {
        DiffSession::from_arcs(
            Arc::new(spec.clone()),
            cost,
            Arc::new(source.clone()),
            Arc::new(target.clone()),
            None,
        )
    }

    /// Computes the diff and edit script from shared handles, optionally
    /// reusing (and warming) a shared diff cache.
    pub fn from_arcs(
        spec: Arc<Specification>,
        cost: &dyn CostModel,
        source: Arc<Run>,
        target: Arc<Run>,
        cache: Option<&dyn DiffCache>,
    ) -> Result<Self, DiffError> {
        let engine = WorkflowDiff::new(&spec, cost);
        let p1 = engine.prepare(&source, cache)?;
        let p2 = engine.prepare(&target, cache)?;
        let (result, script) = diff_with_script_prepared(&engine, &p1, &p2, cache)?;
        drop((p1, p2));
        Ok(DiffSession { spec, source, target, result, script, cursor: 0 })
    }

    /// The specification both runs belong to.
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// The source run (`R1`).
    pub fn source(&self) -> &Run {
        &self.source
    }

    /// The target run (`R2`).
    pub fn target(&self) -> &Run {
        &self.target
    }

    /// The edit distance.
    pub fn distance(&self) -> f64 {
        self.result.distance
    }

    /// The full diff result (mapping and decisions).
    pub fn result(&self) -> &DiffResult {
        &self.result
    }

    /// The edit script.
    pub fn script(&self) -> &EditScript {
        &self.script
    }

    /// Summary statistics of the mapping (matched/deleted/inserted leaves).
    pub fn summary(&self) -> MappingSummary {
        self.result.mapping.summary(self.source.tree(), self.target.tree())
    }

    /// Number of operations in the script.
    pub fn total_steps(&self) -> usize {
        self.script.len()
    }

    /// The index of the next operation to apply (0-based).
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// `true` once every operation has been stepped through.
    pub fn is_finished(&self) -> bool {
        self.cursor >= self.script.len()
    }

    /// Advances to the next operation and returns it, or `None` at the end.
    pub fn step(&mut self) -> Option<&PathOperation> {
        if self.cursor >= self.script.len() {
            return None;
        }
        let op = &self.script.ops[self.cursor];
        self.cursor += 1;
        Some(op)
    }

    /// Steps back to the previous operation and returns it.
    pub fn step_back(&mut self) -> Option<&PathOperation> {
        if self.cursor == 0 {
            return None;
        }
        self.cursor -= 1;
        Some(&self.script.ops[self.cursor])
    }

    /// Resets the cursor to the beginning of the script.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// The operations applied so far.
    pub fn applied(&self) -> &[PathOperation] {
        &self.script.ops[..self.cursor]
    }

    /// The operations still to apply.
    pub fn remaining(&self) -> &[PathOperation] {
        &self.script.ops[self.cursor..]
    }

    /// A one-paragraph overview of the session, mirroring the statistics pane
    /// of the prototype.
    pub fn overview(&self) -> String {
        let s = self.summary();
        format!(
            "spec {spec}: source run {sn} nodes / {se} edges, target run {tn} nodes / {te} edges; \
             distance {d} with {ops} operations ({ins} insertions, {del} deletions); \
             {kept} leaf edges matched, {dl} deleted, {il} inserted",
            spec = self.spec.name(),
            sn = self.source.node_count(),
            se = self.source.edge_count(),
            tn = self.target.node_count(),
            te = self.target.edge_count(),
            d = self.distance(),
            ops = self.script.len(),
            ins = self.script.insertions(),
            del = self.script.deletions(),
            kept = s.mapped_leaves,
            dl = s.deleted_leaves,
            il = s.inserted_leaves,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_core::UnitCost;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn session_steps_through_all_operations() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let mut session = DiffSession::new(&spec, &UnitCost, &r1, &r2).unwrap();
        assert_eq!(session.distance(), 4.0);
        assert_eq!(session.total_steps(), 4);
        let mut seen = 0;
        while let Some(op) = session.step() {
            assert!(op.cost > 0.0);
            seen += 1;
        }
        assert_eq!(seen, 4);
        assert!(session.is_finished());
        assert!(session.step().is_none());
        assert_eq!(session.applied().len(), 4);
        assert!(session.remaining().is_empty());
        // Step back and forward again.
        assert!(session.step_back().is_some());
        assert_eq!(session.position(), 3);
        session.reset();
        assert_eq!(session.position(), 0);
    }

    #[test]
    fn overview_mentions_the_key_numbers() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let session = DiffSession::new(&spec, &UnitCost, &r1, &r2).unwrap();
        let text = session.overview();
        assert!(text.contains("fig2"));
        assert!(text.contains("distance 4"));
        assert!(text.contains("8 edges"));
        assert!(text.contains("14 edges"));
    }

    #[test]
    fn identical_runs_have_an_empty_session() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r1b = fig2_run1(&spec);
        let mut session = DiffSession::new(&spec, &UnitCost, &r1, &r1b).unwrap();
        assert_eq!(session.distance(), 0.0);
        assert!(session.is_finished() || session.step().is_none());
        let s = session.summary();
        assert_eq!(s.deleted_leaves + s.inserted_leaves, 0);
    }
}
