//! The batch diff engine: a [`DiffService`] wraps a [`WorkflowStore`] and a
//! shared fingerprint-keyed [`DiffCache`], and differences run pairs singly
//! (`diff`), in explicit batches (`diff_batch`) or all-pairs
//! (`diff_all_pairs`) across a scoped worker pool of plain `std` threads.
//!
//! The all-pairs workload is the paper's clustering scenario: PDiffView
//! browses whole collections of runs of one specification, which needs the
//! full distance matrix.  Three levers make that fast here:
//!
//! 1. every run is **prepared once per batch** (fingerprints + Algorithm 3
//!    tables, the latter shared across runs through the cache),
//! 2. subtree-pair DP values are **memoised across pairs and across calls**
//!    by canonical fingerprint, so a warm cache answers repeated or
//!    overlapping queries at the root, and
//! 3. independent pairs are **differenced in parallel** on `threads` workers
//!    pulling from an atomic work queue.
//!
//! Distances are bit-identical to the unmemoised [`WorkflowDiff`] path — the
//! cache only short-circuits subproblems that are provably equal.

use crate::cluster::incremental::{ClusterSnapshot, DistanceOracle, IncrementalClusterIndex};
use crate::cluster::persist::{
    load as load_cluster_cache, save_wal as save_cluster_cache, ClusterCacheReport,
};
use crate::lockrank::{LockRank, RankedRwLock};
use crate::metricindex::persist::{load as load_metric_cache, save_wal as save_metric_cache};
use crate::metricindex::{
    IncrementalMetricIndex, MedoidPivots, MetricIndexReport, PruneStats, DEFAULT_METRIC_SEED,
};
use crate::persist::PersistError;
use crate::session::DiffSession;
use crate::store::WorkflowStore;
use crate::stream::{PartialRun, StreamError, StreamEvent};
use crate::wal;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wfdiff_core::{
    CacheStats, CostModel, DiffCache, DiffError, PreparedRun, ShardedDiffCache, UnitCost,
    WorkflowDiff,
};
use wfdiff_sptree::{Run, Specification};

/// Errors raised by the batch diff service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The named specification is not in the store.
    UnknownSpec(String),
    /// The named run is not stored for the specification.
    UnknownRun {
        /// The specification name.
        spec: String,
        /// The missing run name.
        run: String,
    },
    /// A query parameter was structurally invalid (e.g. a cluster count of
    /// zero); the message names the offending parameter.
    InvalidQuery(String),
    /// The underlying differencing failed.
    Diff(DiffError),
    /// A stream event (or a stream finalisation) was rejected by the
    /// [`PartialRun`] builder; [`StreamError::is_conflict`] separates state
    /// conflicts (409) from structurally invalid events (400).
    Stream(StreamError),
    /// The named in-flight stream does not exist.
    UnknownStream {
        /// The specification name.
        spec: String,
        /// The missing stream name.
        stream: String,
    },
    /// Two event batches raced on the same stream: the stream advanced
    /// between this batch's validation and its commit.  The batch was not
    /// applied; the client should refetch the stream position and retry.
    StreamRace {
        /// The specification name.
        spec: String,
        /// The contended stream name.
        stream: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSpec(name) => write!(f, "unknown specification {name:?}"),
            ServiceError::UnknownRun { spec, run } => {
                write!(f, "unknown run {run:?} for specification {spec:?}")
            }
            ServiceError::InvalidQuery(message) => write!(f, "invalid query: {message}"),
            ServiceError::Diff(e) => write!(f, "diff failed: {e}"),
            ServiceError::Stream(e) => write!(f, "stream event rejected: {e}"),
            ServiceError::UnknownStream { spec, stream } => {
                write!(f, "unknown stream {stream:?} for specification {spec:?}")
            }
            ServiceError::StreamRace { spec, stream } => {
                write!(f, "concurrent writers raced on stream {stream:?} of {spec:?}; retry")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Diff(e) => Some(e),
            ServiceError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiffError> for ServiceError {
    fn from(value: DiffError) -> Self {
        ServiceError::Diff(value)
    }
}

impl From<StreamError> for ServiceError {
    fn from(value: StreamError) -> Self {
        ServiceError::Stream(value)
    }
}

/// What a [`DiffService::warm_start`] pass prepared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStartReport {
    /// Number of specifications whose runs were prepared.
    pub specs: usize,
    /// Number of runs replayed through `prepare`.
    pub runs: usize,
}

/// One distance of a batch request.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDistance {
    /// Source run name.
    pub source: String,
    /// Target run name.
    pub target: String,
    /// The edit distance.
    pub distance: f64,
}

/// The full distance matrix of a specification's stored runs.
#[derive(Debug, Clone, PartialEq)]
pub struct AllPairsResult {
    /// Run names in matrix order (the store's sorted order).
    pub runs: Vec<String>,
    /// Symmetric distance matrix; `matrix[i][j]` is the edit distance between
    /// `runs[i]` and `runs[j]` (diagonal is zero).
    pub matrix: Vec<Vec<f64>>,
}

impl AllPairsResult {
    /// The distance between two named runs, if both are in the matrix.
    pub fn distance(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.runs.iter().position(|r| r == a)?;
        let j = self.runs.iter().position(|r| r == b)?;
        Some(self.matrix[i][j])
    }

    /// Iterates over the strict upper triangle as (source, target, distance).
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str, f64)> + '_ {
        self.runs.iter().enumerate().flat_map(move |(i, a)| {
            self.runs[i + 1..]
                .iter()
                .enumerate()
                .map(move |(k, b)| (a.as_str(), b.as_str(), self.matrix[i][i + 1 + k]))
        })
    }
}

/// Acknowledgement of one accepted event batch on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAck {
    /// The stream's event count before the batch (the sequence number the
    /// batch was validated against, and the `base_seq` its WAL records
    /// carry).
    pub base_seq: u64,
    /// The stream's event count after the batch.
    pub seq: u64,
    /// Node instances declared so far.
    pub nodes: usize,
    /// Completed leaves in the live prefix profile.
    pub completed_leaves: u64,
    /// `true` once every declared instance has completed — the stream may
    /// finalize.
    pub complete: bool,
}

/// The result of [`DiffService::stream_events`]: the acknowledgement plus
/// the undo state [`DiffService::undo_stream_batch`] needs if making the
/// batch durable fails.
#[derive(Debug, Clone)]
pub struct StreamBatchOutcome {
    /// The acknowledgement of the committed batch.
    pub ack: StreamAck,
    /// The stream's builder before the batch (`None` when the batch opened
    /// the stream).
    prior: Option<PartialRun>,
}

/// One cluster's verdict inside a [`DriftReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftClusterStatus {
    /// The cluster's medoid run.
    pub medoid: String,
    /// Member count (including the medoid).
    pub size: usize,
    /// The cluster radius: the largest exact distance from the medoid to a
    /// member.
    pub radius: f64,
    /// The certified lower bound on the distance between any completion of
    /// the stream and the medoid
    /// ([`WorkflowDiff::prefix_distance`]).
    pub lower_bound: f64,
    /// `lower_bound > radius`: no completion of this stream can land inside
    /// the cluster.
    pub exceeds: bool,
}

/// The drift verdict for one in-flight stream — the payload of
/// `GET /runs/{spec}/{stream}/drift`.
///
/// The stream **drifts** when the certified lower bound to *every* cluster
/// medoid exceeds that cluster's radius: whatever the run goes on to do, it
/// cannot end up inside any known cluster.  Because the bound is monotone in
/// the event stream, a drift verdict is permanent for the stream (it can
/// only be reset by re-clustering with the finished run folded in).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// The specification name.
    pub spec: String,
    /// The stream name.
    pub stream: String,
    /// Events applied to the stream so far.
    pub events: u64,
    /// Node instances declared so far.
    pub nodes: usize,
    /// Completed leaves in the prefix profile.
    pub completed_leaves: u64,
    /// Per-cluster radii and bounds (empty when no clustering has been built
    /// for the specification yet).
    pub clusters: Vec<DriftClusterStatus>,
    /// `true` iff `clusters` is non-empty and every entry `exceeds`.
    pub drifted: bool,
}

/// What [`DiffService::load_streams`] rebuilt from the write-ahead log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamLoadReport {
    /// Streams rebuilt into the in-flight registry.
    pub loaded: usize,
    /// Streams dropped as already finalised (a closure marker, or a stored
    /// run of the same name).
    pub closed: usize,
    /// Streams dropped as stale or invalid (replaced specification version,
    /// missing specification, or an event sequence that no longer applies).
    pub skipped: usize,
}

/// Builder-style configuration for [`DiffService`].
pub struct DiffServiceBuilder {
    store: Arc<WorkflowStore>,
    cost: Arc<dyn CostModel>,
    cache: Arc<dyn DiffCache>,
    threads: usize,
}

impl DiffServiceBuilder {
    /// Sets the cost model (default: [`UnitCost`]).
    pub fn cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the shared diff cache (default: a [`ShardedDiffCache`]).
    pub fn cache(mut self, cache: Arc<dyn DiffCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the worker-pool size for batch operations (default: the number of
    /// available CPUs).  Clamped to at least 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DiffService {
        DiffService {
            store: self.store,
            cost: self.cost,
            cache: self.cache,
            threads: self.threads,
            clusters: IncrementalClusterIndex::new(),
            metric: IncrementalMetricIndex::new(),
            streams: RankedRwLock::new(LockRank::Streams, BTreeMap::new()),
        }
    }
}

/// The batch diff engine; see the [module docs](self).
pub struct DiffService {
    store: Arc<WorkflowStore>,
    cost: Arc<dyn CostModel>,
    cache: Arc<dyn DiffCache>,
    threads: usize,
    clusters: IncrementalClusterIndex,
    metric: IncrementalMetricIndex,
    /// In-flight streamed runs keyed by `(spec, stream)`.  The innermost
    /// lock of the whole system ([`LockRank::Streams`]): builders are cloned
    /// *out* under it, mutated and persisted with no lock held, and
    /// committed back with an optimistic sequence check — so no store or
    /// WAL call ever happens under it.
    streams: RankedRwLock<BTreeMap<(String, String), PartialRun>>,
}

impl DiffService {
    /// Creates a service over `store` with the default configuration
    /// (unit cost, fresh sharded cache, one worker per available CPU).
    pub fn new(store: Arc<WorkflowStore>) -> Self {
        DiffService::builder(store).build()
    }

    /// Starts configuring a service over `store`.
    pub fn builder(store: Arc<WorkflowStore>) -> DiffServiceBuilder {
        DiffServiceBuilder {
            store,
            cost: Arc::new(UnitCost),
            cache: Arc::new(ShardedDiffCache::default()),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<WorkflowStore> {
        &self.store
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &dyn CostModel {
        self.cost.as_ref()
    }

    /// The worker-pool size used by batch operations.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the shared cache's effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn lookup(
        &self,
        spec_name: &str,
        run_names: &[&str],
    ) -> Result<(Arc<Specification>, Vec<Arc<Run>>), ServiceError> {
        // One consistent critical section; only the named runs are touched,
        // so single-pair queries stay O(k log n) however many runs the
        // specification has accumulated.
        let (spec, resolved) = self
            .store
            .lookup_runs(spec_name, run_names)
            .ok_or_else(|| ServiceError::UnknownSpec(spec_name.to_string()))?;
        let runs = run_names
            .iter()
            .zip(resolved)
            .map(|(&name, run)| {
                run.ok_or_else(|| ServiceError::UnknownRun {
                    spec: spec_name.to_string(),
                    run: name.to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((spec, runs))
    }

    /// Primes the shared cache from the store's current contents: every run
    /// of every specification is replayed through the engine's `prepare`
    /// path on the worker pool, so the Algorithm-3 deletion tables for every
    /// distinct subtree fingerprint are resident before the first query.
    ///
    /// This is the companion of [`WorkflowStore::load_from_dir`]: after a
    /// process restart, `load` + `warm_start` moves the per-run preparation
    /// cost out of the first `diff`/`diff_all_pairs` call (which then only
    /// pays for the pair DP).  Calling it on a store that is already warm is
    /// harmless — preparation hits the cache and returns immediately.
    ///
    /// [`WorkflowStore::load_from_dir`]: crate::store::WorkflowStore::load_from_dir
    pub fn warm_start(&self) -> Result<WarmStartReport, ServiceError> {
        let snapshot = self.store.snapshot_all();
        let mut report = WarmStartReport { specs: 0, runs: 0 };
        for (_, (spec, named_runs)) in &snapshot {
            report.specs += 1;
            let engine = WorkflowDiff::new(spec, self.cost.as_ref());
            let cache = self.cache.as_ref();
            let runs: Vec<&Arc<Run>> = named_runs.iter().map(|(_, r)| r).collect();
            self.run_jobs(&runs, |r| engine.prepare(r, Some(cache)).map(|_| ()))?;
            report.runs += runs.len();
        }
        Ok(report)
    }

    /// Computes the edit distance between two stored runs, sharing and
    /// warming the service cache.
    pub fn diff(&self, spec: &str, r1: &str, r2: &str) -> Result<PairDistance, ServiceError> {
        let (spec_arc, runs) = self.lookup(spec, &[r1, r2])?;
        let engine = WorkflowDiff::new(&spec_arc, self.cost.as_ref());
        let cache = Some(self.cache.as_ref());
        let p1 = engine.prepare(&runs[0], cache).map_err(ServiceError::from)?;
        let p2 = engine.prepare(&runs[1], cache).map_err(ServiceError::from)?;
        let distance = engine.distance_prepared(&p1, &p2, cache)?;
        Ok(PairDistance { source: r1.to_string(), target: r2.to_string(), distance })
    }

    /// Opens a full differencing session (mapping + edit script) between two
    /// stored runs, reusing the service's cost model and cache.
    pub fn session(&self, spec: &str, r1: &str, r2: &str) -> Result<DiffSession, ServiceError> {
        let (spec_arc, mut runs) = self.lookup(spec, &[r1, r2])?;
        let target = runs.pop().expect("two runs resolved");
        let source = runs.pop().expect("two runs resolved");
        DiffSession::from_arcs(
            spec_arc,
            self.cost.as_ref(),
            source,
            target,
            Some(self.cache.as_ref()),
        )
        .map_err(ServiceError::from)
    }

    /// Differences an explicit list of run-name pairs on the worker pool.
    ///
    /// The result vector is index-aligned with `pairs`.
    pub fn diff_batch(
        &self,
        spec: &str,
        pairs: &[(String, String)],
    ) -> Result<Vec<PairDistance>, ServiceError> {
        // Deduplicate run names so each distinct run is resolved and
        // prepared exactly once, however often it repeats across pairs.
        let mut names: Vec<&str> =
            pairs.iter().flat_map(|(a, b)| [a.as_str(), b.as_str()]).collect();
        names.sort_unstable();
        names.dedup();
        let index_of = |name: &str| {
            names.binary_search(&name).expect("every pair name is in the deduplicated list")
        };
        let (spec_arc, runs) = self.lookup(spec, &names)?;
        let engine = WorkflowDiff::new(&spec_arc, self.cost.as_ref());
        let cache = self.cache.as_ref();
        // Algorithm 3 preparation parallelises per distinct run.
        let run_refs: Vec<&Arc<Run>> = runs.iter().collect();
        let prepared = self.run_jobs(&run_refs, |r| engine.prepare(r, Some(cache)))?;
        let jobs: Vec<(usize, usize)> =
            pairs.iter().map(|(a, b)| (index_of(a), index_of(b))).collect();
        let distances = self.run_jobs(&jobs, |&(i, j)| {
            engine.distance_prepared(&prepared[i], &prepared[j], Some(cache))
        })?;
        Ok(pairs
            .iter()
            .zip(distances)
            .map(|((a, b), distance)| PairDistance {
                source: a.clone(),
                target: b.clone(),
                distance,
            })
            .collect())
    }

    /// Computes the full distance matrix over every run stored for `spec`.
    pub fn diff_all_pairs(&self, spec: &str) -> Result<AllPairsResult, ServiceError> {
        let (spec_arc, named_runs) =
            self.store.snapshot(spec).ok_or_else(|| ServiceError::UnknownSpec(spec.to_string()))?;
        let run_names: Vec<String> = named_runs.iter().map(|(n, _)| n.clone()).collect();
        let engine = WorkflowDiff::new(&spec_arc, self.cost.as_ref());
        let cache = self.cache.as_ref();
        // Fingerprint + Algorithm 3 preparation parallelises per run.
        let runs_only: Vec<&Arc<Run>> = named_runs.iter().map(|(_, r)| r).collect();
        let prepared = self.run_jobs(&runs_only, |r| engine.prepare(r, Some(cache)))?;
        let n = prepared.len();
        let jobs: Vec<(usize, usize)> =
            (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))).collect();
        let distances = self.run_jobs(&jobs, |&(i, j)| {
            engine.distance_prepared(&prepared[i], &prepared[j], Some(cache))
        })?;
        let mut matrix = vec![vec![0.0; n]; n];
        for (&(i, j), d) in jobs.iter().zip(distances) {
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
        Ok(AllPairsResult { runs: run_names, matrix })
    }

    /// The exact `k` nearest stored runs to `run` ("which past run is this
    /// one closest to?") — the query behind `GET /similar`.
    ///
    /// Distances are computed against **every** other stored run of the
    /// specification (prepared in parallel, each pair riding the shared
    /// cache), so the answer is always identical to a from-scratch
    /// recompute — no approximation through the cluster index.  Results are
    /// sorted by distance, ties broken by run name; `k` is clamped to the
    /// number of other runs and must be at least 1.
    pub fn nearest_runs(
        &self,
        spec: &str,
        run: &str,
        k: usize,
    ) -> Result<Vec<PairDistance>, ServiceError> {
        if k == 0 {
            return Err(ServiceError::InvalidQuery("k must be at least 1".to_string()));
        }
        let (spec_arc, named_runs) =
            self.store.snapshot(spec).ok_or_else(|| ServiceError::UnknownSpec(spec.to_string()))?;
        let query = named_runs.iter().position(|(n, _)| n == run).ok_or_else(|| {
            ServiceError::UnknownRun { spec: spec.to_string(), run: run.to_string() }
        })?;
        let engine = WorkflowDiff::new(&spec_arc, self.cost.as_ref());
        let cache = self.cache.as_ref();
        let run_refs: Vec<&Arc<Run>> = named_runs.iter().map(|(_, r)| r).collect();
        let prepared = self.run_jobs(&run_refs, |r| engine.prepare(r, Some(cache)))?;
        let mut names = Vec::with_capacity(prepared.len().saturating_sub(1));
        let mut targets: Vec<&PreparedRun<'_>> = Vec::with_capacity(names.capacity());
        for (i, p) in prepared.iter().enumerate() {
            if i != query {
                names.push(named_runs[i].0.as_str());
                targets.push(p);
            }
        }
        let row = engine.distance_row_prepared(&prepared[query], &targets, Some(cache))?;
        let mut neighbors: Vec<PairDistance> = names
            .into_iter()
            .zip(row)
            .map(|(name, distance)| PairDistance {
                source: run.to_string(),
                target: name.to_string(),
                distance,
            })
            .collect();
        neighbors.sort_by(|a, b| {
            a.distance.total_cmp(&b.distance).then_with(|| a.target.cmp(&b.target))
        });
        neighbors.truncate(k);
        Ok(neighbors)
    }

    /// The `k` nearest stored runs to `run` through the metric index —
    /// `GET /similar?pruned=1` — with triangle-inequality pruning instead
    /// of the O(n) sweep.
    ///
    /// With `epsilon == 0` (the default) the result is **certified**
    /// identical to [`DiffService::nearest_runs`], ordering and tie-breaks
    /// included: a subtree or candidate is skipped only when a
    /// triangle-inequality bound proves it cannot enter the top-`k`.
    /// `epsilon > 0` opts into approximate answers where every reported
    /// distance is at most `(1 + ε)` times the true `k`-th distance (the
    /// bound echoed in [`PruneStats::approx_epsilon`]).  Candidate
    /// screening additionally reuses medoid distances the cluster index
    /// already memoized, at zero extra evaluations.  Like the exact path,
    /// `k` is clamped to the number of other runs and must be at least 1.
    pub fn nearest_runs_pruned(
        &self,
        spec: &str,
        run: &str,
        k: usize,
        epsilon: f64,
    ) -> Result<(Vec<PairDistance>, PruneStats), ServiceError> {
        if k == 0 {
            return Err(ServiceError::InvalidQuery("k must be at least 1".to_string()));
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(ServiceError::InvalidQuery(
                "approx must be a finite non-negative epsilon".to_string(),
            ));
        }
        let (spec_arc, named_runs) =
            self.store.snapshot(spec).ok_or_else(|| ServiceError::UnknownSpec(spec.to_string()))?;
        if !named_runs.iter().any(|(n, _)| n == run) {
            return Err(ServiceError::UnknownRun { spec: spec.to_string(), run: run.to_string() });
        }
        let names: Vec<String> = named_runs.iter().map(|(n, _)| n.clone()).collect();
        let oracle = ServiceOracle { service: self, spec };
        let pivots = self.clusters.medoid_distance_rows(spec).map(MedoidPivots::new);
        let (neighbors, stats) = self.metric.nearest(
            spec,
            spec_arc.fingerprint(),
            &names,
            run,
            k,
            epsilon,
            pivots.as_ref(),
            DEFAULT_METRIC_SEED,
            &oracle,
        )?;
        let neighbors = neighbors
            .into_iter()
            .map(|(target, distance)| PairDistance { source: run.to_string(), target, distance })
            .collect();
        Ok((neighbors, stats))
    }

    /// The k-medoids clustering of every run stored for `spec`, maintained
    /// incrementally by the service's [`IncrementalClusterIndex`].
    ///
    /// The first call (or a call after the stored run set, `k`, `seed` or
    /// the specification version changed in a way the index did not track)
    /// builds the clustering; subsequent calls and streamed
    /// [`DiffService::notify_run_inserted`] updates serve and maintain it
    /// incrementally.  `k` must be at least 1 (it is clamped to the run
    /// count); an empty collection yields an empty snapshot.
    pub fn cluster_medoids(
        &self,
        spec: &str,
        k: usize,
        seed: u64,
    ) -> Result<ClusterSnapshot, ServiceError> {
        if k == 0 {
            return Err(ServiceError::InvalidQuery("k must be at least 1".to_string()));
        }
        let (spec_arc, named_runs) =
            self.store.snapshot(spec).ok_or_else(|| ServiceError::UnknownSpec(spec.to_string()))?;
        let names: Vec<String> = named_runs.iter().map(|(n, _)| n.clone()).collect();
        let oracle = ServiceOracle { service: self, spec };
        self.clusters.ensure(spec, spec_arc.fingerprint(), &names, k, seed, &oracle)
    }

    /// Folds a just-stored run into the cluster index (a no-op when the
    /// index holds no state for the specification yet).
    ///
    /// The index is a cache of derived state, so this never fails the
    /// caller: any error while fetching the O(k + cluster) fresh distances
    /// drops the specification's state instead, and the next
    /// [`DiffService::cluster_medoids`] rebuilds it.
    pub fn notify_run_inserted(&self, spec: &str, run: &str) {
        let Some(spec_arc) = self.store.spec(spec) else {
            self.clusters.invalidate(spec);
            self.metric.invalidate(spec);
            return;
        };
        let oracle = ServiceOracle { service: self, spec };
        if self.clusters.insert_run(spec, spec_arc.fingerprint(), run, &oracle).is_err() {
            self.clusters.invalidate(spec);
        }
        if self.metric.insert_run(spec, spec_arc.fingerprint(), run, &oracle).is_err() {
            self.metric.invalidate(spec);
        }
    }

    /// Removes a run from the cluster index (the mirror of
    /// [`DiffService::notify_run_inserted`]; same never-fails contract).
    pub fn notify_run_removed(&self, spec: &str, run: &str) {
        let oracle = ServiceOracle { service: self, spec };
        if self.clusters.remove_run(spec, run, &oracle).is_err() {
            self.clusters.invalidate(spec);
        }
        self.metric.remove_run(spec, run);
    }

    /// The service's incremental run-cluster index.
    pub fn cluster_index(&self) -> &IncrementalClusterIndex {
        &self.clusters
    }

    /// The service's incremental metric (vantage-point tree) index.
    pub fn metric_index(&self) -> &IncrementalMetricIndex {
        &self.metric
    }

    /// Checkpoints the cluster index by appending one delta record per
    /// changed spec to the store directory's write-ahead log (see
    /// [`crate::cluster::persist`] and [`crate::wal`]) — O(changed specs),
    /// not a whole `cluster_cache.json` rewrite; the next full save folds
    /// the deltas into the file.  Returns the number of tracked specs.
    /// When nothing changed since the last successful checkpoint the append
    /// is skipped entirely, so calling this after every query is cheap.
    pub fn save_cluster_state(&self, dir: impl AsRef<Path>) -> Result<usize, PersistError> {
        save_cluster_cache(&self.clusters, &self.store, self.cost.cache_key(), dir.as_ref())
    }

    /// Write-ahead-log counters of the underlying store (appends, bytes,
    /// replayed records, checkpoint folds) — the `/metrics` numbers.
    pub fn wal_stats(&self) -> crate::wal::WalStatsSnapshot {
        self.store.wal_stats()
    }

    /// Restores a cluster-index checkpoint from `dir`, validating every
    /// entry against the live store (stale or corrupt entries are skipped
    /// and rebuilt on demand — this never fails the boot).
    pub fn load_cluster_state(&self, dir: impl AsRef<Path>) -> ClusterCacheReport {
        load_cluster_cache(&self.clusters, &self.store, self.cost.cache_key(), dir.as_ref())
    }

    /// Checkpoints the metric index as WAL delta records — the
    /// `metric_index.json` analogue of [`DiffService::save_cluster_state`],
    /// with the same O(changed specs) cost and skip-when-clean behaviour.
    /// Returns the number of tracked specs.
    pub fn save_metric_state(&self, dir: impl AsRef<Path>) -> Result<usize, PersistError> {
        save_metric_cache(&self.metric, &self.store, self.cost.cache_key(), dir.as_ref())
    }

    /// Restores a metric-index checkpoint from `dir`, validating every tree
    /// against the live store (stale or corrupt entries are skipped and
    /// rebuilt on demand — this never fails the boot).
    pub fn load_metric_state(&self, dir: impl AsRef<Path>) -> MetricIndexReport {
        load_metric_cache(&self.metric, &self.store, self.cost.cache_key(), dir.as_ref())
    }

    /// Validates and commits one batch of node-lifecycle events on an
    /// in-flight stream, creating the stream if it does not exist yet — the
    /// in-memory half of `POST /runs/stream`.
    ///
    /// The batch is atomic: every event is applied to a *clone* of the
    /// stream's builder, and the clone replaces the original only if all of
    /// them are accepted **and** the stream has not advanced in the meantime
    /// (otherwise [`ServiceError::StreamRace`], and nothing changed).  The
    /// returned [`StreamBatchOutcome`] carries the prior state so a caller
    /// whose durability step fails can [`DiffService::undo_stream_batch`].
    pub fn stream_events(
        &self,
        spec: &str,
        stream: &str,
        events: &[StreamEvent],
    ) -> Result<StreamBatchOutcome, ServiceError> {
        let spec_arc =
            self.store.spec(spec).ok_or_else(|| ServiceError::UnknownSpec(spec.to_string()))?;
        let run_exists = self.store.run(spec, stream).is_some();
        let key = (spec.to_string(), stream.to_string());
        let prior = self.streams.read().get(&key).cloned();
        let mut next = match &prior {
            Some(p) => {
                if p.spec().fingerprint() != spec_arc.fingerprint() {
                    return Err(ServiceError::InvalidQuery(format!(
                        "stream {stream:?} was opened against a replaced version of \
                         specification {spec:?}; remove it and start over"
                    )));
                }
                p.clone()
            }
            None => {
                if run_exists {
                    return Err(ServiceError::InvalidQuery(format!(
                        "stream name {stream:?} already names a stored run of \
                         specification {spec:?}"
                    )));
                }
                PartialRun::new(Arc::clone(&spec_arc))
            }
        };
        let base_seq = next.applied();
        for event in events {
            next.apply(event).map_err(ServiceError::Stream)?;
        }
        let ack = StreamAck {
            base_seq,
            seq: next.applied(),
            nodes: next.node_count(),
            completed_leaves: next.profile().completed_leaves(),
            complete: next.is_complete(),
        };
        {
            let mut streams = self.streams.write();
            let current = streams.get(&key).map(|p| p.applied()).unwrap_or(0);
            if current != base_seq {
                return Err(ServiceError::StreamRace {
                    spec: spec.to_string(),
                    stream: stream.to_string(),
                });
            }
            streams.insert(key, next);
        }
        Ok(StreamBatchOutcome { ack, prior })
    }

    /// Rolls the registry back to the state before a
    /// [`DiffService::stream_events`] batch — used when appending the batch
    /// to the write-ahead log failed, so memory never runs ahead of disk.
    /// A no-op if the stream has advanced past the batch in the meantime.
    pub fn undo_stream_batch(&self, spec: &str, stream: &str, outcome: StreamBatchOutcome) {
        let key = (spec.to_string(), stream.to_string());
        let mut streams = self.streams.write();
        if streams.get(&key).map(|p| p.applied()) != Some(outcome.ack.seq) {
            return;
        }
        match outcome.prior {
            Some(p) => {
                streams.insert(key, p);
            }
            None => {
                streams.remove(&key);
            }
        }
    }

    /// Materialises a completed in-flight stream as a fully validated run
    /// (without touching the store or the registry), returning the run and
    /// the stream's event count.  [`ServiceError::Stream`] with
    /// [`StreamError::Incomplete`] while instances are active or failed.
    pub fn finalize_stream(&self, spec: &str, stream: &str) -> Result<(Run, u64), ServiceError> {
        let key = (spec.to_string(), stream.to_string());
        let partial = self.streams.read().get(&key).cloned().ok_or_else(|| {
            ServiceError::UnknownStream { spec: spec.to_string(), stream: stream.to_string() }
        })?;
        let run = partial.finalize().map_err(ServiceError::Stream)?;
        Ok((run, partial.applied()))
    }

    /// Drops an in-flight stream from the registry (the final step of
    /// finalisation, and the operator remedy for stuck streams).  Returns
    /// `true` if the stream existed.
    pub fn remove_stream(&self, spec: &str, stream: &str) -> bool {
        self.streams.write().remove(&(spec.to_string(), stream.to_string())).is_some()
    }

    /// Names of the in-flight streams of one specification, sorted.
    pub fn stream_names(&self, spec: &str) -> Vec<String> {
        self.streams
            .read()
            .keys()
            .filter(|(s, _)| s == spec)
            .map(|(_, stream)| stream.clone())
            .collect()
    }

    /// The event count of an in-flight stream, if it exists.
    pub fn stream_seq(&self, spec: &str, stream: &str) -> Option<u64> {
        self.streams.read().get(&(spec.to_string(), stream.to_string())).map(|p| p.applied())
    }

    /// The service's drift monitor over its in-flight streams.
    pub fn drift_monitor(&self) -> DriftMonitor<'_> {
        DriftMonitor { service: self }
    }

    /// Shorthand for [`DriftMonitor::report`].
    pub fn drift_report(&self, spec: &str, stream: &str) -> Result<DriftReport, ServiceError> {
        self.drift_monitor().report(spec, stream)
    }

    /// Rebuilds the in-flight stream registry from `dir`'s write-ahead log —
    /// the streaming companion of
    /// [`WorkflowStore::load_from_dir`](crate::store::WorkflowStore::load_from_dir),
    /// called once at boot after the store itself is loaded.
    ///
    /// Kind-5 records are grouped per `(spec, stream)` in append order.  A
    /// closure marker drops its group; so does a stored run of the stream's
    /// name (the crash window between a finalised run's insert record and
    /// its closure marker).  A group whose specification is gone, whose
    /// recorded version is not the directory's current version, or whose
    /// events no longer apply cleanly is skipped — never an error.
    pub fn load_streams(&self, dir: impl AsRef<Path>) -> Result<StreamLoadReport, PersistError> {
        let dir = dir.as_ref();
        let mut report = StreamLoadReport::default();
        let mut rebuilt: Vec<((String, String), PartialRun)> = Vec::new();
        {
            let _guard = self.store.save_lock.lock();
            let scan = wal::scan(dir)?;
            let mut groups: Vec<((String, String), Vec<wal::StreamEventRecord>)> = Vec::new();
            for record in scan.records {
                let wal::WalRecord::StreamEvent(r) = record else { continue };
                let key = (r.spec.clone(), r.stream.clone());
                if r.event.is_none() {
                    let before = groups.len();
                    groups.retain(|(k, _)| *k != key);
                    report.closed += before - groups.len();
                } else if let Some((_, group)) = groups.iter_mut().find(|(k, _)| *k == key) {
                    group.push(r);
                } else {
                    groups.push((key, vec![r]));
                }
            }
            for ((spec_name, stream_name), records) in groups {
                let Some(spec_arc) = self.store.spec(&spec_name) else {
                    report.skipped += 1;
                    continue;
                };
                let Ok(fp_hex) = self.store.persistent_fp_for_append(dir, &spec_arc) else {
                    report.skipped += 1;
                    continue;
                };
                if records.iter().any(|r| r.spec_fingerprint != fp_hex) {
                    report.skipped += 1;
                    continue;
                }
                if self.store.run(&spec_name, &stream_name).is_some() {
                    report.closed += 1;
                    continue;
                }
                let mut partial = PartialRun::new(Arc::clone(&spec_arc));
                let replays_cleanly = records.iter().all(|r| {
                    r.seq == partial.applied()
                        && r.event.as_ref().is_some_and(|event| partial.apply(event).is_ok())
                });
                if replays_cleanly {
                    rebuilt.push(((spec_name, stream_name), partial));
                    report.loaded += 1;
                } else {
                    report.skipped += 1;
                }
            }
        }
        if !rebuilt.is_empty() {
            let mut streams = self.streams.write();
            for (key, partial) in rebuilt {
                streams.insert(key, partial);
            }
        }
        Ok(report)
    }

    /// Runs `work` over `jobs` on the scoped worker pool, preserving job
    /// order in the result.  The first differencing error wins.
    fn run_jobs<J: Sync, T: Send>(
        &self,
        jobs: &[J],
        work: impl Fn(&J) -> Result<T, DiffError> + Sync,
    ) -> Result<Vec<T>, ServiceError> {
        let workers = self.threads.min(jobs.len()).max(1);
        if workers == 1 {
            return jobs.iter().map(|j| work(j).map_err(ServiceError::from)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, Result<T, DiffError>)> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= jobs.len() {
                                break;
                            }
                            out.push((k, work(&jobs[k])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("diff workers do not panic")).collect()
        });
        let mut ordered: Vec<Option<T>> = (0..jobs.len()).map(|_| None).collect();
        for (k, result) in results {
            ordered[k] = Some(result.map_err(ServiceError::from)?);
        }
        Ok(ordered
            .into_iter()
            .map(|d| d.expect("every job index was claimed exactly once"))
            .collect())
    }
}

/// The [`DistanceOracle`] the cluster index runs on: one consistent store
/// lookup per batch, parallel cache-backed preparation, and a
/// [`WorkflowDiff::distance_row_prepared`] row — so a clustering fetch is
/// exactly as warm as regular diff traffic.
struct ServiceOracle<'a> {
    service: &'a DiffService,
    spec: &'a str,
}

/// Live drift detection over the service's in-flight streams.
///
/// For each cluster of the specification's maintained k-medoids clustering,
/// the monitor compares the cluster's **radius** (largest exact distance
/// from the medoid to a member, computed through the same cache-backed
/// oracle the cluster index uses) against the **certified lower bound**
/// [`WorkflowDiff::prefix_distance`] gives on the distance between any
/// completion of the stream and the medoid.  When the bound exceeds the
/// radius for *every* cluster, no completion of the run can land inside any
/// known cluster — the run has drifted, provably, while still executing.
///
/// The monitor never triggers a re-clustering itself: with no snapshot for
/// the specification the report carries zero clusters and `drifted: false`
/// (call [`DiffService::cluster_medoids`] first to build one).
pub struct DriftMonitor<'a> {
    service: &'a DiffService,
}

impl DriftMonitor<'_> {
    /// The drift verdict for one in-flight stream.
    pub fn report(&self, spec: &str, stream: &str) -> Result<DriftReport, ServiceError> {
        let service = self.service;
        let key = (spec.to_string(), stream.to_string());
        let partial = service.streams.read().get(&key).cloned().ok_or_else(|| {
            ServiceError::UnknownStream { spec: spec.to_string(), stream: stream.to_string() }
        })?;
        let spec_arc =
            service.store.spec(spec).ok_or_else(|| ServiceError::UnknownSpec(spec.to_string()))?;
        let mut report = DriftReport {
            spec: spec.to_string(),
            stream: stream.to_string(),
            events: partial.applied(),
            nodes: partial.node_count(),
            completed_leaves: partial.profile().completed_leaves(),
            clusters: Vec::new(),
            drifted: false,
        };
        let Some(snapshot) = service.clusters.snapshot(spec) else {
            return Ok(report);
        };
        let engine = WorkflowDiff::new(&spec_arc, service.cost.as_ref());
        let cache = service.cache.as_ref();
        let oracle = ServiceOracle { service, spec };
        for cluster in &snapshot.clusters {
            let members: Vec<&str> =
                cluster.runs.iter().filter(|r| **r != cluster.medoid).map(|r| r.as_str()).collect();
            let radius = if members.is_empty() {
                0.0
            } else {
                oracle.distances(&cluster.medoid, &members)?.into_iter().fold(0.0, f64::max)
            };
            let medoid_run = service.store.run(spec, &cluster.medoid).ok_or_else(|| {
                ServiceError::UnknownRun { spec: spec.to_string(), run: cluster.medoid.clone() }
            })?;
            let prepared = engine.prepare(&medoid_run, Some(cache))?;
            let lower_bound =
                engine.prefix_distance(partial.profile(), None, &prepared, Some(cache))?;
            report.clusters.push(DriftClusterStatus {
                medoid: cluster.medoid.clone(),
                size: cluster.runs.len(),
                radius,
                lower_bound,
                exceeds: lower_bound > radius,
            });
        }
        report.drifted = !report.clusters.is_empty() && report.clusters.iter().all(|c| c.exceeds);
        Ok(report)
    }
}

impl DistanceOracle for ServiceOracle<'_> {
    type Error = ServiceError;

    fn distances(&self, source: &str, targets: &[&str]) -> Result<Vec<f64>, ServiceError> {
        let mut names: Vec<&str> = Vec::with_capacity(targets.len() + 1);
        names.push(source);
        names.extend_from_slice(targets);
        let (spec_arc, runs) = self.service.lookup(self.spec, &names)?;
        let engine = WorkflowDiff::new(&spec_arc, self.service.cost.as_ref());
        let cache = self.service.cache.as_ref();
        let run_refs: Vec<&Arc<Run>> = runs.iter().collect();
        let prepared = self.service.run_jobs(&run_refs, |r| engine.prepare(r, Some(cache)))?;
        let target_refs: Vec<&PreparedRun<'_>> = prepared[1..].iter().collect();
        engine
            .distance_row_prepared(&prepared[0], &target_refs, Some(cache))
            .map_err(ServiceError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DEFAULT_CLUSTER_SEED;
    use wfdiff_core::LengthCost;
    use wfdiff_sptree::SpecificationBuilder;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_run3, fig2_specification};

    fn seeded_store() -> Arc<WorkflowStore> {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        store.insert_run("r3", fig2_run3(&spec)).unwrap();
        store
    }

    #[test]
    fn single_diff_matches_the_plain_engine() {
        let store = seeded_store();
        let service = DiffService::new(Arc::clone(&store));
        let got = service.diff("fig2", "r1", "r2").unwrap();
        assert_eq!(got.distance, 4.0);
        let err = service.diff("fig2", "r1", "nope").unwrap_err();
        assert!(matches!(err, ServiceError::UnknownRun { .. }));
        let err = service.diff("nope", "r1", "r2").unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSpec(_)));
    }

    #[test]
    fn all_pairs_matches_pairwise_fresh_engines_and_hits_cache_when_warm() {
        let store = seeded_store();
        let service = DiffService::builder(Arc::clone(&store)).threads(4).build();
        let cold = service.diff_all_pairs("fig2").unwrap();
        assert_eq!(cold.runs, vec!["r1", "r2", "r3"]);
        // Distances are identical to the unmemoised engine.
        let spec = store.spec("fig2").unwrap();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        for (a, b, d) in cold.pairs() {
            let r1 = store.run("fig2", a).unwrap();
            let r2 = store.run("fig2", b).unwrap();
            assert_eq!(d, engine.distance(&r1, &r2).unwrap(), "{a} vs {b}");
        }
        // Matrix is symmetric with a zero diagonal.
        for i in 0..3 {
            assert_eq!(cold.matrix[i][i], 0.0);
            for j in 0..3 {
                assert_eq!(cold.matrix[i][j], cold.matrix[j][i]);
            }
        }
        // A warm repeat answers every pair from the cache: hits grow, misses
        // do not.
        let after_cold = service.cache_stats();
        let warm = service.diff_all_pairs("fig2").unwrap();
        let after_warm = service.cache_stats();
        assert_eq!(warm, cold);
        assert_eq!(after_warm.misses, after_cold.misses);
        assert!(after_warm.hits > after_cold.hits);
    }

    #[test]
    fn warm_start_primes_the_cache_for_the_first_query() {
        let store = seeded_store();
        // Cold reference service for the expected distances.
        let cold = DiffService::new(Arc::clone(&store)).diff_all_pairs("fig2").unwrap();

        let service = DiffService::builder(Arc::clone(&store)).threads(2).build();
        let report = service.warm_start().unwrap();
        assert_eq!(report, WarmStartReport { specs: 1, runs: 3 });
        let after_warm = service.cache_stats();

        // The first query after a warm start prepares nothing new: every
        // per-subtree deletion table is already resident, so cache misses do
        // not grow during preparation (only the pair DP may add entries).
        let first = service.diff_all_pairs("fig2").unwrap();
        assert_eq!(first.matrix, cold.matrix);
        assert!(service.cache_stats().hits > after_warm.hits);

        // Warming an already-warm service is a no-op that only adds hits.
        let again = service.warm_start().unwrap();
        assert_eq!(again, report);
    }

    #[test]
    fn diff_batch_is_index_aligned_and_parallel_safe() {
        let store = seeded_store();
        let service = DiffService::builder(Arc::clone(&store)).threads(3).build();
        let pairs = vec![
            ("r1".to_string(), "r2".to_string()),
            ("r2".to_string(), "r1".to_string()),
            ("r1".to_string(), "r1".to_string()),
            ("r2".to_string(), "r3".to_string()),
        ];
        let out = service.diff_batch("fig2", &pairs).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].distance, 4.0);
        assert_eq!(out[1].distance, 4.0, "distance is symmetric");
        assert_eq!(out[2].distance, 0.0);
        assert_eq!(out[0].source, "r1");
        assert_eq!(out[3].target, "r3");
    }

    #[test]
    fn sessions_and_custom_cost_models_work_through_the_service() {
        let store = seeded_store();
        let service =
            DiffService::builder(Arc::clone(&store)).cost(Arc::new(LengthCost)).threads(2).build();
        let mut session = service.session("fig2", "r1", "r2").unwrap();
        assert!(session.distance() > 0.0);
        let total_steps = session.total_steps();
        let mut seen = 0;
        while session.step().is_some() {
            seen += 1;
        }
        assert_eq!(seen, total_steps);
        // The session distance agrees with the service's cost-only path.
        let d = service.diff("fig2", "r1", "r2").unwrap().distance;
        assert_eq!(session.distance(), d);
    }

    #[test]
    fn nearest_runs_are_exact_and_sorted() {
        let store = seeded_store();
        let service = DiffService::builder(Arc::clone(&store)).threads(2).build();
        let nearest = service.nearest_runs("fig2", "r1", 10).unwrap();
        assert_eq!(nearest.len(), 2, "k clamps to the other stored runs");
        assert!(nearest[0].distance <= nearest[1].distance);
        // Every reported distance is identical to the unmemoised engine.
        let spec = store.spec("fig2").unwrap();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        let query = store.run("fig2", "r1").unwrap();
        for p in &nearest {
            let expected = engine.distance(&query, &store.run("fig2", &p.target).unwrap()).unwrap();
            assert_eq!(p.distance, expected, "r1 vs {}", p.target);
        }
        assert!(matches!(
            service.nearest_runs("fig2", "r1", 0),
            Err(ServiceError::InvalidQuery(_))
        ));
        assert!(matches!(
            service.nearest_runs("fig2", "zz", 1),
            Err(ServiceError::UnknownRun { .. })
        ));
        assert!(matches!(service.nearest_runs("zz", "r1", 1), Err(ServiceError::UnknownSpec(_))));
    }

    #[test]
    fn cluster_index_follows_store_mutations() {
        let store = seeded_store();
        let service = DiffService::builder(Arc::clone(&store)).threads(2).build();
        let initial = service.cluster_medoids("fig2", 2, 1).unwrap();
        assert_eq!(initial.clusters.len(), 2);

        // Stream a duplicate of r1 in and a run out; the maintained state
        // must equal what a fresh service computes from scratch.
        let spec = store.spec("fig2").unwrap();
        store.insert_run("r4", fig2_run1(&spec)).unwrap();
        service.notify_run_inserted("fig2", "r4");
        store.remove_run("fig2", "r2");
        service.notify_run_removed("fig2", "r2");

        let maintained = service.cluster_index().snapshot("fig2").unwrap();
        let members: usize = maintained.clusters.iter().map(|c| c.runs.len()).sum();
        assert_eq!(members, 3);
        assert!(maintained.cluster_of("r2").is_none());
        let scratch = DiffService::new(Arc::clone(&store)).cluster_medoids("fig2", 2, 1).unwrap();
        assert_eq!(maintained.partition(), scratch.partition());
        // r4 is a copy of r1: they always share a cluster.
        assert_eq!(maintained.cluster_of("r4"), maintained.cluster_of("r1"));

        assert!(matches!(
            service.cluster_medoids("fig2", 0, 1),
            Err(ServiceError::InvalidQuery(_))
        ));
        assert!(matches!(service.cluster_medoids("zz", 2, 1), Err(ServiceError::UnknownSpec(_))));
    }

    #[test]
    fn concurrent_diffs_inserts_and_removals_are_safe_and_unstale() {
        // Two specifications under distinct names; one is repeatedly
        // replaced (runs invalidated) while diff traffic runs against the
        // other.  No stale runs may survive a replace, and diffs must keep
        // returning the same distances throughout.
        let store = Arc::new(WorkflowStore::new());
        let stable = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&stable)).unwrap();
        store.insert_run("r2", fig2_run2(&stable)).unwrap();
        let service = Arc::new(DiffService::builder(Arc::clone(&store)).threads(2).build());

        let churn_spec = || {
            let mut b = SpecificationBuilder::new("churn");
            b.path(&["a", "b", "c"]);
            b.build().unwrap()
        };
        let churn_spec_v2 = || {
            let mut b = SpecificationBuilder::new("churn");
            b.path(&["a", "b", "c", "d"]);
            b.build().unwrap()
        };

        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..100 {
                    let spec = if i % 2 == 0 { churn_spec() } else { churn_spec_v2() };
                    let (arc, _invalidated) = store.replace_spec(spec);
                    // Runs inserted now belong to the current version.
                    let run = arc.execute(&mut wfdiff_sptree::FullDecider).unwrap();
                    store.insert_run("only", run).unwrap();
                }
                store.remove_spec("churn");
            })
        };
        let differs: Vec<_> = (0..3)
            .map(|_| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for _ in 0..30 {
                        let d = service.diff("fig2", "r1", "r2").unwrap().distance;
                        assert_eq!(d, 4.0);
                        // The churn spec may or may not exist; when a snapshot
                        // resolves, every run in it must belong to the exact
                        // stored version (origins in range), which
                        // diff_all_pairs exercises end to end.
                        match service.diff_all_pairs("churn") {
                            Ok(result) => {
                                for (_, _, d) in result.pairs() {
                                    assert!(d >= 0.0);
                                }
                            }
                            Err(ServiceError::UnknownSpec(_)) => {}
                            Err(ServiceError::UnknownRun { .. }) => {}
                            Err(ServiceError::InvalidQuery(_)) => {}
                            Err(ServiceError::Diff(e)) => {
                                panic!("stale spec/run pairing reached the engine: {e}")
                            }
                            Err(
                                e @ (ServiceError::Stream(_)
                                | ServiceError::UnknownStream { .. }
                                | ServiceError::StreamRace { .. }),
                            ) => {
                                panic!("streaming error from a non-streaming query: {e}")
                            }
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for d in differs {
            d.join().unwrap();
        }
    }

    /// Events for fig2's single-branch run `1 -> 2 -> branch -> 6 -> 7`.
    fn branch_events(branch: &str) -> Vec<StreamEvent> {
        let labels = ["1", "2", branch, "6", "7"];
        let mut events = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let preds = if i == 0 { vec![] } else { vec![i - 1] };
            events.push(StreamEvent::started(i, *label, preds));
            events.push(StreamEvent::completed(i));
        }
        events
    }

    #[test]
    fn streamed_finalize_equals_a_whole_insert() {
        let store = seeded_store();
        let service = DiffService::new(Arc::clone(&store));
        let events = branch_events("3");
        // Two batches, acknowledged with contiguous sequence numbers.
        let first = service.stream_events("fig2", "s1", &events[..5]).unwrap();
        assert_eq!((first.ack.base_seq, first.ack.seq), (0, 5));
        assert!(!first.ack.complete);
        let second = service.stream_events("fig2", "s1", &events[5..]).unwrap();
        assert_eq!((second.ack.base_seq, second.ack.seq), (5, 10));
        assert!(second.ack.complete);
        let (run, seq) = service.finalize_stream("fig2", "s1").unwrap();
        assert_eq!(seq, 10);
        store.insert_run_new("s1", run).unwrap();
        assert!(service.remove_stream("fig2", "s1"));
        // The materialised run is indistinguishable from the same run built
        // whole: distance zero to an identical direct construction.
        let mut p = PartialRun::new(store.spec("fig2").unwrap());
        for e in &events {
            p.apply(e).unwrap();
        }
        let direct = p.finalize().unwrap();
        let stored = store.run("fig2", "s1").unwrap();
        let spec = store.spec("fig2").unwrap();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        assert_eq!(engine.distance(&stored, &direct).unwrap(), 0.0);
    }

    #[test]
    fn drift_report_flags_streams_outside_every_cluster_radius() {
        // A store holding only r1, clustered with k=1: the single cluster's
        // radius is 0, so any stream with a certain surplus leaf drifts.
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        let service = DiffService::new(Arc::clone(&store));
        service.cluster_medoids("fig2", 1, DEFAULT_CLUSTER_SEED).unwrap();

        // Before any clustering-relevant events: a branch-3 stream stays
        // within r1 (its leaf exists in the medoid), so the bound is 0.
        service.stream_events("fig2", "near", &branch_events("3")).unwrap();
        let near = service.drift_report("fig2", "near").unwrap();
        assert_eq!(near.clusters.len(), 1);
        assert_eq!(near.clusters[0].radius, 0.0, "singleton cluster");
        assert_eq!(near.clusters[0].lower_bound, 0.0);
        assert!(!near.drifted);

        // A branch-5 stream holds a leaf r1 does not: the certified bound
        // is positive, exceeds the zero radius, and the stream drifts.
        service.stream_events("fig2", "far", &branch_events("5")).unwrap();
        let far = service.drift_report("fig2", "far").unwrap();
        assert!(far.clusters[0].lower_bound > 0.0);
        assert!(far.clusters[0].exceeds);
        assert!(far.drifted);
        // The bound never overshoots the exact distance of the completion.
        let (run, _) = service.finalize_stream("fig2", "far").unwrap();
        let exact = {
            let engine = WorkflowDiff::new(&spec, &UnitCost);
            let r1 = store.run("fig2", "r1").unwrap();
            engine.distance(&run, &r1).unwrap()
        };
        assert!(far.clusters[0].lower_bound <= exact);
    }

    #[test]
    fn drift_report_is_empty_without_clustering_state() {
        let store = seeded_store();
        let service = DiffService::new(Arc::clone(&store));
        service.stream_events("fig2", "s1", &branch_events("3")[..2]).unwrap();
        let report = service.drift_report("fig2", "s1").unwrap();
        assert!(report.clusters.is_empty());
        assert!(!report.drifted, "no clusters means no drift verdict");
        assert_eq!(report.events, 2);
    }

    #[test]
    fn stream_batches_are_atomic_and_undo_restores_the_prior_state() {
        let store = seeded_store();
        let service = DiffService::new(Arc::clone(&store));
        let events = branch_events("3");
        // A batch with a bad tail leaves no trace — not even the stream.
        let mut bad = events[..2].to_vec();
        bad.push(StreamEvent::completed(9));
        let err = service.stream_events("fig2", "s1", &bad).unwrap_err();
        assert!(matches!(err, ServiceError::Stream(StreamError::UnknownNode { .. })));
        assert!(service.stream_seq("fig2", "s1").is_none());

        // Undoing a committed batch restores exactly the prior state.
        let first = service.stream_events("fig2", "s1", &events[..2]).unwrap();
        service.undo_stream_batch("fig2", "s1", first);
        assert!(service.stream_seq("fig2", "s1").is_none(), "prior state was absent");
        let first = service.stream_events("fig2", "s1", &events[..2]).unwrap();
        let second = service.stream_events("fig2", "s1", &events[2..4]).unwrap();
        service.undo_stream_batch("fig2", "s1", second);
        assert_eq!(service.stream_seq("fig2", "s1"), Some(2));
        // A stale undo (the stream advanced past the batch) is a no-op.
        let stale = first;
        service.stream_events("fig2", "s1", &events[2..4]).unwrap();
        service.undo_stream_batch("fig2", "s1", stale);
        assert_eq!(service.stream_seq("fig2", "s1"), Some(4));
    }

    #[test]
    fn stream_registry_guards_names_versions_and_unknown_streams() {
        let store = seeded_store();
        let service = DiffService::new(Arc::clone(&store));
        // A stream may not shadow a stored run.
        let err = service.stream_events("fig2", "r1", &[]).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidQuery(_)));
        // Unknown streams are typed errors, not panics.
        assert!(matches!(
            service.finalize_stream("fig2", "nope").unwrap_err(),
            ServiceError::UnknownStream { .. }
        ));
        assert!(matches!(
            service.drift_report("fig2", "nope").unwrap_err(),
            ServiceError::UnknownStream { .. }
        ));
        assert!(!service.remove_stream("fig2", "nope"));
        // Unknown specs fail before the registry is touched.
        assert!(matches!(
            service.stream_events("zz", "s1", &[]).unwrap_err(),
            ServiceError::UnknownSpec(_)
        ));
        // stream_names lists only the spec's own streams, sorted.
        service.stream_events("fig2", "b", &[]).unwrap();
        service.stream_events("fig2", "a", &[]).unwrap();
        assert_eq!(service.stream_names("fig2"), vec!["a", "b"]);
        assert!(service.stream_names("other").is_empty());
        // A replaced spec invalidates its streams.
        let (new_spec, _) = store.replace_spec(fig2_specification());
        assert_eq!(new_spec.fingerprint(), store.spec("fig2").unwrap().fingerprint());
        let mut b = SpecificationBuilder::new("fig2");
        b.path(&["1", "2", "3"]);
        store.replace_spec(b.build().unwrap());
        let err = service.stream_events("fig2", "a", &[]).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidQuery(_)), "version mismatch is typed");
    }
}
