//! JSON wire types of the diff server and the error-to-status mapping.
//!
//! Every response body — success or failure — is a JSON document.  Failures
//! use one shape everywhere:
//!
//! ```json
//! {"error": "unknown specification \"nope\"", "kind": "unknown_spec"}
//! ```
//!
//! `kind` is a stable machine-readable tag; `error` is the human-readable
//! message of the underlying store/diff/persist error.  The HTTP status
//! encodes the class of failure:
//!
//! | status | meaning |
//! |--------|---------|
//! | 400    | malformed request: bad JSON, bad escapes, missing parameters, invalid run structure, unreadable descriptor format |
//! | 404    | unknown endpoint, specification or run |
//! | 405    | known endpoint, wrong method |
//! | 409    | conflict: the run was built or asserted against a different specification version, or the run name is already taken |
//! | 413    | body larger than the server's configured limit |
//! | 500    | internal failure: diff engine invariant or persistence I/O |

use crate::io::RunDescriptor;
use crate::persist::PersistError;
use crate::service::ServiceError;
use crate::store::StoreError;
use crate::stream::StreamEvent;
use serde::{Deserialize, Serialize};
use wfdiff_core::DiffError;
use wfdiff_sptree::SpTreeError;

// ---------------------------------------------------------------------------
// Success bodies
// ---------------------------------------------------------------------------

/// `GET /healthz` response.  `specs`/`runs`/`threads` are totals across
/// every shard; `shards` breaks them down (one entry on an unsharded
/// server).
#[derive(Debug, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// Number of specifications stored, summed across shards.
    pub specs: usize,
    /// Number of runs stored (across all specifications and shards).
    pub runs: usize,
    /// Diff threads across every shard's service.
    pub threads: usize,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardHealth>,
}

/// One shard's slice of a `GET /healthz` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: usize,
    /// Specifications stored on this shard.
    pub specs: usize,
    /// Runs stored on this shard.
    pub runs: usize,
}

/// One entry of the `GET /specs` listing.
#[derive(Debug, Serialize, Deserialize)]
pub struct SpecEntry {
    /// Specification name.
    pub name: String,
    /// The stored version's fingerprint (hex) — what
    /// [`InsertRunRequest::spec_fingerprint`] may assert against.
    pub fingerprint: String,
    /// Number of runs stored for this specification.
    pub runs: usize,
}

/// `GET /specs` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct SpecsResponse {
    /// All stored specifications, sorted by name.
    pub specs: Vec<SpecEntry>,
}

/// `GET /specs/{name}/runs` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct RunsResponse {
    /// The specification name.
    pub spec: String,
    /// Run names, sorted.
    pub runs: Vec<String>,
}

/// `POST /runs` request body.
#[derive(Debug, Deserialize)]
pub struct InsertRunRequest {
    /// Name to store the run under.
    pub name: String,
    /// Optional version assertion: when non-empty, the insert is refused
    /// with `409` unless it equals the stored specification's fingerprint
    /// (as listed by `GET /specs`).  Clients that exported runs against a
    /// known version use this to fail fast after a spec replacement.
    #[serde(default)]
    pub spec_fingerprint: String,
    /// The run itself; `run.spec` names the target specification.
    pub run: RunDescriptor,
}

/// `POST /runs` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct InsertRunResponse {
    /// The specification the run was stored under.
    pub spec: String,
    /// The stored run name.
    pub name: String,
    /// Whether the run was also appended to the server's store directory
    /// (`false` when the server runs without persistence).
    pub persisted: bool,
}

/// `GET /diff` response (also one element of a batch response).
#[derive(Debug, Serialize, Deserialize)]
pub struct DiffResponse {
    /// The specification name.
    pub spec: String,
    /// Source run name.
    pub source: String,
    /// Target run name.
    pub target: String,
    /// The edit distance.
    pub distance: f64,
}

/// `POST /diff/batch` request body.
#[derive(Debug, Serialize, Deserialize)]
pub struct BatchDiffRequest {
    /// The specification whose runs are differenced.
    pub spec: String,
    /// Run-name pairs; the response is index-aligned with this list.
    pub pairs: Vec<(String, String)>,
}

/// `POST /diff/batch` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct BatchDiffResponse {
    /// The specification name.
    pub spec: String,
    /// One distance per requested pair, in request order.
    pub distances: Vec<DiffResponse>,
}

/// One composite module of a `GET /cluster` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct ClusterEntry {
    /// Composite-module name.
    pub cluster: String,
    /// Edit-script deletions touching the module.
    pub deletions: usize,
    /// Edit-script insertions touching the module.
    pub insertions: usize,
}

/// `GET /cluster` response: the per-composite-module difference summary,
/// hotspots (most-changed) first.
#[derive(Debug, Serialize, Deserialize)]
pub struct ClusterResponse {
    /// The specification name.
    pub spec: String,
    /// Source run name.
    pub source: String,
    /// Target run name.
    pub target: String,
    /// The prefix separator the clustering grouped labels by.
    pub separator: String,
    /// The edit distance of the underlying session.
    pub distance: f64,
    /// Changed composite modules, ordered by total change (descending).
    pub clusters: Vec<ClusterEntry>,
}

/// One neighbour of a `GET /similar` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct SimilarEntry {
    /// The neighbouring stored run.
    pub run: String,
    /// Its edit distance to the query run.
    pub distance: f64,
}

/// `GET /similar` response: the `k` stored runs nearest to `run`, nearest
/// first (exact distances — identical to a from-scratch recompute unless
/// `approx=` relaxed the query).
#[derive(Debug, Serialize, Deserialize)]
pub struct SimilarResponse {
    /// The specification name.
    pub spec: String,
    /// The query run.
    pub run: String,
    /// The requested neighbour count (the list may be shorter when fewer
    /// other runs are stored).
    pub k: usize,
    /// Nearest runs, ascending by distance (ties by run name).
    pub neighbors: Vec<SimilarEntry>,
    /// `true` when the metric index answered (`pruned=1` / `approx=`);
    /// `false` for the exact O(n) sweep.
    #[serde(default)]
    pub pruned: bool,
    /// The ε error bound of an `approx=` query (0 = certified exact: every
    /// reported distance and tie-break matches the O(n) sweep).
    #[serde(default)]
    pub approx_epsilon: f64,
    /// Edit-distance evaluations this query performed (the sweep performs
    /// n−1).
    #[serde(default)]
    pub distance_evals: u64,
    /// Vantage-point subtrees the triangle inequality excluded outright.
    #[serde(default)]
    pub subtrees_pruned: u64,
    /// Leaf candidates excluded by memoized medoid-distance bounds.
    #[serde(default)]
    pub members_pruned: u64,
}

/// One cluster of a `GET /cluster?algo=kmedoids` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct RunClusterEntry {
    /// The cluster's representative stored run.
    pub medoid: String,
    /// Number of member runs (including the medoid).
    pub size: usize,
    /// All member runs, sorted by name.
    pub runs: Vec<String>,
}

/// `GET /cluster?algo=kmedoids&k=…` response: the k-medoids clustering of
/// every run stored for the specification, maintained incrementally as
/// `POST /runs` streams new runs in.
#[derive(Debug, Serialize, Deserialize)]
pub struct KMedoidsResponse {
    /// The specification name.
    pub spec: String,
    /// Always `"kmedoids"`.
    pub algo: String,
    /// The requested cluster count (effective count is `min(k, runs)`).
    pub k: usize,
    /// Seed of the deterministic initial medoid draw.
    pub seed: u64,
    /// Medoid-based silhouette score in `[-1, 1]`.
    pub silhouette: f64,
    /// Sum of every run's distance to its medoid.
    pub cost: f64,
    /// Clusters ordered by medoid name.
    pub clusters: Vec<RunClusterEntry>,
    /// Whether the clustering was checkpointed to the server's store
    /// directory (`false` when the server runs without persistence).
    pub persisted: bool,
}

/// `POST /runs/stream` request body: append (and optionally finalize) one
/// ordered batch of node-lifecycle events on an in-flight stream.  The
/// first batch for an unknown stream name opens it.
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamEventsRequest {
    /// The specification the stream runs against.
    pub spec: String,
    /// Stream name — becomes the run name at finalisation, so it must not
    /// collide with a stored run.
    pub stream: String,
    /// The events, in engine order.  May be empty (opens the stream, or
    /// finalizes without appending).
    #[serde(default)]
    pub events: Vec<StreamEvent>,
    /// When `true`, the stream is finalized after the batch: the completed
    /// event sequence is validated end-to-end, stored as run `stream`, and
    /// the stream is closed.
    #[serde(default)]
    pub finalize: bool,
}

/// `POST /runs/stream` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamEventsResponse {
    /// The specification name.
    pub spec: String,
    /// The stream name.
    pub stream: String,
    /// The stream's event count before this batch.
    pub base_seq: u64,
    /// The stream's event count after this batch.
    pub seq: u64,
    /// Node instances declared so far.
    pub nodes: usize,
    /// Completed leaves in the live prefix profile.
    pub completed_leaves: u64,
    /// `true` once every declared instance has completed.
    pub complete: bool,
    /// `true` when the stream was finalized into a stored run.
    #[serde(default)]
    pub finalized: bool,
    /// The drift verdict after the batch (omitted clusters mean no
    /// clustering exists yet); absent after finalisation.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub drift: Option<DriftResponse>,
    /// Whether the batch (and finalised run, if any) was appended to the
    /// server's store directory.
    pub persisted: bool,
}

/// `DELETE /runs/{spec}/{stream}/stream` response: the operator remedy for
/// a stuck in-flight stream — the stream is dropped from the registry and
/// (when the shard persists) a closure marker is appended so it stays gone
/// after a restart.
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamCloseResponse {
    /// The specification name.
    pub spec: String,
    /// The closed stream's name.
    pub stream: String,
    /// Events the stream had applied when it was closed.
    pub seq: u64,
    /// Whether the closure marker reached the store directory.
    pub persisted: bool,
}

/// One cluster's drift verdict inside a [`DriftResponse`].
#[derive(Debug, Serialize, Deserialize)]
pub struct DriftClusterEntry {
    /// The cluster's medoid run.
    pub medoid: String,
    /// Member count (including the medoid).
    pub size: usize,
    /// Largest exact medoid-to-member distance.
    pub radius: f64,
    /// Certified lower bound on the distance between any completion of the
    /// stream and the medoid.
    pub lower_bound: f64,
    /// `lower_bound > radius`.
    pub exceeds: bool,
}

/// `GET /runs/{spec}/{stream}/drift` response: the stream has drifted when
/// the certified lower bound exceeds the radius for **every** cluster.
#[derive(Debug, Serialize, Deserialize)]
pub struct DriftResponse {
    /// The specification name.
    pub spec: String,
    /// The stream name.
    pub stream: String,
    /// Events applied so far.
    pub events: u64,
    /// Node instances declared so far.
    pub nodes: usize,
    /// Completed leaves in the prefix profile.
    pub completed_leaves: u64,
    /// Per-cluster verdicts (empty until a clustering is built).
    pub clusters: Vec<DriftClusterEntry>,
    /// `true` iff `clusters` is non-empty and every entry `exceeds`.
    pub drifted: bool,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A failure that maps onto an HTTP status and a JSON error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable tag (`unknown_spec`, `invalid_json`, ...).
    pub kind: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// The serialised shape of an error response.
#[derive(Debug, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable message.
    pub error: String,
    /// Stable machine-readable tag.
    pub kind: String,
}

impl ApiError {
    /// Builds an error with an explicit status and kind.
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> Self {
        ApiError { status, kind, message: message.into() }
    }

    /// 400 with the given kind.
    pub fn bad_request(kind: &'static str, message: impl Into<String>) -> Self {
        ApiError::new(400, kind, message)
    }

    /// 404 for an unknown endpoint.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError::new(404, "unknown_endpoint", message)
    }

    /// 405 for a known endpoint hit with the wrong method.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ApiError::new(405, "method_not_allowed", format!("{method} is not supported on {path}"))
    }

    /// A 400 for a missing query parameter.
    pub fn missing_param(name: &str) -> Self {
        ApiError::bad_request("missing_parameter", format!("query parameter {name:?} is required"))
    }

    /// The JSON body for this error.
    pub fn body(&self) -> String {
        serde_json::to_string(&ErrorBody {
            error: self.message.clone(),
            kind: self.kind.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"error serialisation failed\"}".to_string())
    }
}

impl From<ServiceError> for ApiError {
    fn from(e: ServiceError) -> Self {
        match &e {
            ServiceError::UnknownSpec(_) => ApiError::new(404, "unknown_spec", e.to_string()),
            ServiceError::UnknownRun { .. } => ApiError::new(404, "unknown_run", e.to_string()),
            ServiceError::InvalidQuery(_) => ApiError::new(400, "invalid_query", e.to_string()),
            ServiceError::Diff(DiffError::SpecVersionMismatch { .. }) => {
                ApiError::new(409, "spec_version_mismatch", e.to_string())
            }
            ServiceError::Diff(_) => ApiError::new(500, "diff_failed", e.to_string()),
            // State conflicts (double start, terminal-state events, racing
            // predecessors, premature finalize) are retryable 409s; events
            // that could never be valid are 400s.
            ServiceError::Stream(stream_error) => {
                if stream_error.is_conflict() {
                    ApiError::new(409, "stream_conflict", e.to_string())
                } else {
                    ApiError::new(400, "invalid_stream_event", e.to_string())
                }
            }
            ServiceError::UnknownStream { .. } => {
                ApiError::new(404, "unknown_stream", e.to_string())
            }
            ServiceError::StreamRace { .. } => ApiError::new(409, "stream_race", e.to_string()),
        }
    }
}

impl From<StoreError> for ApiError {
    fn from(e: StoreError) -> Self {
        match &e {
            StoreError::MissingSpec { .. } => ApiError::new(404, "unknown_spec", e.to_string()),
            StoreError::SpecVersionMismatch { .. } => {
                ApiError::new(409, "spec_version_mismatch", e.to_string())
            }
            StoreError::SpecConflict { .. } => ApiError::new(409, "spec_conflict", e.to_string()),
            StoreError::DuplicateRun { .. } => ApiError::new(409, "run_exists", e.to_string()),
        }
    }
}

impl From<SpTreeError> for ApiError {
    fn from(e: SpTreeError) -> Self {
        ApiError::new(400, "invalid_run", e.to_string())
    }
}

impl From<PersistError> for ApiError {
    fn from(e: PersistError) -> Self {
        // Every variant maps to 500 today, but the match stays exhaustive by
        // variant (WFL005): adding a PersistError variant must force the
        // author to decide its status here, not fall through silently.
        match &e {
            PersistError::Io { .. } => ApiError::new(500, "persist_failed", e.to_string()),
            PersistError::Json { .. } => ApiError::new(500, "persist_failed", e.to_string()),
            PersistError::Format { .. } => ApiError::new(500, "persist_failed", e.to_string()),
            PersistError::Tree { .. } => ApiError::new(500, "persist_failed", e.to_string()),
            PersistError::Store { .. } => ApiError::new(500, "persist_failed", e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_json_with_kind_and_message() {
        let e = ApiError::new(404, "unknown_spec", "unknown specification \"x\"");
        let body: ErrorBody = serde_json::from_str(&e.body()).unwrap();
        assert_eq!(body.kind, "unknown_spec");
        assert!(body.error.contains("unknown specification"));
    }

    #[test]
    fn service_errors_map_to_the_documented_statuses() {
        let e: ApiError = ServiceError::UnknownSpec("x".into()).into();
        assert_eq!((e.status, e.kind), (404, "unknown_spec"));
        let e: ApiError = ServiceError::UnknownRun { spec: "x".into(), run: "r".into() }.into();
        assert_eq!((e.status, e.kind), (404, "unknown_run"));
        let e: ApiError =
            ServiceError::Diff(DiffError::SpecVersionMismatch { spec: "x".into() }).into();
        assert_eq!((e.status, e.kind), (409, "spec_version_mismatch"));
        let e: ApiError =
            StoreError::SpecVersionMismatch { name: "x".into(), run: "r".into() }.into();
        assert_eq!(e.status, 409);
        let e: ApiError = StoreError::MissingSpec { name: "x".into() }.into();
        assert_eq!(e.status, 404);
    }

    #[test]
    fn stream_errors_split_into_conflicts_and_bad_requests() {
        use crate::stream::{NodeState, StreamError};
        // Conflict with the stream's current state: retryable 409.
        let e: ApiError = ServiceError::Stream(StreamError::DuplicateStart { node: 1 }).into();
        assert_eq!((e.status, e.kind), (409, "stream_conflict"));
        let e: ApiError =
            ServiceError::Stream(StreamError::NotActive { node: 1, state: NodeState::Completed })
                .into();
        assert_eq!((e.status, e.kind), (409, "stream_conflict"));
        // Structurally invalid event: permanent 400.
        let e: ApiError =
            ServiceError::Stream(StreamError::UnknownEdge { from: "a".into(), to: "b".into() })
                .into();
        assert_eq!((e.status, e.kind), (400, "invalid_stream_event"));
        let e: ApiError =
            ServiceError::UnknownStream { spec: "x".into(), stream: "s".into() }.into();
        assert_eq!((e.status, e.kind), (404, "unknown_stream"));
        let e: ApiError = ServiceError::StreamRace { spec: "x".into(), stream: "s".into() }.into();
        assert_eq!((e.status, e.kind), (409, "stream_race"));
    }
}
