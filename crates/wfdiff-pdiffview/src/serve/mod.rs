//! A networked front-end for the diff engine: a dependency-free, evented
//! HTTP/1.1 server over `std::net`, fronting one or more [`DiffService`]
//! shards (and through them the [`WorkflowStore`]s and their durable
//! directories).
//!
//! PDiffView is presented as an interactive *system* users point at a
//! provenance store; this module is the network layer — a process can load
//! a store directory (or a sharded set of them), warm the caches and serve
//! diff queries to remote clients (see the `wfdiff_serve` binary).
//!
//! # Architecture: readiness loop + worker pool
//!
//! One **reactor** thread owns every socket.  The listener and all
//! connections are non-blocking; the reactor accepts, reads, parses
//! incrementally ([`http::parse_request`]) and writes queued response bytes,
//! sleeping only when nothing made progress.  Complete requests are handed
//! to a pool of [`ServeConfig::threads`] **workers** that run the handlers
//! and render response bytes back to the reactor.
//!
//! The consequence — and the reason for the split — is that *connections no
//! longer pin workers*: a thousand idle keep-alive connections (or a client
//! dribbling a request one byte a second) cost a table slot each, while
//! every worker stays available for requests that have fully arrived.  The
//! concurrency bound is [`ServeConfig::max_connections`] open sockets and
//! [`ServeConfig::threads`] requests executing at once; further complete
//! requests queue in the job queue, further connections are answered `503`.
//!
//! # Sharding
//!
//! [`Server::bind_sharded`] serves N store shards behind one address: each
//! spec lives on the shard its name hashes to ([`shard::shard_of`]),
//! spec-addressed endpoints route to exactly one shard, and `/specs`,
//! `/healthz` and `/metrics` aggregate across all of them.  The single-store
//! [`Server::bind`] is the one-shard special case.
//!
//! # Endpoints
//!
//! | method & path            | body | response |
//! |--------------------------|------|----------|
//! | `GET /healthz`           | —    | store/pool summary, aggregated across shards |
//! | `GET /specs`             | —    | specification listing (all shards, sorted by name) |
//! | `GET /specs/{name}/runs` | —    | run names of one specification |
//! | `POST /runs`             | [`api::InsertRunRequest`] | insert (and durably append) a run |
//! | `POST /runs/stream`      | [`api::StreamEventsRequest`] | append node-lifecycle events to an in-flight stream; live drift verdict, optional finalize |
//! | `GET /runs/{spec}/{stream}/drift[?k[&seed]]` | — | drift verdict of an in-flight stream vs the cluster medoids |
//! | `DELETE /runs/{spec}/{stream}/stream` | — | drop a stuck in-flight stream (durable closure marker) |
//! | `GET /diff?spec&a&b`     | —    | one cache-backed edit distance |
//! | `POST /diff/batch`       | [`api::BatchDiffRequest`] | a pair list fanned onto the diff pool |
//! | `GET /cluster?spec&a&b[&separator]` | — | per-composite-module change summary |
//! | `GET /cluster?spec&algo=kmedoids&k[&seed]` | — | incremental k-medoids run clustering (medoids + silhouette) |
//! | `GET /similar?spec&run[&k]` | — | the `k` stored runs nearest to `run`, exact distances |
//! | `GET /metrics`           | —    | Prometheus text exposition ([`metrics`]) |
//!
//! All bodies are JSON (except `/metrics`, which is Prometheus text); every
//! store/diff/persist failure maps to a structured JSON error with a
//! 4xx/5xx status (see [`api`]) — nothing panics across the connection
//! boundary (handlers additionally run under `catch_unwind`, so even an
//! engine bug answers `500` instead of wedging a worker).
//!
//! # Limits
//!
//! * request head (request line + headers): [`http::MAX_HEAD_BYTES`],
//! * request body: [`ServeConfig::max_body_bytes`] (default
//!   [`DEFAULT_MAX_BODY_BYTES`]), enforced from `Content-Length` before the
//!   body has arrived — oversized requests get `413`,
//! * batch size: [`handlers::MAX_BATCH_PAIRS`] pairs per `POST /diff/batch`,
//! * open connections: [`ServeConfig::max_connections`]; beyond it new
//!   connections are answered `503` and closed,
//! * per-connection idle timeout: [`ServeConfig::read_timeout`]; a
//!   connection with no complete request and no response in flight is closed
//!   when it elapses.
//!
//! [`WorkflowStore`]: crate::store::WorkflowStore

pub mod api;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod shard;

pub use api::ApiError;
pub use handlers::AppState;
pub use metrics::ServeMetrics;
pub use shard::{ShardEntry, ShardRouter};

use crate::service::DiffService;
use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default request-body ceiling: 1 MiB.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// Default per-connection idle timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default ceiling on concurrently open connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// How long the reactor sleeps when a full pass over every socket made no
/// progress.  Worker completions cut the sleep short via a condvar, so
/// response latency does not pay the full tick.
const REACTOR_IDLE_WAIT: Duration = Duration::from_micros(500);

/// How long a shutting-down server waits for in-flight requests to finish
/// before closing their connections anyway.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Server configuration; `ServeConfig::default()` binds an ephemeral
/// loopback port with 4 workers and no persistence.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port; read the
    /// actual one from [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool size — the bound on concurrently *executing* requests
    /// (idle connections are free; see the module docs).  Clamped to at
    /// least 1.
    pub threads: usize,
    /// Request-body ceiling in bytes; larger bodies are answered with `413`.
    pub max_body_bytes: usize,
    /// Idle timeout per connection: a connection that has no request in
    /// flight and has been silent this long is closed.
    pub read_timeout: Duration,
    /// Ceiling on concurrently open connections; beyond it new connections
    /// are answered `503` and closed.
    pub max_connections: usize,
    /// When set (and the server is bound with [`Server::bind`]), `POST
    /// /runs` appends an atomic run document to this store directory via
    /// [`crate::store::WorkflowStore::append_run_to_dir`].  Sharded servers
    /// carry a directory per shard instead (see [`Server::bind_sharded`]).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            store_dir: None,
        }
    }
}

/// A bound (but not yet serving) diff server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServeConfig,
}

impl Server {
    /// Binds the configured address over a single service (a one-shard
    /// server).  The listener is live after `bind` returns (connections
    /// queue in the backlog); call [`Server::start`] to begin servicing
    /// them.
    pub fn bind(service: Arc<DiffService>, config: ServeConfig) -> std::io::Result<Server> {
        let router = ShardRouter::single(service, config.store_dir.clone());
        Server::bind_sharded(router, config)
    }

    /// Binds the configured address over a shard router.  Each shard keeps
    /// its own store directory (the router's per-shard `dir`);
    /// [`ServeConfig::store_dir`] is ignored on this path.
    pub fn bind_sharded(router: ShardRouter, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(AppState::new(router));
        Ok(Server { listener, state, config })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the reactor and the worker pool and returns a handle that can
    /// wait for or shut down the server.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared::new());
        let workers = self.config.threads.max(1);
        self.state.metrics().workers().set(workers as i64);

        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&self.state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("wfdiff-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &state))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&self.state);
            let listener = self.listener;
            let config = self.config;
            threads.push(
                std::thread::Builder::new()
                    .name("wfdiff-reactor".to_string())
                    .spawn(move || reactor_loop(&listener, &shared, &state, &config))?,
            );
        }
        Ok(ServerHandle { addr, shared, threads })
    }
}

/// A running server: joinable, shut-downable, addressable.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server exits (for a server that runs until the
    /// process is killed).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Stops accepting, lets in-flight requests finish (bounded by a grace
    /// period), closes every connection and joins all threads.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Sets the flag and wakes the reactor and every idle worker.
    fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.jobs_cv.notify_all();
        self.shared.reactor_cv.notify_all();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best effort: a dropped (not joined) handle still stops the
        // threads; join errors are irrelevant during unwinding.
        if !self.threads.is_empty() {
            self.request_shutdown();
            for t in self.threads.drain(..) {
                let _ = t.join();
            }
        }
    }
}

/// A complete request handed from the reactor to the worker pool.
struct Job {
    conn: usize,
    token: u64,
    request: http::Request,
    enqueued: Instant,
}

/// Rendered response bytes handed back from a worker to the reactor.
struct Done {
    conn: usize,
    token: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// State shared between the reactor and the worker pool.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    done: Mutex<Vec<Done>>,
    reactor_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn new() -> Self {
        Shared {
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            done: Mutex::new(Vec::new()),
            reactor_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_done(&self) -> std::sync::MutexGuard<'_, Vec<Done>> {
        self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One worker: pull a complete request, run the handler (under
/// `catch_unwind`), render the response bytes, hand them back.
fn worker_loop(shared: &Shared, state: &AppState) {
    loop {
        let job = {
            let mut queue = shared.lock_jobs();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue =
                    shared.jobs_cv.wait(queue).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let metrics = state.metrics();
        metrics.workers_busy().inc();
        let segments: Vec<&str> = job.request.segments.iter().map(String::as_str).collect();
        let endpoint = metrics::Endpoint::classify(&segments);
        // A panicking handler must not take the worker down with it: answer
        // 500 and carry on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handlers::dispatch(state, &job.request)
        }));
        let response = outcome.unwrap_or_else(|_| {
            let e = ApiError::new(500, "internal_panic", "handler panicked; see server log");
            handlers::Response::json(e.status, e.body())
        });
        metrics.observe_request(endpoint, response.status, job.enqueued.elapsed());
        metrics.workers_busy().dec();
        let keep_alive = job.request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let bytes = http::render_response(
            response.status,
            response.content_type,
            &response.body,
            keep_alive,
        );
        shared.lock_done().push(Done { conn: job.conn, token: job.token, bytes, keep_alive });
        shared.reactor_cv.notify_all();
    }
}

/// One connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// Generation token: a [`Done`] whose token mismatches is for an
    /// earlier connection that occupied the same slot, and is dropped.
    token: u64,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// Response bytes queued for writing.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Whether a request from this connection is queued or executing.
    in_flight: bool,
    close_after_write: bool,
    /// The client half-closed its sending side; buffered requests are still
    /// served (their responses can be written), then the connection closes.
    eof: bool,
    last_activity: Instant,
}

/// The reactor: owns the listener and every connection, never blocks on any
/// of them, and sleeps (briefly, interruptibly) only when a full pass made
/// no progress.
fn reactor_loop(listener: &TcpListener, shared: &Shared, state: &AppState, config: &ServeConfig) {
    let metrics = Arc::clone(state.metrics());
    let max_body = config.max_body_bytes;
    // The parser bounds how much buffered input one request may occupy; cap
    // reads just above it so a flooding client cannot grow the buffer past
    // what the parser will reject anyway.
    let read_cap = http::MAX_HEAD_BYTES + max_body + 1024;
    let max_conns = config.max_connections.max(1);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut active = 0usize;
    let mut next_token = 0u64;
    let mut chunk = vec![0u8; 16 * 1024];
    let mut shutdown_since: Option<Instant> = None;

    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        let now = Instant::now();
        let mut progress = false;

        // 1. Accept everything pending (unless shutting down).  The loop
        // exits via the WouldBlock/error arms once the backlog is empty.
        #[allow(clippy::while_immutable_condition)]
        while !shutting_down {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    metrics.connections_opened().inc();
                    if active >= max_conns {
                        // Over the table limit: answer 503 best-effort and
                        // close.  The client's request bytes are drained
                        // (briefly, bounded) before the drop so the close is
                        // an orderly FIN rather than a reset that could
                        // discard the 503 from the client's receive buffer.
                        metrics.connections_rejected().inc();
                        metrics.connections_closed().inc();
                        let e = ApiError::new(503, "overloaded", "connection table is full");
                        let bytes =
                            http::render_response(503, "application/json", &e.body(), false);
                        let mut s = stream;
                        let _ = s.write_all(&bytes);
                        let _ = s.set_read_timeout(Some(Duration::from_millis(20)));
                        let mut sink = [0u8; 4096];
                        for _ in 0..8 {
                            match s.read(&mut sink) {
                                Ok(n) if n > 0 => continue,
                                _ => break,
                            }
                        }
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        metrics.connections_closed().inc();
                        continue;
                    }
                    next_token += 1;
                    let conn = Conn {
                        stream,
                        token: next_token,
                        buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        in_flight: false,
                        close_after_write: false,
                        eof: false,
                        last_activity: now,
                    };
                    let slot = free.pop().unwrap_or_else(|| {
                        conns.push(None);
                        conns.len() - 1
                    });
                    conns[slot] = Some(conn);
                    active += 1;
                    metrics.connections_active().inc();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break, // transient (e.g. fd exhaustion); retry next tick
            }
        }

        // 2. Drain finished responses onto their connections' write buffers.
        let done: Vec<Done> = std::mem::take(&mut *shared.lock_done());
        for d in done {
            progress = true;
            metrics.requests_in_flight().dec();
            if let Some(conn) = conns.get_mut(d.conn).and_then(Option::as_mut) {
                if conn.token == d.token {
                    conn.write_buf = d.bytes;
                    conn.write_pos = 0;
                    conn.in_flight = false;
                    conn.close_after_write = !d.keep_alive;
                    conn.last_activity = now;
                }
            }
        }

        // 3. Per-connection I/O: flush writes, then read + parse + dispatch.
        for (id, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else { continue };
            let mut close = false;

            // Writes first: a queued response gets out before anything else.
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        metrics.bytes_written().add(n as u64);
                        conn.last_activity = now;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && conn.write_pos == conn.write_buf.len() && !conn.write_buf.is_empty() {
                conn.write_buf = Vec::new();
                conn.write_pos = 0;
                if conn.close_after_write {
                    close = true;
                }
            }

            // Read only while nothing is pending on this connection: a
            // client that pipelines (or floods) waits for its own previous
            // response instead of ballooning the job queue.
            if !close && !conn.in_flight && conn.write_buf.is_empty() && !shutting_down {
                while !conn.eof {
                    if conn.buf.len() >= read_cap {
                        break;
                    }
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            // Half-close: no more requests will arrive, but
                            // whatever is buffered is still served below.
                            conn.eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.buf.extend_from_slice(&chunk[..n]);
                            metrics.bytes_read().add(n as u64);
                            conn.last_activity = now;
                            progress = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            close = true;
                            break;
                        }
                    }
                }
                if !close && !conn.buf.is_empty() {
                    match http::parse_request(&conn.buf, max_body) {
                        Ok(http::ParseOutcome::Incomplete) => {}
                        Ok(http::ParseOutcome::Complete { request, consumed }) => {
                            conn.buf.drain(..consumed);
                            conn.in_flight = true;
                            metrics.requests_in_flight().inc();
                            shared.lock_jobs().push_back(Job {
                                conn: id,
                                token: conn.token,
                                request,
                                enqueued: now,
                            });
                            shared.jobs_cv.notify_one();
                            progress = true;
                        }
                        Err(http::ParseError { status, message }) => {
                            // Framing is unreliable after a parse failure:
                            // answer and close.
                            let e = ApiError::new(status, "malformed_request", message);
                            conn.write_buf =
                                http::render_response(status, "application/json", &e.body(), false);
                            conn.write_pos = 0;
                            conn.close_after_write = true;
                            conn.buf.clear();
                            progress = true;
                        }
                    }
                }
                // After EOF, once nothing is queued and nothing remains to
                // write, the connection is spent (leftover bytes that never
                // parsed into a request can never complete).
                if !close && conn.eof && !conn.in_flight && conn.write_buf.is_empty() {
                    close = true;
                }
            }

            // Idle timeout: nothing in flight, nothing to write, silent too
            // long.  (A connection waiting on its own response is exempt.)
            if !close
                && !conn.in_flight
                && conn.write_buf.is_empty()
                && now.duration_since(conn.last_activity) > config.read_timeout
            {
                close = true;
            }

            if close {
                *slot = None;
                free.push(id);
                active -= 1;
                metrics.connections_closed().inc();
                metrics.connections_active().dec();
            }
        }

        // 4. Shutdown: stop accepting (done above), let in-flight requests
        // drain within the grace period, then close everything and exit.
        if shutting_down {
            let since = *shutdown_since.get_or_insert(now);
            let pending = conns.iter().flatten().any(|c| c.in_flight || conn_has_unwritten(c));
            if !pending || now.duration_since(since) > SHUTDOWN_GRACE {
                for conn in conns.iter_mut() {
                    if conn.take().is_some() {
                        metrics.connections_closed().inc();
                        metrics.connections_active().dec();
                    }
                }
                // Idle workers may still be waiting; the flag is set, wake
                // them so they exit.
                shared.jobs_cv.notify_all();
                return;
            }
        }

        // 5. Nothing moved: sleep until a worker finishes or the tick ends.
        if !progress {
            let guard = shared.lock_done();
            if guard.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                let _ = shared
                    .reactor_cv
                    .wait_timeout(guard, REACTOR_IDLE_WAIT)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

/// Whether a connection still has response bytes to flush.
fn conn_has_unwritten(c: &Conn) -> bool {
    c.write_pos < c.write_buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::WorkflowStore;
    use std::io::{Read, Write};
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    fn started_server() -> ServerHandle {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        let service = Arc::new(DiffService::new(store));
        let config = ServeConfig { threads: 2, ..ServeConfig::default() };
        Server::bind(service, config).unwrap().start().unwrap()
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        // A reset after partial delivery still yields the delivered bytes;
        // the caller's assertion reports whatever arrived.
        let _ = stream.read_to_string(&mut out);
        out
    }

    /// Reads exactly one `Content-Length`-framed response off a keep-alive
    /// connection and returns its body.
    fn read_one_response(reader: &mut impl std::io::BufRead) -> String {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        String::from_utf8(body).unwrap()
    }

    #[test]
    fn server_answers_over_a_real_socket_and_shuts_down() {
        let handle = started_server();
        let addr = handle.addr();
        let response = raw_request(
            addr,
            "GET /diff?spec=fig2&a=r1&b=r2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"distance\":4.0"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_not_a_hang() {
        let handle = started_server();
        let addr = handle.addr();
        let response = raw_request(addr, "BROKEN\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        let response = raw_request(addr, "GET / HTTP/0.9\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 505"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_head_limit() {
        let handle = started_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // A request line that never ends: the server must answer 431 once
        // the head budget is exhausted, not buffer the stream unboundedly.
        // Just over the limit is sent (it fits the socket buffers without
        // blocking), then the flood stops so the server's response is not
        // lost to a reset.
        let chunk = [b'a'; 4096];
        let mut sent = 0usize;
        while sent <= http::MAX_HEAD_BYTES {
            match stream.write_all(&chunk) {
                Ok(()) => sent += chunk.len(),
                Err(_) => break,
            }
        }
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let handle = started_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let body = read_one_response(&mut reader);
            assert!(body.contains("\"ok\""), "{body}");
        }
        drop(stream);
        handle.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let handle = started_server();
        let addr = handle.addr();
        // Generate some traffic first so counters are non-zero.
        let _ = raw_request(
            addr,
            "GET /diff?spec=fig2&a=r1&b=r2 HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let response = raw_request(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("Content-Type: text/plain"), "{response}");
        assert!(response.contains("# TYPE wfdiff_http_requests_total counter"), "{response}");
        assert!(
            response.contains("wfdiff_http_requests_total{endpoint=\"diff\",code=\"2xx\"} 1"),
            "{response}"
        );
        assert!(response.contains("wfdiff_diff_cache_misses_total{shard=\"0\"}"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn connection_table_overflow_answers_503() {
        let store = Arc::new(WorkflowStore::new());
        let service = Arc::new(DiffService::new(store));
        let config = ServeConfig { threads: 1, max_connections: 2, ..ServeConfig::default() };
        let handle = Server::bind(service, config).unwrap().start().unwrap();
        let addr = handle.addr();
        // Two idle connections fill the table (give the reactor a moment to
        // accept them), then a third is refused.
        let _a = TcpStream::connect(addr).unwrap();
        let _b = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let response = loop {
            let r = raw_request(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            if r.starts_with("HTTP/1.1 503") || Instant::now() > deadline {
                break r;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        handle.shutdown();
    }
}
