//! A networked front-end for the diff engine: a dependency-free HTTP/1.1
//! server over `std::net::TcpListener` with a bounded worker pool, fronting
//! a [`DiffService`] (and through it the [`WorkflowStore`] and its durable
//! directory).
//!
//! PDiffView is presented as an interactive *system* users point at a
//! provenance store; this module is the missing network layer — a process
//! can load a store directory, warm the cache and serve diff queries to
//! remote clients (see the `wfdiff_serve` binary).
//!
//! # Endpoints
//!
//! | method & path            | body | response |
//! |--------------------------|------|----------|
//! | `GET /healthz`           | —    | store/pool summary |
//! | `GET /specs`             | —    | specification listing with version fingerprints |
//! | `GET /specs/{name}/runs` | —    | run names of one specification |
//! | `POST /runs`             | [`api::InsertRunRequest`] | insert (and durably append) a run |
//! | `GET /diff?spec&a&b`     | —    | one cache-backed edit distance |
//! | `POST /diff/batch`       | [`api::BatchDiffRequest`] | a pair list fanned onto the worker pool |
//! | `GET /cluster?spec&a&b[&separator]` | — | per-composite-module change summary |
//! | `GET /cluster?spec&algo=kmedoids&k[&seed]` | — | incremental k-medoids run clustering (medoids + silhouette) |
//! | `GET /similar?spec&run[&k]` | — | the `k` stored runs nearest to `run`, exact distances |
//!
//! All bodies are JSON; every store/diff/persist failure maps to a
//! structured JSON error with a 4xx/5xx status (see [`api`]) — nothing
//! panics across the connection boundary (handlers additionally run under
//! `catch_unwind`, so even an engine bug answers `500` instead of wedging
//! the connection).
//!
//! # Limits
//!
//! * request head (request line + headers): [`http::MAX_HEAD_BYTES`],
//! * request body: [`ServeConfig::max_body_bytes`] (default
//!   [`DEFAULT_MAX_BODY_BYTES`]), enforced from `Content-Length` before any
//!   body byte is read — oversized requests get `413`,
//! * batch size: [`handlers::MAX_BATCH_PAIRS`] pairs per `POST /diff/batch`,
//! * concurrency: at most [`ServeConfig::threads`] connections are serviced
//!   at once (the pool **is** the bound — further connections wait in the
//!   OS accept backlog),
//! * per-connection read timeout: [`ServeConfig::read_timeout`]; idle
//!   keep-alive connections are closed when it elapses.
//!
//! [`WorkflowStore`]: crate::store::WorkflowStore

pub mod api;
pub mod handlers;
pub mod http;

pub use api::ApiError;
pub use handlers::AppState;

use crate::service::DiffService;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default request-body ceiling: 1 MiB.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// Default per-connection read timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Server configuration; `ServeConfig::default()` binds an ephemeral
/// loopback port with 4 workers and no persistence.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port; read the
    /// actual one from [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool size — the bound on concurrently serviced connections.
    /// Clamped to at least 1.
    pub threads: usize,
    /// Request-body ceiling in bytes; larger bodies are answered with `413`.
    pub max_body_bytes: usize,
    /// Read timeout per connection; an idle keep-alive connection is closed
    /// when it elapses.
    pub read_timeout: Duration,
    /// When set, `POST /runs` appends an atomic run document to this store
    /// directory (the one the store was loaded from) via
    /// [`crate::store::WorkflowStore::append_run_to_dir`].
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: DEFAULT_READ_TIMEOUT,
            store_dir: None,
        }
    }
}

/// A bound (but not yet serving) diff server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    config: ServeConfig,
}

impl Server {
    /// Binds the configured address over `service`.  The listener is live
    /// after `bind` returns (connections queue in the backlog); call
    /// [`Server::start`] to begin servicing them.
    pub fn bind(service: Arc<DiffService>, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(AppState { service, store_dir: config.store_dir.clone() });
        Ok(Server { listener, state, config })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the worker pool and returns a handle that can wait for or
    /// shut down the server.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let listener = Arc::new(self.listener);
        let workers = (0..self.config.threads.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let state = Arc::clone(&self.state);
                let shutdown = Arc::clone(&shutdown);
                let max_body = self.config.max_body_bytes;
                let timeout = self.config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("wfdiff-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &state, &shutdown, max_body, timeout))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServerHandle { addr, shutdown, workers })
    }
}

/// A running server: joinable, shut-downable, addressable.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every worker exits (for a server that runs until the
    /// process is killed).
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stops accepting, wakes blocked workers and joins them.  In-flight
    /// requests finish; idle keep-alive connections are dropped the next
    /// time their worker checks the flag (at the latest when their read
    /// timeout elapses).
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Sets the flag and unblocks every worker that sits in `accept`.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            // A throw-away connection per worker wakes the blocking accepts;
            // workers re-check the flag before servicing it.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best effort: a dropped (not joined) handle still stops the
        // workers; join errors are irrelevant during unwinding.
        if !self.workers.is_empty() {
            self.request_shutdown();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// One worker: accept, service the connection to completion, repeat.
fn worker_loop(
    listener: &TcpListener,
    state: &AppState,
    shutdown: &AtomicBool,
    max_body: usize,
    timeout: Duration,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Connection-level failures (reset, timeout) only end this
                // connection; the worker keeps serving.
                let _ = handle_connection(stream, state, max_body, timeout, shutdown);
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. fd exhaustion): back off
                // briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Services one connection: a keep-alive loop of read → route → respond.
fn handle_connection(
    stream: TcpStream,
    state: &AppState,
    max_body: usize,
    timeout: Duration,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, max_body) {
            Ok(req) => {
                // A panicking handler must not take the connection (or the
                // worker) down with it: answer 500 and carry on.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handlers::route(state, &req)
                }));
                let (status, body) = outcome.unwrap_or_else(|_| {
                    let e =
                        ApiError::new(500, "internal_panic", "handler panicked; see server log");
                    (e.status, e.body())
                });
                let keep_alive = req.keep_alive && !shutdown.load(Ordering::SeqCst);
                http::write_json_response(&mut writer, status, &body, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(http::RequestError::Closed) => return Ok(()),
            Err(http::RequestError::Io(e)) => return Err(e),
            Err(http::RequestError::Bad { status, message }) => {
                let e = ApiError::new(status, "malformed_request", message);
                // Framing is unreliable after a malformed request: close.
                http::write_json_response(&mut writer, status, &e.body(), false)?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::WorkflowStore;
    use std::io::{Read, Write};
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    fn started_server() -> ServerHandle {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        let service = Arc::new(DiffService::new(store));
        let config = ServeConfig { threads: 2, ..ServeConfig::default() };
        Server::bind(service, config).unwrap().start().unwrap()
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn server_answers_over_a_real_socket_and_shuts_down() {
        let handle = started_server();
        let addr = handle.addr();
        let response = raw_request(
            addr,
            "GET /diff?spec=fig2&a=r1&b=r2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"distance\":4.0"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_not_a_hang() {
        let handle = started_server();
        let addr = handle.addr();
        let response = raw_request(addr, "BROKEN\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        let response = raw_request(addr, "GET / HTTP/0.9\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 505"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_head_limit() {
        let handle = started_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // A request line that never ends: the server must answer 431 once
        // the head budget is exhausted, not buffer the stream unboundedly.
        // Just over the limit is sent (it fits the socket buffers without
        // blocking), then the flood stops so the server's response is not
        // lost to a reset.
        let chunk = [b'a'; 4096];
        let mut sent = 0usize;
        while sent <= http::MAX_HEAD_BYTES {
            match stream.write_all(&chunk) {
                Ok(()) => sent += chunk.len(),
                Err(_) => break,
            }
        }
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let handle = started_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let body = read_one_response(&mut reader);
            assert!(body.contains("\"ok\""), "{body}");
        }
        drop(stream);
        handle.shutdown();
    }

    /// Reads one `Content-Length`-framed response and returns its body.
    fn read_one_response(reader: &mut std::io::BufReader<TcpStream>) -> String {
        use std::io::BufRead;
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 "), "{line}");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).unwrap();
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        String::from_utf8(body).unwrap()
    }
}
