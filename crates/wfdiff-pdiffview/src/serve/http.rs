//! Minimal, dependency-free HTTP/1.1 framing for the diff server.
//!
//! Only the subset the server needs is implemented — request-line + header
//! parsing, `Content-Length` bodies, percent-decoding of paths and query
//! strings, and JSON response writing — with hard limits so a hostile or
//! broken client can never make the server allocate without bound:
//!
//! * the request line and headers together may not exceed
//!   [`MAX_HEAD_BYTES`] (16 KiB),
//! * bodies are capped by the server's configured maximum (see
//!   [`crate::serve::ServeConfig::max_body_bytes`]); larger `Content-Length`
//!   values are rejected with `413 Payload Too Large` before any body byte
//!   is read,
//! * `Transfer-Encoding: chunked` is not supported and is rejected with
//!   `501 Not Implemented`.
//!
//! Every parse failure maps to a status code and a message; nothing in this
//! module panics on malformed input.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all header lines, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// The undecoded path component of the request target (no query string).
    pub raw_path: String,
    /// Percent-decoded path segments (`/specs/my%20spec/runs` →
    /// `["specs", "my spec", "runs"]`).
    pub segments: Vec<String>,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why reading a request off a connection failed.
#[derive(Debug)]
pub enum RequestError {
    /// The client closed the connection before sending a request — the
    /// normal end of a keep-alive session, not an error.
    Closed,
    /// The socket failed or timed out mid-request.
    Io(std::io::Error),
    /// The request was malformed; respond with `status` and close.
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable description of the defect.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> RequestError {
    RequestError::Bad { status, message: message.into() }
}

/// Reads one request from the connection, enforcing the head and body limits.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<Request, RequestError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes)? {
        Some(line) => line,
        None => return Err(RequestError::Closed),
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or_else(|| bad(400, "request line has no target"))?;
    let version = parts.next().ok_or_else(|| bad(400, "request line has no HTTP version"))?;
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(bad(400, format!("malformed method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(505, format!("unsupported protocol version {version:?}")));
    }

    // Headers: only the few the server acts on are interpreted.
    let mut content_length: Option<usize> = None;
    let mut connection = String::new();
    let mut chunked = false;
    loop {
        let line = match read_line(reader, &mut head_bytes)? {
            Some(line) => line,
            None => return Err(bad(400, "connection closed mid-headers")),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| bad(400, format!("unparsable Content-Length {value:?}")))?;
                content_length = Some(n);
            }
            "connection" => connection = value.to_ascii_lowercase(),
            "transfer-encoding" => chunked = true,
            _ => {}
        }
    }
    if chunked {
        return Err(bad(501, "Transfer-Encoding is not supported; send Content-Length"));
    }

    // Body, bounded before a single byte is read.
    let body = match content_length {
        None | Some(0) => String::new(),
        Some(n) if n > max_body_bytes => {
            return Err(bad(
                413,
                format!("body of {n} bytes exceeds the limit of {max_body_bytes} bytes"),
            ));
        }
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf).map_err(RequestError::Io)?;
            String::from_utf8(buf).map_err(|_| bad(400, "request body is not valid UTF-8"))?
        }
    };

    // Split the target into path and query, decoding both.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let segments = raw_path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| percent_decode(s, false))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| bad(400, format!("malformed path escape: {e}")))?;
    let query =
        parse_query(raw_query).map_err(|e| bad(400, format!("malformed query string: {e}")))?;

    let keep_alive = match version {
        "HTTP/1.0" => connection == "keep-alive",
        _ => connection != "close",
    };
    Ok(Request { method, raw_path, segments, query, body, keep_alive })
}

/// Reads one CRLF-terminated line, counting it against [`MAX_HEAD_BYTES`].
/// Returns `None` on a clean EOF before any byte of the line.
///
/// The limit is enforced *while* reading — a newline-free byte stream is
/// rejected as soon as the head budget is exhausted, never buffered whole
/// (`BufRead::read_line` would accumulate it unboundedly first).
fn read_line(
    reader: &mut BufReader<TcpStream>,
    head_bytes: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(RequestError::Io)?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(bad(400, "connection closed mid-line"));
        }
        let (take, complete) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (buf.len(), false),
        };
        if *head_bytes + line.len() + take > MAX_HEAD_BYTES {
            return Err(bad(431, format!("request head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if complete {
            break;
        }
    }
    *head_bytes += line.len();
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map(Some).map_err(|_| bad(400, "request head is not valid UTF-8"))
}

/// Decodes `%XX` escapes (and, inside query strings, `+` as space).
fn percent_decode(s: &str, plus_is_space: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated %-escape in {s:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII %-escape".to_string())?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("invalid %-escape %{hex} in {s:?}"))?;
                out.push(byte);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("%-escapes in {s:?} decode to invalid UTF-8"))
}

/// Parses `a=1&b=two%20words` into decoded key/value pairs.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// The standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a JSON response with `Content-Length` framing.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_covers_escapes_and_plus() {
        assert_eq!(percent_decode("my%20spec", false).unwrap(), "my spec");
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert_eq!(percent_decode("%E2%9C%93", false).unwrap(), "✓");
        assert!(percent_decode("%zz", false).is_err());
        assert!(percent_decode("%2", false).is_err());
        assert!(percent_decode("%ff", false).is_err(), "lone 0xff is not UTF-8");
    }

    #[test]
    fn query_strings_parse_in_order() {
        let q = parse_query("spec=fig2&a=r1&b=r%202&flag").unwrap();
        assert_eq!(
            q,
            vec![
                ("spec".to_string(), "fig2".to_string()),
                ("a".to_string(), "r1".to_string()),
                ("b".to_string(), "r 2".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for status in [200, 201, 400, 404, 405, 409, 413, 431, 500, 501, 505] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
    }
}
