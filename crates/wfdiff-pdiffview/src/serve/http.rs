//! Minimal, dependency-free HTTP/1.1 framing for the diff server.
//!
//! Only the subset the server needs is implemented — request-line + header
//! parsing, `Content-Length` bodies, percent-decoding of paths and query
//! strings, and response rendering — with hard limits so a hostile or
//! broken client can never make the server allocate without bound:
//!
//! * the request line and headers together may not exceed
//!   [`MAX_HEAD_BYTES`] (16 KiB),
//! * bodies are capped by the server's configured maximum (see
//!   [`crate::serve::ServeConfig::max_body_bytes`]); larger `Content-Length`
//!   values are rejected with `413 Payload Too Large` before the body has
//!   arrived,
//! * `Transfer-Encoding: chunked` is not supported and is rejected with
//!   `501 Not Implemented`.
//!
//! Parsing is **incremental**: [`parse_request`] looks at whatever bytes the
//! readiness loop has buffered so far and either returns a complete request
//! (with the number of bytes it consumed, so pipelined bytes behind it stay
//! in the buffer), asks for more ([`ParseOutcome::Incomplete`]), or fails
//! with a status code.  Nothing in this module blocks or touches a socket,
//! which is what lets one reactor thread own thousands of connections.
//!
//! Every parse failure maps to a status code and a message; nothing in this
//! module panics on malformed input.

/// Upper bound on the request line plus all header lines, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// The undecoded path component of the request target (no query string).
    pub raw_path: String,
    /// Percent-decoded path segments (`/specs/my%20spec/runs` →
    /// `["specs", "my spec", "runs"]`).
    pub segments: Vec<String>,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A malformed request: respond with `status` and close the connection
/// (framing is unreliable after a parse failure).
#[derive(Debug)]
pub struct ParseError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable description of the defect.
    pub message: String,
}

fn bad(status: u16, message: impl Into<String>) -> ParseError {
    ParseError { status, message: message.into() }
}

/// What [`parse_request`] found in the buffer.
#[derive(Debug)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a complete request; read more bytes.
    Incomplete,
    /// One complete request, and how many buffer bytes it occupied (the
    /// caller drains exactly that many — pipelined bytes behind it remain).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed (head + body).
        consumed: usize,
    },
}

/// Parses one request from the front of `buf` without consuming it.
///
/// The head limit is enforced on whatever has arrived: a newline-free flood
/// is rejected with `431` as soon as [`MAX_HEAD_BYTES`] are buffered, and an
/// oversized `Content-Length` with `413` as soon as the head completes —
/// neither waits for the client to finish sending.
pub fn parse_request(buf: &[u8], max_body_bytes: usize) -> Result<ParseOutcome, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(bad(431, format!("request head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        return Ok(ParseOutcome::Incomplete);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(bad(431, format!("request head exceeds {MAX_HEAD_BYTES} bytes")));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or_else(|| bad(400, "request line has no target"))?;
    let version = parts.next().ok_or_else(|| bad(400, "request line has no HTTP version"))?;
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(bad(400, format!("malformed method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(505, format!("unsupported protocol version {version:?}")));
    }

    // Headers: only the few the server acts on are interpreted.
    let mut content_length: Option<usize> = None;
    let mut connection = String::new();
    let mut chunked = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| bad(400, format!("unparsable Content-Length {value:?}")))?;
                content_length = Some(n);
            }
            "connection" => connection = value.to_ascii_lowercase(),
            "transfer-encoding" => chunked = true,
            _ => {}
        }
    }
    if chunked {
        return Err(bad(501, "Transfer-Encoding is not supported; send Content-Length"));
    }

    // Body, bounded before it has arrived.
    let body_len = content_length.unwrap_or(0);
    if body_len > max_body_bytes {
        return Err(bad(
            413,
            format!("body of {body_len} bytes exceeds the limit of {max_body_bytes} bytes"),
        ));
    }
    if buf.len() < head_end + body_len {
        return Ok(ParseOutcome::Incomplete);
    }
    let body = if body_len == 0 {
        String::new()
    } else {
        String::from_utf8(buf[head_end..head_end + body_len].to_vec())
            .map_err(|_| bad(400, "request body is not valid UTF-8"))?
    };

    // Split the target into path and query, decoding both.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let segments = raw_path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| percent_decode(s, false))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| bad(400, format!("malformed path escape: {e}")))?;
    let query =
        parse_query(raw_query).map_err(|e| bad(400, format!("malformed query string: {e}")))?;

    let keep_alive = match version {
        "HTTP/1.0" => connection == "keep-alive",
        _ => connection != "close",
    };
    let request = Request { method, raw_path, segments, query, body, keep_alive };
    Ok(ParseOutcome::Complete { request, consumed: head_end + body_len })
}

/// The index one past the blank line that terminates the request head, if a
/// complete head is buffered.  Both CRLF and bare-LF line endings are
/// tolerated, matching the line-based parser.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut start = 0;
    while start < buf.len() {
        let pos = buf[start..].iter().position(|&b| b == b'\n')?;
        let line = &buf[start..start + pos];
        let line = if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
        if line.is_empty() {
            return Some(start + pos + 1);
        }
        start += pos + 1;
    }
    None
}

/// Decodes `%XX` escapes (and, inside query strings, `+` as space).
fn percent_decode(s: &str, plus_is_space: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated %-escape in {s:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII %-escape".to_string())?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("invalid %-escape %{hex} in {s:?}"))?;
                out.push(byte);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("%-escapes in {s:?} decode to invalid UTF-8"))
}

/// Parses `a=1&b=two%20words` into decoded key/value pairs.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// The standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Renders a full response (status line, headers, body) as bytes for the
/// readiness loop to queue on a connection's write buffer.
pub fn render_response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf, 1024).unwrap() {
            ParseOutcome::Complete { request, consumed } => (request, consumed),
            ParseOutcome::Incomplete => panic!("expected a complete request"),
        }
    }

    #[test]
    fn requests_parse_incrementally() {
        let full = b"GET /diff?spec=fig2&a=r1&b=r2 HTTP/1.1\r\nHost: x\r\n\r\n";
        // Every proper prefix is incomplete; the full buffer parses.
        for cut in 0..full.len() {
            assert!(
                matches!(parse_request(&full[..cut], 1024).unwrap(), ParseOutcome::Incomplete),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (req, consumed) = complete(full);
        assert_eq!(consumed, full.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.segments, vec!["diff"]);
        assert_eq!(req.query_param("spec"), Some("fig2"));
        assert!(req.keep_alive);
    }

    #[test]
    fn pipelined_requests_consume_only_their_own_bytes() {
        let one = b"GET /healthz HTTP/1.1\r\n\r\n";
        let mut buf = Vec::new();
        buf.extend_from_slice(one);
        buf.extend_from_slice(b"GET /specs HTTP/1.1\r\n\r\n");
        let (req, consumed) = complete(&buf);
        assert_eq!(req.segments, vec!["healthz"]);
        assert_eq!(consumed, one.len());
        let (req2, _) = complete(&buf[consumed..]);
        assert_eq!(req2.segments, vec!["specs"]);
    }

    #[test]
    fn bodies_wait_for_content_length_and_are_bounded() {
        let head = b"POST /runs HTTP/1.1\r\nContent-Length: 5\r\n\r\n";
        let mut buf = head.to_vec();
        buf.extend_from_slice(b"he");
        assert!(matches!(parse_request(&buf, 1024).unwrap(), ParseOutcome::Incomplete));
        buf.extend_from_slice(b"llo");
        let (req, consumed) = complete(&buf);
        assert_eq!(req.body, "hello");
        assert_eq!(consumed, buf.len());
        // Oversized Content-Length fails before the body arrives.
        let huge = b"POST /runs HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        let err = parse_request(huge, 1024).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn malformed_requests_map_to_statuses() {
        assert_eq!(parse_request(b"BROKEN\r\n\r\n", 1024).unwrap_err().status, 400);
        assert_eq!(parse_request(b"GET / HTTP/0.9\r\n\r\n", 1024).unwrap_err().status, 505);
        assert_eq!(parse_request(b"get / HTTP/1.1\r\n\r\n", 1024).unwrap_err().status, 400);
        let chunked = b"POST /runs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse_request(chunked, 1024).unwrap_err().status, 501);
        let flood = vec![b'a'; MAX_HEAD_BYTES];
        assert_eq!(parse_request(&flood, 1024).unwrap_err().status, 431);
        let under = vec![b'a'; MAX_HEAD_BYTES - 1];
        assert!(matches!(parse_request(&under, 1024).unwrap(), ParseOutcome::Incomplete));
    }

    #[test]
    fn bare_lf_heads_and_http10_close_semantics() {
        let (req, _) = complete(b"GET /healthz HTTP/1.0\nConnection: keep-alive\n\n");
        assert_eq!(req.segments, vec!["healthz"]);
        assert!(req.keep_alive, "HTTP/1.0 keeps alive only when asked");
        let (req, _) = complete(b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = complete(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
    }

    #[test]
    fn percent_decoding_covers_escapes_and_plus() {
        assert_eq!(percent_decode("my%20spec", false).unwrap(), "my spec");
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert_eq!(percent_decode("%E2%9C%93", false).unwrap(), "✓");
        assert!(percent_decode("%zz", false).is_err());
        assert!(percent_decode("%2", false).is_err());
        assert!(percent_decode("%ff", false).is_err(), "lone 0xff is not UTF-8");
    }

    #[test]
    fn query_strings_parse_in_order() {
        let q = parse_query("spec=fig2&a=r1&b=r%202&flag").unwrap();
        assert_eq!(
            q,
            vec![
                ("spec".to_string(), "fig2".to_string()),
                ("a".to_string(), "r1".to_string()),
                ("b".to_string(), "r 2".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for status in [200, 201, 400, 404, 405, 409, 413, 431, 500, 501, 503, 505] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
    }

    #[test]
    fn responses_render_with_content_length_framing() {
        let bytes = render_response(200, "application/json", "{\"ok\":1}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":1}"), "{text}");
    }
}
