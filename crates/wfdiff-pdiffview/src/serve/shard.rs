//! Spec-to-shard routing: partitioning a store across N `WorkflowStore`
//! shards and aggregating cross-shard views.
//!
//! A shard is one [`DiffService`] (and through it one [`WorkflowStore`]
//! with its own durable directory and `cluster_cache.json`).  Requests that address a single
//! specification are routed by a stable hash of the spec name
//! ([`shard_of`], FNV-1a 64); `/specs`, `/healthz` and `/metrics` aggregate
//! across every shard.
//!
//! The hash only decides where *new* specs land.  At boot the router records
//! where each spec actually lives (whatever directory it was loaded from),
//! so hand-placed or historically mislocated specs stay reachable — routing
//! never depends on every store having been written by the same hash.

use crate::persist::{PersistError, SaveSummary};
use crate::service::DiffService;
use crate::store::WorkflowStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Prefix of per-shard subdirectories inside a sharded store root.
pub const SHARD_DIR_PREFIX: &str = "shard-";

/// The subdirectory name of shard `i` (`shard-000`, `shard-001`, ...).
pub fn shard_dir_name(i: usize) -> String {
    format!("{SHARD_DIR_PREFIX}{i:03}")
}

/// FNV-1a 64-bit hash — the stable spec-routing hash.  Deliberately simple
/// and dependency-free; its value for a given name must never change, or
/// existing sharded stores would misroute (see `docs/OPERATIONS.md`).
pub fn fnv1a_64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard index a spec name hashes to, for `n` shards.
pub fn shard_of(spec: &str, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (fnv1a_64(spec) % n as u64) as usize
}

/// Detects a sharded store layout: the `shard-NNN` subdirectories of
/// `root`, sorted by index.  An empty vector means `root` is (or will be) a
/// plain single-store directory.
pub fn detect_shard_dirs(root: impl AsRef<Path>) -> Vec<PathBuf> {
    let root = root.as_ref();
    let mut found: Vec<(usize, PathBuf)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name.strip_prefix(SHARD_DIR_PREFIX) else { continue };
        let Ok(index) = index.parse::<usize>() else { continue };
        if entry.path().is_dir() {
            found.push((index, entry.path()));
        }
    }
    found.sort();
    found.into_iter().map(|(_, p)| p).collect()
}

/// One shard: its diff service and, when persistent, its store directory.
pub struct ShardEntry {
    service: Arc<DiffService>,
    dir: Option<PathBuf>,
}

impl ShardEntry {
    /// Creates a shard entry.
    pub fn new(service: Arc<DiffService>, dir: Option<PathBuf>) -> Self {
        ShardEntry { service, dir }
    }

    /// The shard's diff service.
    pub fn service(&self) -> &Arc<DiffService> {
        &self.service
    }

    /// The shard's durable store directory, when it persists.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// Routes spec-addressed requests to their shard and aggregates cross-shard
/// views.  Immutable after construction — request handling shares it behind
/// an `Arc` without any locking.
pub struct ShardRouter {
    shards: Vec<ShardEntry>,
    /// Specs that live somewhere other than where the hash would place
    /// them, recorded at boot from actual store contents.
    overrides: BTreeMap<String, usize>,
}

impl ShardRouter {
    /// Builds a router over the given shards.  Every spec already present
    /// in a shard's store is pinned to that shard (first shard wins on
    /// duplicates), so routing matches reality regardless of how the
    /// directories were populated; specs created later land by hash.
    pub fn new(shards: Vec<ShardEntry>) -> Self {
        assert!(!shards.is_empty(), "a router needs at least one shard");
        let n = shards.len();
        let mut overrides = BTreeMap::new();
        for (i, shard) in shards.iter().enumerate() {
            for name in shard.service().store().spec_names() {
                if shard_of(&name, n) != i {
                    overrides.entry(name).or_insert(i);
                }
            }
        }
        ShardRouter { shards, overrides }
    }

    /// A single-shard router — the unsharded server, unchanged semantics.
    pub fn single(service: Arc<DiffService>, dir: Option<PathBuf>) -> Self {
        ShardRouter::new(vec![ShardEntry::new(service, dir)])
    }

    /// Number of shards.
    #[allow(clippy::len_without_is_empty)] // a router is never empty
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// The shard index responsible for a spec name.
    pub fn shard_index(&self, spec: &str) -> usize {
        match self.overrides.get(spec) {
            Some(i) => *i,
            None => shard_of(spec, self.shards.len()),
        }
    }

    /// The shard responsible for a spec name.
    pub fn shard_for(&self, spec: &str) -> &ShardEntry {
        &self.shards[self.shard_index(spec)]
    }

    /// All shards, in index order (for aggregation and scrapes).
    pub fn shards(&self) -> &[ShardEntry] {
        &self.shards
    }
}

/// Partitions a single-store directory into `n` hash-routed shard
/// directories under `dst` (`dst/shard-000` ... `dst/shard-N-1`), the
/// operator migration path from an unsharded deployment.
///
/// Every shard directory is written even when the hash leaves it empty, so
/// the resulting layout boots with exactly `n` shards.  Cluster caches are
/// not migrated — they are rebuildable caches and each shard re-derives its
/// own.  Returns the per-shard save summaries, in shard order.
pub fn split_store_into_shards(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    n: usize,
) -> Result<Vec<SaveSummary>, PersistError> {
    let n = n.max(1);
    let source = WorkflowStore::load_from_dir(src)?;
    let shards: Vec<WorkflowStore> = (0..n).map(|_| WorkflowStore::new()).collect();
    for (name, (spec, runs)) in source.snapshot_all() {
        let target = &shards[shard_of(&name, n)];
        target
            .insert_spec((*spec).clone())
            .expect("fresh shard store cannot conflict on spec insert");
        for (run_name, run) in runs {
            target
                .insert_run(&run_name, (*run).clone())
                .expect("loaded run re-inserts cleanly into its own spec");
        }
    }
    let dst = dst.as_ref();
    let mut summaries = Vec::with_capacity(n);
    for (i, shard) in shards.iter().enumerate() {
        summaries.push(shard.save_to_dir(dst.join(shard_dir_name(i)))?);
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_workloads::figures::{fig2_run1, fig2_specification};

    #[test]
    fn fnv_hash_is_pinned_forever() {
        // These exact values are load-bearing: changing the hash would
        // misroute every existing sharded store.
        assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64("fig2"), fnv1a_64("fig2"));
        assert_ne!(fnv1a_64("spec00"), fnv1a_64("spec01"));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in 1..=8 {
            for name in ["fig2", "spec00", "spec01", "a very long specification name"] {
                let i = shard_of(name, n);
                assert!(i < n);
                assert_eq!(i, shard_of(name, n), "routing must be deterministic");
            }
        }
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn router_pins_misplaced_specs_to_where_they_live() {
        // Build two shards and put a spec on the *wrong* one on purpose.
        let stores: Vec<Arc<WorkflowStore>> =
            (0..2).map(|_| Arc::new(WorkflowStore::new())).collect();
        let spec_name = "fig2";
        let hashed = shard_of(spec_name, 2);
        let wrong = 1 - hashed;
        let spec = stores[wrong].insert_spec(fig2_specification()).unwrap();
        stores[wrong].insert_run("r1", fig2_run1(&spec)).unwrap();
        let router = ShardRouter::new(
            stores
                .iter()
                .map(|s| ShardEntry::new(Arc::new(DiffService::new(Arc::clone(s))), None))
                .collect(),
        );
        assert_eq!(router.shard_index(spec_name), wrong, "boot pinning beats the hash");
        assert!(router.shard_for(spec_name).service().store().spec(spec_name).is_some());
        // A spec nobody stores routes by hash.
        assert_eq!(router.shard_index("brand-new"), shard_of("brand-new", 2));
    }

    #[test]
    fn shard_dir_names_round_trip_through_detection() {
        let tmp = std::env::temp_dir().join(format!("wfdiff-shard-detect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        for i in [2usize, 0, 1] {
            std::fs::create_dir_all(tmp.join(shard_dir_name(i))).unwrap();
        }
        std::fs::create_dir_all(tmp.join("not-a-shard")).unwrap();
        let dirs = detect_shard_dirs(&tmp);
        assert_eq!(dirs.len(), 3);
        assert_eq!(dirs[0].file_name().unwrap().to_str().unwrap(), "shard-000");
        assert_eq!(dirs[2].file_name().unwrap().to_str().unwrap(), "shard-002");
        let _ = std::fs::remove_dir_all(&tmp);
        assert!(detect_shard_dirs(&tmp).is_empty(), "missing root detects as unsharded");
    }
}
