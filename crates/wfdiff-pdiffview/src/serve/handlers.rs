//! Endpoint implementations: routing a parsed [`Request`] onto the sharded
//! [`DiffService`]/[`WorkflowStore`](crate::store::WorkflowStore) stack and
//! rendering responses.
//!
//! Handlers never panic on client input: every failure is an [`ApiError`]
//! carrying the HTTP status, and [`dispatch`] converts both outcomes into a
//! [`Response`] for the worker to render.  Endpoints that address one
//! specification resolve their shard through the [`ShardRouter`];
//! `/healthz` and `/specs` aggregate across every shard, and `/metrics`
//! renders the server's [`ServeMetrics`] registry as Prometheus text.

use super::api::*;
use super::http::Request;
use super::metrics::ServeMetrics;
use super::shard::{ShardEntry, ShardRouter};
use crate::cluster::{ClusterDiff, Clustering, DEFAULT_CLUSTER_SEED};
use crate::service::{DiffService, DriftReport};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Ceiling on the number of pairs a single `POST /diff/batch` may request;
/// larger batches are rejected with `400` so one request cannot monopolise
/// the worker pool.
pub const MAX_BATCH_PAIRS: usize = 4096;

/// Default neighbour count of `GET /similar` when `k` is omitted.
pub const DEFAULT_SIMILAR_K: usize = 5;

/// The `Content-Type` of `GET /metrics` responses.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Everything a handler needs: the shard router (each shard owns a diff
/// service, and through it a store, plus optionally a durable directory)
/// and the metrics registry.
pub struct AppState {
    router: ShardRouter,
    metrics: Arc<ServeMetrics>,
}

impl AppState {
    /// Builds the state over a shard router, creating a metrics registry
    /// sized to it.
    pub fn new(router: ShardRouter) -> Self {
        let metrics = Arc::new(ServeMetrics::new(router.len()));
        AppState { router, metrics }
    }

    /// Single-shard state — the unsharded server.
    pub fn single(service: Arc<DiffService>, store_dir: Option<PathBuf>) -> Self {
        AppState::new(ShardRouter::single(service, store_dir))
    }

    /// The shard router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Resolves the shard for a spec name, counting the routing decision.
    fn shard(&self, spec: &str) -> &ShardEntry {
        let i = self.router.shard_index(spec);
        self.metrics.observe_shard_request(i);
        &self.router.shards()[i]
    }
}

/// A rendered handler outcome: status, content type and body bytes-to-be.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body }
    }
}

/// Top-level dispatch: `GET /metrics` renders Prometheus text, everything
/// else goes through the JSON [`route`] table.
pub fn dispatch(state: &AppState, req: &Request) -> Response {
    let segments: Vec<&str> = req.segments.iter().map(String::as_str).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => Response {
            status: 200,
            content_type: METRICS_CONTENT_TYPE,
            body: state.metrics.render(&state.router),
        },
        (_, ["metrics"]) => {
            let e = ApiError::method_not_allowed(&req.method, &req.raw_path);
            Response::json(e.status, e.body())
        }
        _ => {
            let (status, body) = route(state, req);
            Response::json(status, body)
        }
    }
}

/// Dispatches a request to its JSON handler and renders the outcome as
/// `(status, JSON body)`.  Unknown paths get `404`, known paths with the
/// wrong method get `405`.
pub fn route(state: &AppState, req: &Request) -> (u16, String) {
    let segments: Vec<&str> = req.segments.iter().map(String::as_str).collect();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(state),
        ("GET", ["specs"]) => specs(state),
        ("GET", ["specs", name, "runs"]) => spec_runs(state, name),
        ("POST", ["runs"]) => insert_run(state, req),
        ("POST", ["runs", "stream"]) => stream_events(state, req),
        ("GET", ["runs", spec, stream, "drift"]) => drift(state, req, spec, stream),
        ("DELETE", ["runs", spec, stream, "stream"]) => close_stream(state, spec, stream),
        ("GET", ["diff"]) => diff(state, req),
        ("POST", ["diff", "batch"]) => diff_batch(state, req),
        ("GET", ["cluster"]) => cluster(state, req),
        ("GET", ["similar"]) => similar(state, req),
        // Known endpoints hit with the wrong method.
        (_, ["healthz" | "specs" | "diff" | "cluster" | "similar"])
        | (_, ["specs", _, "runs"])
        | (_, ["runs"])
        | (_, ["runs", "stream"])
        | (_, ["runs", _, _, "drift" | "stream"])
        | (_, ["diff", "batch"]) => Err(ApiError::method_not_allowed(&req.method, &req.raw_path)),
        _ => Err(ApiError::not_found(format!("no endpoint at {:?}", req.raw_path))),
    };
    match result {
        Ok((status, body)) => (status, body),
        Err(e) => (e.status, e.body()),
    }
}

fn json<T: serde::Serialize>(status: u16, value: &T) -> Result<(u16, String), ApiError> {
    serde_json::to_string(value)
        .map(|body| (status, body))
        .map_err(|e| ApiError::new(500, "serialisation_failed", e.to_string()))
}

/// `GET /healthz`: totals aggregated across every shard, plus the per-shard
/// breakdown.
fn healthz(state: &AppState) -> Result<(u16, String), ApiError> {
    let mut shards = Vec::with_capacity(state.router.len());
    let mut threads = 0;
    for (i, shard) in state.router.shards().iter().enumerate() {
        let store = shard.service().store();
        threads += shard.service().threads();
        shards.push(ShardHealth {
            shard: i,
            specs: store.spec_names().len(),
            runs: store.run_count(),
        });
    }
    json(
        200,
        &HealthResponse {
            status: "ok".to_string(),
            specs: shards.iter().map(|s| s.specs).sum(),
            runs: shards.iter().map(|s| s.runs).sum(),
            threads,
            shards,
        },
    )
}

/// `GET /specs`: the listings of every shard merged and sorted by name, so
/// clients see one store regardless of the shard count.
fn specs(state: &AppState) -> Result<(u16, String), ApiError> {
    let mut specs: Vec<SpecEntry> = Vec::new();
    for shard in state.router.shards() {
        let snapshot = shard.service().store().snapshot_all();
        specs.extend(snapshot.iter().map(|(name, (spec, runs))| SpecEntry {
            name: name.clone(),
            fingerprint: spec.fingerprint().to_string(),
            runs: runs.len(),
        }));
    }
    specs.sort_by(|a, b| a.name.cmp(&b.name));
    json(200, &SpecsResponse { specs })
}

fn spec_runs(state: &AppState, name: &str) -> Result<(u16, String), ApiError> {
    let (_, runs) = state.shard(name).service().store().snapshot(name).ok_or_else(|| {
        ApiError::new(404, "unknown_spec", format!("unknown specification {name:?}"))
    })?;
    json(
        200,
        &RunsResponse { spec: name.to_string(), runs: runs.into_iter().map(|(n, _)| n).collect() },
    )
}

/// `POST /runs`: validate the descriptor against the stored specification,
/// publish the run in its shard's store and (when that shard owns a store
/// directory) append it durably.
///
/// A name that is already stored is refused with `409` (the insert is
/// **create-only** — atomically, via [`WorkflowStore::insert_run_new`], so
/// concurrent same-name posts cannot clobber each other).  The store insert
/// happens first — it is the authoritative version check — and a failed
/// durable append rolls back exactly the run this request created, so a
/// `500` response never leaves the run half-committed and never destroys
/// previously committed state.
///
/// [`WorkflowStore::insert_run_new`]: crate::store::WorkflowStore::insert_run_new
fn insert_run(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let body: InsertRunRequest = parse_body(&req.body)?;
    let spec_name = body.run.spec.clone();
    let shard = state.shard(&spec_name);
    let service = shard.service();
    let store = Arc::clone(service.store());
    let spec = store.spec(&spec_name).ok_or_else(|| {
        ApiError::new(404, "unknown_spec", format!("unknown specification {spec_name:?}"))
    })?;
    if !body.spec_fingerprint.is_empty() && body.spec_fingerprint != spec.fingerprint().to_string()
    {
        return Err(ApiError::new(
            409,
            "spec_version_mismatch",
            format!(
                "request asserts specification version {}, but the stored version is {}",
                body.spec_fingerprint,
                spec.fingerprint()
            ),
        ));
    }
    let run = body.run.to_run(&spec)?;
    let run_arc = store.insert_run_new(&body.name, run)?;
    let mut persisted = false;
    if let Some(dir) = shard.dir() {
        if let Err(e) = store.append_run_to_dir(dir, &body.name, &run_arc) {
            store.remove_run(&spec_name, &body.name);
            return Err(e.into());
        }
        persisted = true;
    }
    // Fold the new run into the incremental cluster index (a cheap no-op
    // until the first k-medoids query builds state for this spec; never
    // fails the insert).  The time this takes is the recluster lag the
    // metrics expose.
    let started = Instant::now();
    service.notify_run_inserted(&spec_name, &body.name);
    state.metrics.observe_cluster_update(started.elapsed());
    json(201, &InsertRunResponse { spec: spec_name, name: body.name, persisted })
}

fn drift_body(report: DriftReport) -> DriftResponse {
    DriftResponse {
        spec: report.spec,
        stream: report.stream,
        events: report.events,
        nodes: report.nodes,
        completed_leaves: report.completed_leaves,
        clusters: report
            .clusters
            .into_iter()
            .map(|c| DriftClusterEntry {
                medoid: c.medoid,
                size: c.size,
                radius: c.radius,
                lower_bound: c.lower_bound,
                exceeds: c.exceeds,
            })
            .collect(),
        drifted: report.drifted,
    }
}

/// `POST /runs/stream`: append one ordered batch of node-lifecycle events
/// to an in-flight stream (opening it on first use), durably when the shard
/// persists, and report the live drift verdict.
///
/// The batch commits in memory first; if the write-ahead-log append then
/// fails, [`DiffService::undo_stream_batch`] rolls the registry back so
/// memory never runs ahead of disk, and the client sees a clean `500` with
/// nothing half-applied.  With `finalize: true` the completed stream is
/// validated end-to-end and stored as run `stream` through the same
/// create-only insert (and rollback) path as `POST /runs`, then a closure
/// marker retires the stream's WAL records.
fn stream_events(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let body: StreamEventsRequest = parse_body(&req.body)?;
    let shard = state.shard(&body.spec);
    let service = shard.service();
    let store = Arc::clone(service.store());
    let outcome = service.stream_events(&body.spec, &body.stream, &body.events)?;
    let ack = outcome.ack;
    let mut persisted = false;
    if let Some(dir) = shard.dir() {
        if let Err(e) = store.append_stream_events_to_dir(
            dir,
            &body.spec,
            &body.stream,
            ack.base_seq,
            &body.events,
        ) {
            service.undo_stream_batch(&body.spec, &body.stream, outcome);
            return Err(e.into());
        }
        persisted = true;
    }
    state.metrics.stream_events().add(body.events.len() as u64);
    let mut response = StreamEventsResponse {
        spec: body.spec.clone(),
        stream: body.stream.clone(),
        base_seq: ack.base_seq,
        seq: ack.seq,
        nodes: ack.nodes,
        completed_leaves: ack.completed_leaves,
        complete: ack.complete,
        finalized: false,
        drift: None,
        persisted,
    };
    if body.finalize {
        let (run, seq) = service.finalize_stream(&body.spec, &body.stream)?;
        let run_arc = store.insert_run_new(&body.stream, run)?;
        if let Some(dir) = shard.dir() {
            if let Err(e) = store.append_run_to_dir(dir, &body.stream, &run_arc) {
                store.remove_run(&body.spec, &body.stream);
                return Err(e.into());
            }
            // Best effort: if the closure marker is lost, the boot replay
            // sees the stored run of the same name and drops the group.
            let _ = store.append_stream_close_to_dir(dir, &body.spec, &body.stream, seq);
        }
        service.remove_stream(&body.spec, &body.stream);
        let started = Instant::now();
        service.notify_run_inserted(&body.spec, &body.stream);
        state.metrics.observe_cluster_update(started.elapsed());
        response.finalized = true;
        return json(201, &response);
    }
    let report = service.drift_report(&body.spec, &body.stream)?;
    if report.drifted {
        state.metrics.drift_flags().inc();
    }
    response.drift = Some(drift_body(report));
    json(200, &response)
}

/// `GET /runs/{spec}/{stream}/drift[?k=…[&seed=…]]`: the drift verdict of
/// an in-flight stream against the spec's current clustering.  Passing `k`
/// (and optionally `seed`) refreshes the k-medoids clustering first, so a
/// cold server can be queried in one round trip; without it the verdict
/// uses whatever clustering the incremental index already holds (no
/// clusters → `drifted: false` with an empty verdict list).
fn drift(
    state: &AppState,
    req: &Request,
    spec: &str,
    stream: &str,
) -> Result<(u16, String), ApiError> {
    let k = parse_int_param::<usize>(req, "k")?;
    let seed = parse_int_param::<u64>(req, "seed")?.unwrap_or(DEFAULT_CLUSTER_SEED);
    let service = state.shard(spec).service();
    if let Some(k) = k {
        service.cluster_medoids(spec, k, seed)?;
    }
    let report = service.drift_report(spec, stream)?;
    if report.drifted {
        state.metrics.drift_flags().inc();
    }
    json(200, &drift_body(report))
}

/// `DELETE /runs/{spec}/{stream}/stream`: drop a stuck in-flight stream.
/// The registry entry is removed and, when the shard persists, a closure
/// marker is appended (best effort) so the stream stays gone across
/// restarts.  The operator runbook's remedy for streams whose producer
/// died mid-run.
fn close_stream(state: &AppState, spec: &str, stream: &str) -> Result<(u16, String), ApiError> {
    let shard = state.shard(spec);
    let service = shard.service();
    let seq = service.stream_seq(spec, stream).ok_or_else(|| {
        ApiError::new(
            404,
            "unknown_stream",
            format!("no in-flight stream {stream:?} for specification {spec:?}"),
        )
    })?;
    service.remove_stream(spec, stream);
    let persisted = match shard.dir() {
        Some(dir) => service.store().append_stream_close_to_dir(dir, spec, stream, seq).is_ok(),
        None => false,
    };
    json(
        200,
        &StreamCloseResponse { spec: spec.to_string(), stream: stream.to_string(), seq, persisted },
    )
}

/// `GET /similar?spec=…&run=…&k=…[&pruned=1][&approx=ε]`: the `k` stored
/// runs nearest to `run` by exact edit distance, nearest first.
///
/// `pruned=1` routes the query through the per-spec vantage-point metric
/// index with certified triangle-inequality pruning — same answer as the
/// exact sweep, ordering and tie-breaks included, usually far fewer
/// distance evaluations (reported in the response and the
/// `wfdiff_similar_*` counters).  `approx=ε` (implies `pruned`) relaxes the
/// bound: every reported distance is at most `(1+ε)` times the true `k`-th.
fn similar(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let spec = req.query_param("spec").ok_or_else(|| ApiError::missing_param("spec"))?;
    let run = req.query_param("run").ok_or_else(|| ApiError::missing_param("run"))?;
    let k = parse_int_param::<usize>(req, "k")?.unwrap_or(DEFAULT_SIMILAR_K);
    let epsilon = match req.query_param("approx") {
        None => None,
        Some(raw) => match raw.parse::<f64>() {
            Ok(e) if e.is_finite() && e >= 0.0 => Some(e),
            _ => {
                return Err(ApiError::bad_request(
                    "invalid_parameter",
                    format!(
                        "query parameter \"approx\" must be a finite non-negative number, got {raw:?}"
                    ),
                ));
            }
        },
    };
    let pruned = epsilon.is_some()
        || match req.query_param("pruned") {
            None | Some("0") => false,
            Some("1") => true,
            Some(raw) => {
                return Err(ApiError::bad_request(
                    "invalid_parameter",
                    format!("query parameter \"pruned\" must be 0 or 1, got {raw:?}"),
                ));
            }
        };
    let shard = state.shard(spec);
    let service = shard.service();
    let mut response = SimilarResponse {
        spec: spec.to_string(),
        run: run.to_string(),
        k,
        neighbors: Vec::new(),
        pruned,
        approx_epsilon: epsilon.unwrap_or(0.0),
        distance_evals: 0,
        subtrees_pruned: 0,
        members_pruned: 0,
    };
    let neighbors = if pruned {
        let (neighbors, stats) =
            service.nearest_runs_pruned(spec, run, k, epsilon.unwrap_or(0.0))?;
        response.distance_evals = stats.distance_evals as u64;
        response.subtrees_pruned = stats.subtrees_pruned as u64;
        response.members_pruned = stats.members_pruned as u64;
        state.metrics.similar_pruned().inc();
        // Checkpoint the (possibly just-built) tree as a WAL delta; cheap
        // when nothing changed, best-effort like the cluster checkpoint.
        if let Some(dir) = shard.dir() {
            let _ = service.save_metric_state(dir);
        }
        neighbors
    } else {
        let neighbors = service.nearest_runs(spec, run, k)?;
        // The exact sweep evaluates the query against every other run.
        response.distance_evals = service.store().run_names(spec).len().saturating_sub(1) as u64;
        neighbors
    };
    state.metrics.similar_distance_evals().add(response.distance_evals);
    response.neighbors = neighbors
        .into_iter()
        .map(|p| SimilarEntry { run: p.target, distance: p.distance })
        .collect();
    json(200, &response)
}

/// Parses an optional non-negative integer query parameter.
fn parse_int_param<T: std::str::FromStr>(
    req: &Request,
    name: &'static str,
) -> Result<Option<T>, ApiError> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw.parse::<T>().map(Some).map_err(|_| {
            ApiError::bad_request(
                "invalid_parameter",
                format!("query parameter {name:?} must be a non-negative integer, got {raw:?}"),
            )
        }),
    }
}

fn diff(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let spec = req.query_param("spec").ok_or_else(|| ApiError::missing_param("spec"))?;
    let a = req.query_param("a").ok_or_else(|| ApiError::missing_param("a"))?;
    let b = req.query_param("b").ok_or_else(|| ApiError::missing_param("b"))?;
    let pair = state.shard(spec).service().diff(spec, a, b)?;
    json(
        200,
        &DiffResponse {
            spec: spec.to_string(),
            source: pair.source,
            target: pair.target,
            distance: pair.distance,
        },
    )
}

fn diff_batch(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let body: BatchDiffRequest = parse_body(&req.body)?;
    if body.pairs.len() > MAX_BATCH_PAIRS {
        return Err(ApiError::bad_request(
            "batch_too_large",
            format!("{} pairs exceed the limit of {MAX_BATCH_PAIRS} per request", body.pairs.len()),
        ));
    }
    let distances = state.shard(&body.spec).service().diff_batch(&body.spec, &body.pairs)?;
    json(
        200,
        &BatchDiffResponse {
            spec: body.spec.clone(),
            distances: distances
                .into_iter()
                .map(|p| DiffResponse {
                    spec: body.spec.clone(),
                    source: p.source,
                    target: p.target,
                    distance: p.distance,
                })
                .collect(),
        },
    )
}

/// `GET /cluster`: dispatches on `algo` — the composite-module prefix
/// summary of two runs (default, the paper's "zoom") or the k-medoids
/// clustering of the whole run collection.
fn cluster(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    match req.query_param("algo") {
        None | Some("prefix") => cluster_prefix(state, req),
        Some("kmedoids") => cluster_kmedoids(state, req),
        Some(other) => Err(ApiError::bad_request(
            "invalid_parameter",
            format!("unknown clustering algorithm {other:?} (expected \"prefix\" or \"kmedoids\")"),
        )),
    }
}

/// `GET /cluster?algo=kmedoids&k=…[&seed=…]`: the incremental k-medoids
/// clustering of every stored run; checkpointed to the shard's store
/// directory (best effort) when the shard persists.
fn cluster_kmedoids(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let spec = req.query_param("spec").ok_or_else(|| ApiError::missing_param("spec"))?;
    let k = parse_int_param::<usize>(req, "k")?.ok_or_else(|| ApiError::missing_param("k"))?;
    let seed = parse_int_param::<u64>(req, "seed")?.unwrap_or(DEFAULT_CLUSTER_SEED);
    let shard = state.shard(spec);
    let snapshot = shard.service().cluster_medoids(spec, k, seed)?;
    // Checkpoint the refreshed clustering next to the shard's store (a
    // no-op when nothing changed since the last checkpoint).  Best effort:
    // the artifact is a cache and a failed write must not fail the query
    // (the next load simply rebuilds).
    let persisted = match shard.dir() {
        Some(dir) => shard.service().save_cluster_state(dir).is_ok(),
        None => false,
    };
    json(
        200,
        &KMedoidsResponse {
            spec: spec.to_string(),
            algo: "kmedoids".to_string(),
            k: snapshot.k,
            seed: snapshot.seed,
            silhouette: snapshot.silhouette,
            cost: snapshot.cost,
            clusters: snapshot
                .clusters
                .into_iter()
                .map(|c| RunClusterEntry { medoid: c.medoid, size: c.runs.len(), runs: c.runs })
                .collect(),
            persisted,
        },
    )
}

fn cluster_prefix(state: &AppState, req: &Request) -> Result<(u16, String), ApiError> {
    let spec_name = req.query_param("spec").ok_or_else(|| ApiError::missing_param("spec"))?;
    let a = req.query_param("a").ok_or_else(|| ApiError::missing_param("a"))?;
    let b = req.query_param("b").ok_or_else(|| ApiError::missing_param("b"))?;
    let separator = req.query_param("separator").unwrap_or("_");
    let mut chars = separator.chars();
    let sep = match (chars.next(), chars.next()) {
        (Some(c), None) => c,
        _ => {
            return Err(ApiError::bad_request(
                "invalid_separator",
                format!("separator must be a single character, got {separator:?}"),
            ))
        }
    };
    let service = state.shard(spec_name).service();
    let spec = service.store().spec(spec_name).ok_or_else(|| {
        ApiError::new(404, "unknown_spec", format!("unknown specification {spec_name:?}"))
    })?;
    let clustering = Clustering::by_prefix(&spec, sep);
    let session = service.session(spec_name, a, b)?;
    let diff = ClusterDiff::compute(&session, &clustering);
    let clusters = diff
        .hotspots()
        .iter()
        .map(|(name, _)| {
            let (deletions, insertions) = diff.changes[*name];
            ClusterEntry { cluster: (*name).to_string(), deletions, insertions }
        })
        .collect();
    json(
        200,
        &ClusterResponse {
            spec: spec_name.to_string(),
            source: a.to_string(),
            target: b.to_string(),
            separator: sep.to_string(),
            distance: session.distance(),
            clusters,
        },
    )
}

fn parse_body<T: for<'de> serde::Deserialize<'de>>(body: &str) -> Result<T, ApiError> {
    if body.is_empty() {
        return Err(ApiError::bad_request("invalid_json", "request requires a JSON body"));
    }
    serde_json::from_str(body)
        .map_err(|e| ApiError::bad_request("invalid_json", format!("invalid JSON body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RunDescriptor;
    use crate::store::WorkflowStore;
    use crate::stream::StreamEvent;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    fn request(method: &str, target: &str, body: &str) -> Request {
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        Request {
            method: method.to_string(),
            raw_path: path.to_string(),
            segments: path.split('/').filter(|s| !s.is_empty()).map(String::from).collect(),
            query: query
                .split('&')
                .filter(|s| !s.is_empty())
                .map(|kv| {
                    let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            body: body.to_string(),
            keep_alive: true,
        }
    }

    fn state() -> AppState {
        let store = Arc::new(WorkflowStore::new());
        let spec = store.insert_spec(fig2_specification()).unwrap();
        store.insert_run("r1", fig2_run1(&spec)).unwrap();
        store.insert_run("r2", fig2_run2(&spec)).unwrap();
        AppState::single(Arc::new(DiffService::new(store)), None)
    }

    /// The `fig2` store spread across two shards: `fig2` on its hashed
    /// shard, a second spec (`aux`) forced onto the other one.
    fn sharded_state() -> AppState {
        let stores: Vec<Arc<WorkflowStore>> =
            (0..2).map(|_| Arc::new(WorkflowStore::new())).collect();
        let fig2_shard = super::super::shard::shard_of("fig2", 2);
        let spec = stores[fig2_shard].insert_spec(fig2_specification()).unwrap();
        stores[fig2_shard].insert_run("r1", fig2_run1(&spec)).unwrap();
        stores[fig2_shard].insert_run("r2", fig2_run2(&spec)).unwrap();
        let mut b = wfdiff_sptree::SpecificationBuilder::new("aux");
        b.path(&["a", "b", "c"]).fork_between("a", "c");
        let aux = stores[1 - fig2_shard].insert_spec(b.build().unwrap()).unwrap();
        let run = wfdiff_workloads::runs::generate_run_with_target_edges(&aux, 6, 1);
        stores[1 - fig2_shard].insert_run("a1", run).unwrap();
        AppState::new(ShardRouter::new(
            stores
                .iter()
                .map(|s| ShardEntry::new(Arc::new(DiffService::new(Arc::clone(s))), None))
                .collect(),
        ))
    }

    #[test]
    fn routing_covers_success_and_error_paths() {
        let state = state();
        let (status, body) = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));

        let (status, _) = route(&state, &request("GET", "/specs", ""));
        assert_eq!(status, 200);
        let (status, body) = route(&state, &request("GET", "/specs/fig2/runs", ""));
        assert_eq!(status, 200);
        let runs: RunsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(runs.runs, vec!["r1", "r2"]);

        let (status, _) = route(&state, &request("GET", "/specs/nope/runs", ""));
        assert_eq!(status, 404);
        let (status, _) = route(&state, &request("DELETE", "/healthz", ""));
        assert_eq!(status, 405);
        let (status, _) = route(&state, &request("GET", "/nowhere", ""));
        assert_eq!(status, 404);
    }

    #[test]
    fn diff_endpoint_returns_the_service_distance() {
        let state = state();
        let (status, body) = route(&state, &request("GET", "/diff?spec=fig2&a=r1&b=r2", ""));
        assert_eq!(status, 200, "{body}");
        let diff: DiffResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(diff.distance, 4.0);
        // Missing parameter and unknown names.
        let (status, _) = route(&state, &request("GET", "/diff?spec=fig2&a=r1", ""));
        assert_eq!(status, 400);
        let (status, _) = route(&state, &request("GET", "/diff?spec=fig2&a=r1&b=zz", ""));
        assert_eq!(status, 404);
    }

    #[test]
    fn batch_endpoint_is_index_aligned_and_bounded() {
        let state = state();
        let req_body = serde_json::to_string(&BatchDiffRequest {
            spec: "fig2".to_string(),
            pairs: vec![("r1".to_string(), "r2".to_string()), ("r1".to_string(), "r1".to_string())],
        })
        .unwrap();
        let (status, body) = route(&state, &request("POST", "/diff/batch", &req_body));
        assert_eq!(status, 200, "{body}");
        let out: BatchDiffResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.distances.len(), 2);
        assert_eq!(out.distances[0].distance, 4.0);
        assert_eq!(out.distances[1].distance, 0.0);

        let huge = BatchDiffRequest {
            spec: "fig2".to_string(),
            pairs: vec![("r1".to_string(), "r2".to_string()); MAX_BATCH_PAIRS + 1],
        };
        let (status, body) =
            route(&state, &request("POST", "/diff/batch", &serde_json::to_string(&huge).unwrap()));
        assert_eq!(status, 400);
        assert!(body.contains("batch_too_large"));
    }

    #[test]
    fn insert_endpoint_validates_fingerprint_and_json() {
        let state = state();
        let store = Arc::clone(state.router().shard_for("fig2").service().store());
        let spec = store.spec("fig2").unwrap();
        let descriptor = RunDescriptor::from_run(&fig2_run1(&spec));

        // Version assertion mismatch → 409, store unchanged.
        let body = format!(
            "{{\"name\": \"nope\", \"spec_fingerprint\": \"deadbeef\", \"run\": {}}}",
            descriptor.to_json()
        );
        let (status, text) = route(&state, &request("POST", "/runs", &body));
        assert_eq!(status, 409, "{text}");
        assert!(store.run("fig2", "nope").is_none());

        // Matching assertion → 201.
        let body = format!(
            "{{\"name\": \"r9\", \"spec_fingerprint\": \"{}\", \"run\": {}}}",
            spec.fingerprint(),
            descriptor.to_json()
        );
        let (status, text) = route(&state, &request("POST", "/runs", &body));
        assert_eq!(status, 201, "{text}");
        let out: InsertRunResponse = serde_json::from_str(&text).unwrap();
        assert!(!out.persisted, "no store directory configured");
        assert!(store.run("fig2", "r9").is_some());

        // Malformed JSON → 400.
        let (status, text) = route(&state, &request("POST", "/runs", "{not json"));
        assert_eq!(status, 400);
        assert!(text.contains("invalid_json"));
        // Empty body → 400 too.
        let (status, _) = route(&state, &request("POST", "/runs", ""));
        assert_eq!(status, 400);
    }

    #[test]
    fn cluster_endpoint_aggregates_by_prefix() {
        let state = state();
        let (status, body) = route(&state, &request("GET", "/cluster?spec=fig2&a=r1&b=r2", ""));
        assert_eq!(status, 200, "{body}");
        let out: ClusterResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.distance, 4.0);
        assert!(!out.clusters.is_empty());
        // Hotspots are ordered by total change, descending.
        let totals: Vec<usize> = out.clusters.iter().map(|c| c.deletions + c.insertions).collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));

        let (status, body) =
            route(&state, &request("GET", "/cluster?spec=fig2&a=r1&b=r2&separator=ab", ""));
        assert_eq!(status, 400, "{body}");
    }

    #[test]
    fn similar_endpoint_ranks_neighbors_exactly() {
        let state = state();
        let (status, body) = route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=5", ""));
        assert_eq!(status, 200, "{body}");
        let out: SimilarResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.run, "r1");
        assert_eq!(out.neighbors.len(), 1, "only one other run is stored");
        assert_eq!(out.neighbors[0].run, "r2");
        assert_eq!(out.neighbors[0].distance, 4.0);
        // k defaults when omitted.
        let (status, body) = route(&state, &request("GET", "/similar?spec=fig2&run=r1", ""));
        assert_eq!(status, 200, "{body}");
        // Errors: unknown run/spec, malformed or zero k.
        let (status, _) = route(&state, &request("GET", "/similar?spec=fig2&run=zz", ""));
        assert_eq!(status, 404);
        let (status, _) = route(&state, &request("GET", "/similar?spec=zz&run=r1", ""));
        assert_eq!(status, 404);
        let (status, body) = route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=x", ""));
        assert_eq!(status, 400, "{body}");
        let (status, body) = route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=0", ""));
        assert_eq!(status, 400, "{body}");
        let (status, _) = route(&state, &request("POST", "/similar", ""));
        assert_eq!(status, 405);
        // k far beyond the run count is clamped, not an error.
        let (status, body) = route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=999", ""));
        assert_eq!(status, 200, "{body}");
        let out: SimilarResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.neighbors.len(), 1);
    }

    #[test]
    fn similar_pruned_mode_matches_exact_and_validates_params() {
        let state = state();
        let (status, exact_body) =
            route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=5", ""));
        assert_eq!(status, 200, "{exact_body}");
        let exact: SimilarResponse = serde_json::from_str(&exact_body).unwrap();
        assert!(!exact.pruned);
        assert_eq!(exact.distance_evals, 1, "the sweep evaluates every other run");

        // pruned=1 answers through the metric index: identical neighbours
        // and distances, pruning stats reported.
        let (status, body) =
            route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=5&pruned=1", ""));
        assert_eq!(status, 200, "{body}");
        let pruned: SimilarResponse = serde_json::from_str(&body).unwrap();
        assert!(pruned.pruned);
        assert_eq!(pruned.approx_epsilon, 0.0);
        assert_eq!(pruned.neighbors.len(), exact.neighbors.len());
        for (a, b) in exact.neighbors.iter().zip(&pruned.neighbors) {
            assert_eq!(a.run, b.run);
            assert_eq!(a.distance, b.distance);
        }
        // pruned=0 is the exact sweep.
        let (status, body) =
            route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=5&pruned=0", ""));
        assert_eq!(status, 200, "{body}");
        let out: SimilarResponse = serde_json::from_str(&body).unwrap();
        assert!(!out.pruned);

        // approx= implies pruned and echoes the bound.
        let (status, body) =
            route(&state, &request("GET", "/similar?spec=fig2&run=r1&k=5&approx=0.5", ""));
        assert_eq!(status, 200, "{body}");
        let out: SimilarResponse = serde_json::from_str(&body).unwrap();
        assert!(out.pruned);
        assert_eq!(out.approx_epsilon, 0.5);

        // Malformed pruned/approx values are 400s, and k=0 stays a clean
        // 400 through the pruned path too.
        for bad in [
            "/similar?spec=fig2&run=r1&pruned=2",
            "/similar?spec=fig2&run=r1&pruned=yes",
            "/similar?spec=fig2&run=r1&approx=-1",
            "/similar?spec=fig2&run=r1&approx=abc",
            "/similar?spec=fig2&run=r1&approx=inf",
            "/similar?spec=fig2&run=r1&k=0&pruned=1",
        ] {
            let (status, body) = route(&state, &request("GET", bad, ""));
            assert_eq!(status, 400, "{bad}: {body}");
        }
    }

    #[test]
    fn kmedoids_cluster_endpoint_returns_medoids_and_silhouette() {
        let state = state();
        let (status, body) =
            route(&state, &request("GET", "/cluster?spec=fig2&algo=kmedoids&k=2", ""));
        assert_eq!(status, 200, "{body}");
        let out: KMedoidsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.algo, "kmedoids");
        assert_eq!(out.clusters.len(), 2);
        let mut all_runs: Vec<String> = out.clusters.iter().flat_map(|c| c.runs.clone()).collect();
        all_runs.sort();
        assert_eq!(all_runs, vec!["r1", "r2"]);
        for c in &out.clusters {
            assert!(c.runs.contains(&c.medoid), "medoid is a member");
            assert_eq!(c.size, c.runs.len());
        }
        assert!(!out.persisted, "no store directory configured");
        // k clamps to the run count; zero/missing/invalid k and unknown
        // algos are rejected.
        let (status, _) =
            route(&state, &request("GET", "/cluster?spec=fig2&algo=kmedoids&k=99", ""));
        assert_eq!(status, 200);
        let (status, _) =
            route(&state, &request("GET", "/cluster?spec=fig2&algo=kmedoids&k=0", ""));
        assert_eq!(status, 400);
        let (status, _) = route(&state, &request("GET", "/cluster?spec=fig2&algo=kmedoids", ""));
        assert_eq!(status, 400);
        let (status, _) = route(&state, &request("GET", "/cluster?spec=fig2&algo=voronoi&k=2", ""));
        assert_eq!(status, 400);
        let (status, _) = route(&state, &request("GET", "/cluster?spec=zz&algo=kmedoids&k=2", ""));
        assert_eq!(status, 404);
    }

    #[test]
    fn inserts_keep_the_cluster_index_fresh() {
        let state = state();
        // Build index state, then stream a run in through the endpoint; the
        // next clustering must include it without a rebuild.
        let (status, _) =
            route(&state, &request("GET", "/cluster?spec=fig2&algo=kmedoids&k=2", ""));
        assert_eq!(status, 200);
        let service = Arc::clone(state.router().shard_for("fig2").service());
        let store = Arc::clone(service.store());
        let spec = store.spec("fig2").unwrap();
        let descriptor = RunDescriptor::from_run(&fig2_run2(&spec));
        let body = format!("{{\"name\": \"r3\", \"run\": {}}}", descriptor.to_json());
        let (status, text) = route(&state, &request("POST", "/runs", &body));
        assert_eq!(status, 201, "{text}");
        let snapshot = service.cluster_index().snapshot("fig2").unwrap();
        assert!(snapshot.cluster_of("r3").is_some(), "streamed run was folded in");
        // And r3 (a copy of r2) landed in r2's cluster.
        assert_eq!(snapshot.cluster_of("r3"), snapshot.cluster_of("r2"));
        // The recluster lag was observed.
        assert!(state
            .metrics()
            .render(state.router())
            .contains("wfdiff_cluster_update_duration_seconds_count 1"));
    }

    #[test]
    fn sharded_specs_and_healthz_aggregate_across_shards() {
        let state = sharded_state();
        let (status, body) = route(&state, &request("GET", "/specs", ""));
        assert_eq!(status, 200, "{body}");
        let out: SpecsResponse = serde_json::from_str(&body).unwrap();
        let names: Vec<&str> = out.specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["aux", "fig2"], "merged and sorted across shards");

        let (status, body) = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(status, 200, "{body}");
        let health: HealthResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(health.specs, 2);
        assert_eq!(health.runs, 3);
        assert_eq!(health.shards.len(), 2);
        assert_eq!(health.shards.iter().map(|s| s.runs).sum::<usize>(), 3);
    }

    #[test]
    fn sharded_requests_route_to_the_owning_shard() {
        let state = sharded_state();
        // Both specs answer correctly even though they live on different
        // shards behind one route table.
        let (status, body) = route(&state, &request("GET", "/diff?spec=fig2&a=r1&b=r2", ""));
        assert_eq!(status, 200, "{body}");
        let (status, body) = route(&state, &request("GET", "/specs/aux/runs", ""));
        assert_eq!(status, 200, "{body}");
        let runs: RunsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(runs.runs, vec!["a1"]);
        // Unknown specs 404 regardless of which shard the hash picks.
        let (status, _) = route(&state, &request("GET", "/specs/nope/runs", ""));
        assert_eq!(status, 404);
    }

    fn stream_body(spec: &str, stream: &str, events: Vec<StreamEvent>, finalize: bool) -> String {
        serde_json::to_string(&StreamEventsRequest {
            spec: spec.to_string(),
            stream: stream.to_string(),
            events,
            finalize,
        })
        .unwrap()
    }

    /// Events for fig2's single-branch run `1 -> 2 -> branch -> 6 -> 7`.
    fn branch_events(branch: &str) -> Vec<StreamEvent> {
        let labels = ["1", "2", branch, "6", "7"];
        let mut events = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let preds = if i == 0 { vec![] } else { vec![i - 1] };
            events.push(StreamEvent::started(i, *label, preds));
            events.push(StreamEvent::completed(i));
        }
        events
    }

    #[test]
    fn stream_endpoint_streams_drifts_and_finalizes() {
        let state = state();
        // Cluster the two stored runs so drift verdicts have medoids.
        let (status, _) =
            route(&state, &request("GET", "/cluster?spec=fig2&algo=kmedoids&k=2", ""));
        assert_eq!(status, 200);

        // First batch: open the stream with a partial prefix.
        let events = branch_events("3");
        let (head, tail) = events.split_at(5);
        let (status, body) = route(
            &state,
            &request("POST", "/runs/stream", &stream_body("fig2", "s1", head.to_vec(), false)),
        );
        assert_eq!(status, 200, "{body}");
        let out: StreamEventsResponse = serde_json::from_str(&body).unwrap();
        assert_eq!((out.base_seq, out.seq), (0, 5));
        assert!(!out.complete && !out.finalized);
        let drift = out.drift.expect("open streams report drift");
        assert_eq!(drift.clusters.len(), 2, "one verdict per cluster");
        assert!(!out.persisted, "no store directory configured");

        // The drift endpoint answers for the in-flight stream too.
        let (status, body) = route(&state, &request("GET", "/runs/fig2/s1/drift", ""));
        assert_eq!(status, 200, "{body}");
        let live: DriftResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(live.events, 5);
        assert_eq!(live.clusters.len(), 2);

        // Second batch finalizes: the stream becomes stored run "s1".
        let (status, body) = route(
            &state,
            &request("POST", "/runs/stream", &stream_body("fig2", "s1", tail.to_vec(), true)),
        );
        assert_eq!(status, 201, "{body}");
        let out: StreamEventsResponse = serde_json::from_str(&body).unwrap();
        assert!(out.complete && out.finalized);
        assert!(out.drift.is_none(), "finalised responses carry no drift");
        let store = state.router().shard_for("fig2").service().store().clone();
        assert!(store.run("fig2", "s1").is_some());
        // The stream is gone: its drift endpoint 404s now.
        let (status, _) = route(&state, &request("GET", "/runs/fig2/s1/drift", ""));
        assert_eq!(status, 404);
        // And the streamed run joined the incremental clustering.
        let service = state.router().shard_for("fig2").service();
        let snapshot = service.cluster_index().snapshot("fig2").unwrap();
        assert!(snapshot.cluster_of("s1").is_some());
    }

    #[test]
    fn drift_endpoint_builds_clustering_on_demand() {
        let state = state();
        let (status, body) = route(
            &state,
            &request(
                "POST",
                "/runs/stream",
                &stream_body("fig2", "s1", branch_events("3")[..2].to_vec(), false),
            ),
        );
        assert_eq!(status, 200, "{body}");
        let out: StreamEventsResponse = serde_json::from_str(&body).unwrap();
        let drift = out.drift.unwrap();
        assert!(drift.clusters.is_empty() && !drift.drifted, "no clustering built yet");

        // ?k= refreshes the clustering in the same request.
        let (status, body) = route(&state, &request("GET", "/runs/fig2/s1/drift?k=1", ""));
        assert_eq!(status, 200, "{body}");
        let out: DriftResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].size, 2, "both stored runs in one cluster");
        assert!(out.clusters[0].radius > 0.0);
    }

    #[test]
    fn malformed_stream_batches_are_typed_rejections() {
        let state = state();
        // Unknown spec → 404.
        let (status, body) = route(
            &state,
            &request("POST", "/runs/stream", &stream_body("zz", "s1", vec![], false)),
        );
        assert_eq!(status, 404, "{body}");
        // Stream name colliding with a stored run → 400.
        let (status, body) = route(
            &state,
            &request("POST", "/runs/stream", &stream_body("fig2", "r1", vec![], false)),
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("invalid_query"));
        // Duplicate start → 409 conflict, and the batch is atomic: nothing
        // from the bad batch sticks.
        let mut events = branch_events("3")[..2].to_vec();
        events.push(StreamEvent::started(0, "1", vec![]));
        let (status, body) = route(
            &state,
            &request("POST", "/runs/stream", &stream_body("fig2", "s1", events, false)),
        );
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("stream_conflict"));
        let service = state.router().shard_for("fig2").service();
        assert!(service.stream_seq("fig2", "s1").is_none(), "rejected batch opened no stream");
        // Completion of a never-started node → 400.
        let (status, body) = route(
            &state,
            &request(
                "POST",
                "/runs/stream",
                &stream_body("fig2", "s1", vec![StreamEvent::completed(9)], false),
            ),
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("invalid_stream_event"));
        // Finalizing an incomplete stream → 409, stream stays open.
        let open = stream_body("fig2", "s2", branch_events("3")[..3].to_vec(), false);
        let (status, _) = route(&state, &request("POST", "/runs/stream", &open));
        assert_eq!(status, 200);
        let (status, body) = route(
            &state,
            &request("POST", "/runs/stream", &stream_body("fig2", "s2", vec![], true)),
        );
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("stream_conflict"));
        assert_eq!(service.stream_seq("fig2", "s2"), Some(3));
        // Malformed JSON → 400; wrong methods → 405.
        let (status, _) = route(&state, &request("POST", "/runs/stream", "{not json"));
        assert_eq!(status, 400);
        let (status, _) = route(&state, &request("GET", "/runs/stream", ""));
        assert_eq!(status, 405);
        let (status, _) = route(&state, &request("POST", "/runs/fig2/s2/drift", ""));
        assert_eq!(status, 405);
        // Drift of an unknown stream → 404.
        let (status, body) = route(&state, &request("GET", "/runs/fig2/nope/drift", ""));
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("unknown_stream"));
    }

    #[test]
    fn delete_closes_a_stuck_stream() {
        let state = state();
        let open = stream_body("fig2", "stuck", branch_events("3")[..3].to_vec(), false);
        let (status, _) = route(&state, &request("POST", "/runs/stream", &open));
        assert_eq!(status, 200);
        let (status, body) = route(&state, &request("DELETE", "/runs/fig2/stuck/stream", ""));
        assert_eq!(status, 200, "{body}");
        let out: StreamCloseResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(out.seq, 3);
        assert!(!out.persisted, "no store directory configured");
        let service = state.router().shard_for("fig2").service();
        assert!(service.stream_seq("fig2", "stuck").is_none());
        // Closing twice → 404; wrong method → 405.
        let (status, _) = route(&state, &request("DELETE", "/runs/fig2/stuck/stream", ""));
        assert_eq!(status, 404);
        let (status, _) = route(&state, &request("GET", "/runs/fig2/stuck/stream", ""));
        assert_eq!(status, 405);
    }

    #[test]
    fn metrics_dispatch_serves_text_and_rejects_post() {
        let state = state();
        let _ = route(&state, &request("GET", "/diff?spec=fig2&a=r1&b=r2", ""));
        let response = dispatch(&state, &request("GET", "/metrics", ""));
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, METRICS_CONTENT_TYPE);
        assert!(response.body.contains("# TYPE wfdiff_http_requests_total counter"));
        assert!(response.body.contains("wfdiff_shards 1"));
        let response = dispatch(&state, &request("POST", "/metrics", ""));
        assert_eq!(response.status, 405);
        assert_eq!(response.content_type, "application/json");
    }
}
