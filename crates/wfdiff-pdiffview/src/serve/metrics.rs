//! Lock-cheap serving metrics and their Prometheus text rendering.
//!
//! Every instrument is a fixed-size atomic — counters and gauges are single
//! `AtomicU64`/`AtomicI64` cells, latency histograms are a fixed bucket
//! array — so the hot path (one request) costs a handful of relaxed atomic
//! adds and never takes a lock or allocates.  The registry itself is static:
//! the full set of series is known at construction time (endpoints are an
//! enum, shards are counted at boot), which is what keeps recording
//! allocation-free.
//!
//! Rendering happens only on `GET /metrics`: [`ServeMetrics::render`] walks
//! the instruments **and** samples live per-shard state (store sizes, diff
//! cache counters) from the [`ShardRouter`], emitting the Prometheus text
//! exposition format (`# HELP`/`# TYPE` comment lines followed by every
//! sample of that metric).  See `docs/OPERATIONS.md` for the metric-by-metric
//! reference.

use super::shard::ShardRouter;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The histogram bucket boundaries: upper bounds in seconds (as rendered in
/// the `le` label) paired with the same bound in integer microseconds (what
/// observations are compared against).  A `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS: [(&str, u64); 14] = [
    ("0.0001", 100),
    ("0.00025", 250),
    ("0.0005", 500),
    ("0.001", 1_000),
    ("0.0025", 2_500),
    ("0.005", 5_000),
    ("0.01", 10_000),
    ("0.025", 25_000),
    ("0.05", 50_000),
    ("0.1", 100_000),
    ("0.25", 250_000),
    ("0.5", 500_000),
    ("1", 1_000_000),
    ("2.5", 2_500_000),
];

/// A fixed-bucket latency histogram (Prometheus `histogram` type: cumulative
/// `_bucket` samples plus `_sum` and `_count`).
///
/// Observations are recorded in microseconds; `_sum` is rendered in seconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [Counter; LATENCY_BUCKETS.len()],
    sum_micros: Counter,
    count: Counter,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        for (i, (_, bound)) in LATENCY_BUCKETS.iter().enumerate() {
            if micros <= *bound {
                self.buckets[i].inc();
                break;
            }
        }
        self.sum_micros.add(micros);
        self.count.inc();
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_micros.get() as f64 / 1_000_000.0
    }

    /// Cumulative count at or below bucket `i` of [`LATENCY_BUCKETS`].
    pub fn cumulative(&self, i: usize) -> u64 {
        self.buckets[..=i].iter().map(Counter::get).sum()
    }
}

/// The endpoints the server distinguishes in per-endpoint metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /specs`.
    Specs,
    /// `GET /specs/{name}/runs`.
    SpecRuns,
    /// `POST /runs`.
    InsertRun,
    /// `GET /diff`.
    Diff,
    /// `POST /diff/batch`.
    DiffBatch,
    /// `GET /cluster` (both `prefix` and `kmedoids`).
    Cluster,
    /// `GET /similar`.
    Similar,
    /// `POST /runs/stream`.
    RunsStream,
    /// `GET /runs/{spec}/{stream}/drift`.
    Drift,
    /// `GET /metrics`.
    Metrics,
    /// Anything else (404s, unknown paths).
    Other,
}

/// Every endpoint, in rendering order (must match the enum's declaration
/// order — [`ServeMetrics::observe_request`] indexes by discriminant).
pub const ENDPOINTS: [Endpoint; 12] = [
    Endpoint::Healthz,
    Endpoint::Specs,
    Endpoint::SpecRuns,
    Endpoint::InsertRun,
    Endpoint::Diff,
    Endpoint::DiffBatch,
    Endpoint::Cluster,
    Endpoint::Similar,
    Endpoint::RunsStream,
    Endpoint::Drift,
    Endpoint::Metrics,
    Endpoint::Other,
];

impl Endpoint {
    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Specs => "specs",
            Endpoint::SpecRuns => "spec_runs",
            Endpoint::InsertRun => "insert_run",
            Endpoint::Diff => "diff",
            Endpoint::DiffBatch => "diff_batch",
            Endpoint::Cluster => "cluster",
            Endpoint::Similar => "similar",
            Endpoint::RunsStream => "runs_stream",
            Endpoint::Drift => "drift",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request by method and path segments.  The mapping is by
    /// *path shape* (not outcome), so a `405` on `/healthz` still counts
    /// against `healthz`.
    pub fn classify(segments: &[&str]) -> Endpoint {
        match segments {
            ["healthz"] => Endpoint::Healthz,
            ["specs"] => Endpoint::Specs,
            ["specs", _, "runs"] => Endpoint::SpecRuns,
            ["runs"] => Endpoint::InsertRun,
            ["runs", "stream"] => Endpoint::RunsStream,
            ["runs", _, _, "drift"] => Endpoint::Drift,
            ["diff"] => Endpoint::Diff,
            ["diff", "batch"] => Endpoint::DiffBatch,
            ["cluster"] => Endpoint::Cluster,
            ["similar"] => Endpoint::Similar,
            ["metrics"] => Endpoint::Metrics,
            _ => Endpoint::Other,
        }
    }
}

/// The status-class label values of `wfdiff_http_requests_total`.
pub const STATUS_CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

/// Maps a status code to its index in [`STATUS_CLASSES`].
fn status_class(status: u16) -> usize {
    match status / 100 {
        2 | 3 => 0,
        4 => 1,
        _ => 2,
    }
}

/// Per-endpoint instruments: request counters by status class and a latency
/// histogram.
#[derive(Debug, Default)]
struct EndpointMetrics {
    requests: [Counter; STATUS_CLASSES.len()],
    latency: Histogram,
}

/// The server's metrics registry.  One instance per [`Server`]; shared
/// (behind an `Arc`) between the reactor, the HTTP workers and the handlers.
///
/// [`Server`]: crate::serve::Server
#[derive(Debug)]
pub struct ServeMetrics {
    endpoints: [EndpointMetrics; ENDPOINTS.len()],
    shard_requests: Vec<Counter>,
    bytes_read: Counter,
    bytes_written: Counter,
    connections_opened: Counter,
    connections_closed: Counter,
    connections_rejected: Counter,
    connections_active: Gauge,
    requests_in_flight: Gauge,
    workers: Gauge,
    workers_busy: Gauge,
    cluster_update: Histogram,
    similar_pruned: Counter,
    similar_distance_evals: Counter,
    stream_events: Counter,
    drift_flags: Counter,
}

impl ServeMetrics {
    /// Creates a registry for a server with `shards` store shards.
    pub fn new(shards: usize) -> Self {
        ServeMetrics {
            endpoints: Default::default(),
            shard_requests: (0..shards.max(1)).map(|_| Counter::new()).collect(),
            bytes_read: Counter::new(),
            bytes_written: Counter::new(),
            connections_opened: Counter::new(),
            connections_closed: Counter::new(),
            connections_rejected: Counter::new(),
            connections_active: Gauge::new(),
            requests_in_flight: Gauge::new(),
            workers: Gauge::new(),
            workers_busy: Gauge::new(),
            cluster_update: Histogram::new(),
            similar_pruned: Counter::new(),
            similar_distance_evals: Counter::new(),
            stream_events: Counter::new(),
            drift_flags: Counter::new(),
        }
    }

    /// Records one completed request.
    pub fn observe_request(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let e = &self.endpoints[endpoint as usize];
        e.requests[status_class(status)].inc();
        e.latency.observe(elapsed);
    }

    /// Records that a request was routed to shard `i` (saturating to the
    /// last shard counter for out-of-range indices, which cannot happen
    /// through the router).
    pub fn observe_shard_request(&self, i: usize) {
        let last = self.shard_requests.len() - 1;
        self.shard_requests[i.min(last)].inc();
    }

    /// Records one incremental cluster-index update (the recluster lag a
    /// `POST /runs` pays to keep clustering fresh).
    pub fn observe_cluster_update(&self, elapsed: Duration) {
        self.cluster_update.observe(elapsed);
    }

    /// Bytes read off client sockets.
    pub fn bytes_read(&self) -> &Counter {
        &self.bytes_read
    }

    /// Bytes written to client sockets.
    pub fn bytes_written(&self) -> &Counter {
        &self.bytes_written
    }

    /// Connections accepted.
    pub fn connections_opened(&self) -> &Counter {
        &self.connections_opened
    }

    /// Connections closed (any reason).
    pub fn connections_closed(&self) -> &Counter {
        &self.connections_closed
    }

    /// Connections refused with `503` because the connection table was full.
    pub fn connections_rejected(&self) -> &Counter {
        &self.connections_rejected
    }

    /// Currently open connections.
    pub fn connections_active(&self) -> &Gauge {
        &self.connections_active
    }

    /// Requests dispatched to the worker pool and not yet answered
    /// (queued + executing).
    pub fn requests_in_flight(&self) -> &Gauge {
        &self.requests_in_flight
    }

    /// Configured HTTP worker count (set once at start).
    pub fn workers(&self) -> &Gauge {
        &self.workers
    }

    /// HTTP workers currently executing a handler — compare against
    /// [`ServeMetrics::workers`] for saturation.
    pub fn workers_busy(&self) -> &Gauge {
        &self.workers_busy
    }

    /// `GET /similar` queries answered through the metric index
    /// (`pruned=1` / `approx=`).
    pub fn similar_pruned(&self) -> &Counter {
        &self.similar_pruned
    }

    /// Edit-distance evaluations `GET /similar` queries performed (both the
    /// exact sweep's n−1 and the metric index's pruned count) — divide by
    /// `wfdiff_http_requests_total{endpoint="similar"}` for evals per query.
    pub fn similar_distance_evals(&self) -> &Counter {
        &self.similar_distance_evals
    }

    /// Node-lifecycle events accepted by `POST /runs/stream` (rejected
    /// batches count zero).
    pub fn stream_events(&self) -> &Counter {
        &self.stream_events
    }

    /// Drift verdicts (`drifted: true`) returned by `POST /runs/stream` and
    /// `GET /runs/{spec}/{stream}/drift` responses.
    pub fn drift_flags(&self) -> &Counter {
        &self.drift_flags
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// sampling live per-shard state (store sizes, diff-cache counters,
    /// diff-worker counts) from `router` at scrape time.
    pub fn render(&self, router: &ShardRouter) -> String {
        let mut out = String::with_capacity(8 * 1024);
        let m = &mut out;

        head(
            m,
            "wfdiff_http_requests_total",
            "counter",
            "Requests served, by endpoint and status class.",
        );
        for (i, ep) in ENDPOINTS.iter().enumerate() {
            for (c, class) in STATUS_CLASSES.iter().enumerate() {
                let v = self.endpoints[i].requests[c].get();
                sample(
                    m,
                    "wfdiff_http_requests_total",
                    &[("endpoint", ep.label()), ("code", class)],
                    &v.to_string(),
                );
            }
        }

        head(
            m,
            "wfdiff_http_request_duration_seconds",
            "histogram",
            "Request latency from parse completion to response bytes queued, by endpoint.",
        );
        for (i, ep) in ENDPOINTS.iter().enumerate() {
            let h = &self.endpoints[i].latency;
            for (b, (le, _)) in LATENCY_BUCKETS.iter().enumerate() {
                sample(
                    m,
                    "wfdiff_http_request_duration_seconds_bucket",
                    &[("endpoint", ep.label()), ("le", le)],
                    &h.cumulative(b).to_string(),
                );
            }
            sample(
                m,
                "wfdiff_http_request_duration_seconds_bucket",
                &[("endpoint", ep.label()), ("le", "+Inf")],
                &h.count().to_string(),
            );
            sample(
                m,
                "wfdiff_http_request_duration_seconds_sum",
                &[("endpoint", ep.label())],
                &format!("{}", h.sum_seconds()),
            );
            sample(
                m,
                "wfdiff_http_request_duration_seconds_count",
                &[("endpoint", ep.label())],
                &h.count().to_string(),
            );
        }

        head(
            m,
            "wfdiff_shard_requests_total",
            "counter",
            "Spec-addressed requests routed to each shard.",
        );
        for (i, c) in self.shard_requests.iter().enumerate() {
            sample(
                m,
                "wfdiff_shard_requests_total",
                &[("shard", &i.to_string())],
                &c.get().to_string(),
            );
        }

        counter_head_sample(
            m,
            "wfdiff_http_bytes_read_total",
            "Bytes read off client sockets.",
            &self.bytes_read,
        );
        counter_head_sample(
            m,
            "wfdiff_http_bytes_written_total",
            "Bytes written to client sockets.",
            &self.bytes_written,
        );
        counter_head_sample(
            m,
            "wfdiff_http_connections_opened_total",
            "Connections accepted.",
            &self.connections_opened,
        );
        counter_head_sample(
            m,
            "wfdiff_http_connections_closed_total",
            "Connections closed.",
            &self.connections_closed,
        );
        counter_head_sample(
            m,
            "wfdiff_http_connections_rejected_total",
            "Connections answered 503 because the connection table was full.",
            &self.connections_rejected,
        );
        counter_head_sample(
            m,
            "wfdiff_similar_pruned_total",
            "GET /similar queries answered through the metric index.",
            &self.similar_pruned,
        );
        counter_head_sample(
            m,
            "wfdiff_similar_distance_evals_total",
            "Edit-distance evaluations performed by GET /similar queries.",
            &self.similar_distance_evals,
        );
        counter_head_sample(
            m,
            "wfdiff_stream_events_total",
            "Node-lifecycle events accepted by POST /runs/stream.",
            &self.stream_events,
        );
        counter_head_sample(
            m,
            "wfdiff_drift_flags_total",
            "Drift verdicts returned by streaming and drift endpoints.",
            &self.drift_flags,
        );

        gauge_head_sample(
            m,
            "wfdiff_http_connections_active",
            "Currently open connections.",
            self.connections_active.get(),
        );
        gauge_head_sample(
            m,
            "wfdiff_http_requests_in_flight",
            "Requests dispatched to the worker pool and not yet answered.",
            self.requests_in_flight.get(),
        );
        gauge_head_sample(
            m,
            "wfdiff_http_workers",
            "Configured HTTP worker threads.",
            self.workers.get(),
        );
        gauge_head_sample(
            m,
            "wfdiff_http_workers_busy",
            "HTTP workers currently executing a handler.",
            self.workers_busy.get(),
        );

        head(
            m,
            "wfdiff_cluster_update_duration_seconds",
            "histogram",
            "Incremental cluster-index update latency per inserted run (recluster lag).",
        );
        let h = &self.cluster_update;
        for (b, (le, _)) in LATENCY_BUCKETS.iter().enumerate() {
            sample(
                m,
                "wfdiff_cluster_update_duration_seconds_bucket",
                &[("le", le)],
                &h.cumulative(b).to_string(),
            );
        }
        sample(
            m,
            "wfdiff_cluster_update_duration_seconds_bucket",
            &[("le", "+Inf")],
            &h.count().to_string(),
        );
        sample(
            m,
            "wfdiff_cluster_update_duration_seconds_sum",
            &[],
            &format!("{}", h.sum_seconds()),
        );
        sample(m, "wfdiff_cluster_update_duration_seconds_count", &[], &h.count().to_string());

        gauge_head_sample(
            m,
            "wfdiff_shards",
            "Store shards behind this server.",
            router.len() as i64,
        );

        head(m, "wfdiff_diff_workers", "gauge", "Diff-engine worker threads, per shard.");
        for (i, shard) in router.shards().iter().enumerate() {
            sample(
                m,
                "wfdiff_diff_workers",
                &[("shard", &i.to_string())],
                &shard.service().threads().to_string(),
            );
        }

        head(m, "wfdiff_store_specs", "gauge", "Specifications stored, per shard.");
        for (i, shard) in router.shards().iter().enumerate() {
            sample(
                m,
                "wfdiff_store_specs",
                &[("shard", &i.to_string())],
                &shard.service().store().spec_names().len().to_string(),
            );
        }
        head(m, "wfdiff_store_runs", "gauge", "Runs stored, per shard.");
        for (i, shard) in router.shards().iter().enumerate() {
            sample(
                m,
                "wfdiff_store_runs",
                &[("shard", &i.to_string())],
                &shard.service().store().run_count().to_string(),
            );
        }

        let stats: Vec<_> = router.shards().iter().map(|s| s.service().cache_stats()).collect();
        head(m, "wfdiff_diff_cache_hits_total", "counter", "Diff-cache hits, per shard.");
        for (i, s) in stats.iter().enumerate() {
            sample(
                m,
                "wfdiff_diff_cache_hits_total",
                &[("shard", &i.to_string())],
                &s.hits.to_string(),
            );
        }
        head(m, "wfdiff_diff_cache_misses_total", "counter", "Diff-cache misses, per shard.");
        for (i, s) in stats.iter().enumerate() {
            sample(
                m,
                "wfdiff_diff_cache_misses_total",
                &[("shard", &i.to_string())],
                &s.misses.to_string(),
            );
        }
        head(
            m,
            "wfdiff_diff_cache_insertions_total",
            "counter",
            "Diff-cache insertions, per shard.",
        );
        for (i, s) in stats.iter().enumerate() {
            sample(
                m,
                "wfdiff_diff_cache_insertions_total",
                &[("shard", &i.to_string())],
                &s.insertions.to_string(),
            );
        }
        head(m, "wfdiff_diff_cache_evictions_total", "counter", "Diff-cache evictions, per shard.");
        for (i, s) in stats.iter().enumerate() {
            sample(
                m,
                "wfdiff_diff_cache_evictions_total",
                &[("shard", &i.to_string())],
                &s.evictions.to_string(),
            );
        }
        head(m, "wfdiff_diff_cache_entries", "gauge", "Diff-cache resident entries, per shard.");
        for (i, s) in stats.iter().enumerate() {
            sample(
                m,
                "wfdiff_diff_cache_entries",
                &[("shard", &i.to_string())],
                &s.entries.to_string(),
            );
        }

        let wal: Vec<_> = router.shards().iter().map(|s| s.service().wal_stats()).collect();
        head(
            m,
            "wfdiff_wal_appends_total",
            "counter",
            "Write-ahead-log records appended, per shard.",
        );
        for (i, s) in wal.iter().enumerate() {
            sample(
                m,
                "wfdiff_wal_appends_total",
                &[("shard", &i.to_string())],
                &s.appends_total.to_string(),
            );
        }
        head(m, "wfdiff_wal_bytes", "gauge", "Write-ahead-log bytes pending a fold, per shard.");
        for (i, s) in wal.iter().enumerate() {
            sample(m, "wfdiff_wal_bytes", &[("shard", &i.to_string())], &s.bytes.to_string());
        }
        head(
            m,
            "wfdiff_wal_replayed_records",
            "gauge",
            "Write-ahead-log records replayed at the last load, per shard.",
        );
        for (i, s) in wal.iter().enumerate() {
            sample(
                m,
                "wfdiff_wal_replayed_records",
                &[("shard", &i.to_string())],
                &s.replayed_records.to_string(),
            );
        }
        head(
            m,
            "wfdiff_checkpoint_folds_total",
            "counter",
            "Checkpoints that folded the write-ahead log into the manifest, per shard.",
        );
        for (i, s) in wal.iter().enumerate() {
            sample(
                m,
                "wfdiff_checkpoint_folds_total",
                &[("shard", &i.to_string())],
                &s.folds_total.to_string(),
            );
        }

        out
    }
}

fn head(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn counter_head_sample(out: &mut String, name: &str, help: &str, c: &Counter) {
    head(out, name, "counter", help);
    sample(out, name, &[], &c.get().to_string());
}

fn gauge_head_sample(out: &mut String, name: &str, help: &str, v: i64) {
    head(out, name, "gauge", help);
    sample(out, name, &[], &v.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(50)); // <= 100µs bucket
        h.observe(Duration::from_micros(300)); // <= 500µs bucket
        h.observe(Duration::from_secs(10)); // +Inf only
        assert_eq!(h.count(), 3);
        assert_eq!(h.cumulative(0), 1);
        assert_eq!(h.cumulative(1), 1);
        assert_eq!(h.cumulative(2), 2);
        assert_eq!(h.cumulative(LATENCY_BUCKETS.len() - 1), 2, "+Inf-only sample not in a bucket");
        let mut prev = 0;
        for i in 0..LATENCY_BUCKETS.len() {
            let c = h.cumulative(i);
            assert!(c >= prev, "bucket {i} is not cumulative");
            prev = c;
        }
        assert!(h.sum_seconds() > 10.0);
    }

    #[test]
    fn endpoint_classification_matches_the_route_table() {
        assert_eq!(Endpoint::classify(&["healthz"]), Endpoint::Healthz);
        assert_eq!(Endpoint::classify(&["specs"]), Endpoint::Specs);
        assert_eq!(Endpoint::classify(&["specs", "x", "runs"]), Endpoint::SpecRuns);
        assert_eq!(Endpoint::classify(&["runs"]), Endpoint::InsertRun);
        assert_eq!(Endpoint::classify(&["runs", "stream"]), Endpoint::RunsStream);
        assert_eq!(Endpoint::classify(&["runs", "fig2", "s1", "drift"]), Endpoint::Drift);
        assert_eq!(Endpoint::classify(&["diff"]), Endpoint::Diff);
        assert_eq!(Endpoint::classify(&["diff", "batch"]), Endpoint::DiffBatch);
        assert_eq!(Endpoint::classify(&["cluster"]), Endpoint::Cluster);
        assert_eq!(Endpoint::classify(&["similar"]), Endpoint::Similar);
        assert_eq!(Endpoint::classify(&["metrics"]), Endpoint::Metrics);
        assert_eq!(Endpoint::classify(&["nope"]), Endpoint::Other);
        assert_eq!(Endpoint::classify(&[]), Endpoint::Other);
    }

    #[test]
    fn endpoints_array_matches_declaration_order() {
        for (i, ep) in ENDPOINTS.iter().enumerate() {
            assert_eq!(*ep as usize, i, "ENDPOINTS[{i}] is {}", ep.label());
        }
    }

    #[test]
    fn status_classes_cover_every_emitted_status() {
        assert_eq!(status_class(200), 0);
        assert_eq!(status_class(201), 0);
        assert_eq!(status_class(404), 1);
        assert_eq!(status_class(500), 2);
        assert_eq!(status_class(503), 2);
    }
}
