//! Pluggable durability I/O — the seam the crash-torture harness injects
//! faults through.
//!
//! Every operation the persistence stack relies on for durability or
//! atomicity (directory creation, full-file and append writes, fsyncs,
//! renames, removals, truncations) is routed through the [`StoreIo`] trait
//! instead of being called on `std::fs` directly.  Reads are deliberately
//! *not* abstracted: a crash can only lose or tear what was being written.
//!
//! Two implementations ship:
//!
//! * [`RealIo`] — the passthrough to `std::fs`, the default of every
//!   [`WorkflowStore`](crate::store::WorkflowStore).
//! * [`FaultIo`] — a deterministic crash injector: it counts the durability
//!   operations flowing through it and, at the configured N-th operation,
//!   kills the process ([`FaultMode::Kill`]), writes a torn byte prefix and
//!   then kills the process ([`FaultMode::Torn`]), or returns an I/O error
//!   ([`FaultMode::Error`], for in-process tests).  The `crash_torture`
//!   binary in `wfdiff-bench` sweeps N over every operation of a scripted
//!   workload and asserts that recovery is prefix-consistent after each
//!   crash — the executable form of the dashflow TLA-004
//!   (`CheckpointConsistency`) and TLA-005 (`WALAppendOrdering`) invariants.
//!
//! Because killing the process is simulated by [`std::process::exit`] (not a
//! kernel crash), writes that completed before the fault point are durable
//! even without their fsync; the torn mode is what exercises the
//! partial-write recovery paths (WAL tail truncation, `.tmp` sweeping).

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exit code a [`FaultIo`] uses when it kills the process at its fault
/// point, so a torture-harness parent can tell a scheduled crash from an
/// ordinary failure.
pub const FAULT_EXIT_CODE: i32 = 86;

/// Environment variable holding the 1-based fault point for
/// [`FaultIo::from_env`]; `0`, empty or unset disables injection.
pub const FAULT_POINT_ENV: &str = "WFDIFF_FAULT_POINT";

/// Environment variable holding the [`FaultMode`] (`kill`, `torn` or
/// `error`) for [`FaultIo::from_env`]; defaults to `kill`.
pub const FAULT_MODE_ENV: &str = "WFDIFF_FAULT_MODE";

/// The durability-relevant filesystem operations of the persistence stack.
///
/// Implementations must be shareable across threads; the store keeps one
/// handle and routes every save, append and WAL operation through it.
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// Creates a directory and all of its parents (idempotent).
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;

    /// Creates (or truncates) `path` and writes `bytes` to it, without
    /// syncing — pair with [`StoreIo::fsync_file`].
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Appends `bytes` to `path`, creating the file if it does not exist,
    /// without syncing — pair with [`StoreIo::fsync_file`].
    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Forces file contents (and metadata) to stable storage.
    fn fsync_file(&self, path: &Path) -> std::io::Result<()>;

    /// Forces a directory entry (e.g. a just-committed rename) to stable
    /// storage.  Callers treat failures as best-effort — not every platform
    /// lets a directory be opened and synced — but the call still counts as
    /// a fault point.
    fn fsync_dir(&self, path: &Path) -> std::io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;

    /// Removes a directory and everything under it (the garbage-collection
    /// sweep of replaced spec versions).
    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()>;

    /// Truncates (or extends) `path` to exactly `len` bytes, without
    /// syncing — pair with [`StoreIo::fsync_file`].
    fn truncate_file(&self, path: &Path, len: u64) -> std::io::Result<()>;
}

/// The `std::fs` passthrough — what production stores use.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        fs::create_dir_all(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(bytes)
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)
    }

    fn fsync_file(&self, path: &Path) -> std::io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, path: &Path) -> std::io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn truncate_file(&self, path: &Path, len: u64) -> std::io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }
}

/// What a [`FaultIo`] does when the operation counter reaches its fault
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Kill the process before the operation takes effect.
    Kill,
    /// For byte-writing operations, write a strict prefix of the bytes and
    /// then kill the process (a torn write); for every other operation,
    /// behave like [`FaultMode::Kill`].
    Torn,
    /// Return an `std::io::Error` instead of performing the operation —
    /// lets in-process tests exercise error paths without dying.
    Error,
}

impl FaultMode {
    /// Parses the [`FAULT_MODE_ENV`] spelling; unknown values fall back to
    /// [`FaultMode::Kill`] (the torture harness only ever sets valid ones).
    pub fn parse(s: &str) -> FaultMode {
        match s {
            "torn" => FaultMode::Torn,
            "error" => FaultMode::Error,
            _ => FaultMode::Kill,
        }
    }
}

/// What the fault check decided for one operation.
enum Trip {
    Pass,
    Fault,
}

/// A deterministic crash injector wrapping another [`StoreIo`]; see the
/// [module docs](self).
#[derive(Debug)]
pub struct FaultIo {
    inner: Arc<dyn StoreIo>,
    /// 1-based operation index to fault at; `0` disables injection (the
    /// wrapper then only counts operations).
    fault_point: u64,
    mode: FaultMode,
    ops: AtomicU64,
}

impl FaultIo {
    /// Wraps `inner`, faulting at the `fault_point`-th operation (1-based;
    /// `0` = count only).
    pub fn new(inner: Arc<dyn StoreIo>, fault_point: u64, mode: FaultMode) -> FaultIo {
        FaultIo { inner, fault_point, mode, ops: AtomicU64::new(0) }
    }

    /// Builds a [`FaultIo`] from [`FAULT_POINT_ENV`] and [`FAULT_MODE_ENV`]
    /// — the re-exec configuration channel of the torture harness.
    pub fn from_env(inner: Arc<dyn StoreIo>) -> FaultIo {
        let fault_point =
            std::env::var(FAULT_POINT_ENV).ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        let mode =
            std::env::var(FAULT_MODE_ENV).map(|v| FaultMode::parse(&v)).unwrap_or(FaultMode::Kill);
        FaultIo::new(inner, fault_point, mode)
    }

    /// Number of durability operations performed (or faulted) so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Acquire)
    }

    /// Counts one operation and decides whether it is the fault point.
    fn trip(&self) -> Trip {
        let n = self.ops.fetch_add(1, Ordering::AcqRel) + 1;
        if self.fault_point != 0 && n == self.fault_point {
            Trip::Fault
        } else {
            Trip::Pass
        }
    }

    /// Kills the process with [`FAULT_EXIT_CODE`].
    fn die() -> ! {
        std::process::exit(FAULT_EXIT_CODE)
    }

    fn fault_error() -> std::io::Error {
        std::io::Error::other("injected fault")
    }

    /// Fault behaviour for an operation that writes `bytes` somewhere: torn
    /// mode performs a prefix write through `write` before dying.
    fn fault_write(
        &self,
        bytes: &[u8],
        write: impl FnOnce(&[u8]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        match self.mode {
            FaultMode::Kill => Self::die(),
            FaultMode::Torn => {
                let _ = write(&bytes[..bytes.len() / 2]);
                Self::die()
            }
            FaultMode::Error => Err(Self::fault_error()),
        }
    }

    /// Fault behaviour for a non-writing operation: torn degrades to kill.
    fn fault_plain(&self) -> std::io::Result<()> {
        match self.mode {
            FaultMode::Kill | FaultMode::Torn => Self::die(),
            FaultMode::Error => Err(Self::fault_error()),
        }
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.create_dir_all(path),
            Trip::Fault => self.fault_plain(),
        }
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.write_file(path, bytes),
            Trip::Fault => self.fault_write(bytes, |prefix| self.inner.write_file(path, prefix)),
        }
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.append_file(path, bytes),
            Trip::Fault => self.fault_write(bytes, |prefix| self.inner.append_file(path, prefix)),
        }
    }

    fn fsync_file(&self, path: &Path) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.fsync_file(path),
            Trip::Fault => self.fault_plain(),
        }
    }

    fn fsync_dir(&self, path: &Path) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.fsync_dir(path),
            Trip::Fault => self.fault_plain(),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.rename(from, to),
            Trip::Fault => self.fault_plain(),
        }
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.remove_file(path),
            Trip::Fault => self.fault_plain(),
        }
    }

    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.remove_dir_all(path),
            Trip::Fault => self.fault_plain(),
        }
    }

    fn truncate_file(&self, path: &Path, len: u64) -> std::io::Result<()> {
        match self.trip() {
            Trip::Pass => self.inner.truncate_file(path, len),
            Trip::Fault => self.fault_plain(),
        }
    }
}

/// The store's shared I/O handle — `RealIo` unless a constructor injected
/// something else.
#[derive(Clone)]
pub(crate) struct IoHandle(pub(crate) Arc<dyn StoreIo>);

impl Default for IoHandle {
    fn default() -> Self {
        IoHandle(Arc::new(RealIo))
    }
}

impl fmt::Debug for IoHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::ops::Deref for IoHandle {
    type Target = dyn StoreIo;

    fn deref(&self) -> &(dyn StoreIo + 'static) {
        &*self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wfdiff-storeio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_round_trips_writes_appends_and_truncations() {
        let dir = tmp("real");
        let io = RealIo;
        let p = dir.join("file.bin");
        io.write_file(&p, b"hello").unwrap();
        io.append_file(&p, b" world").unwrap();
        io.fsync_file(&p).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"hello world");
        io.truncate_file(&p, 5).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"hello");
        let q = dir.join("renamed.bin");
        io.rename(&p, &q).unwrap();
        io.fsync_dir(&dir).unwrap();
        assert!(q.exists() && !p.exists());
        io.remove_file(&q).unwrap();
        assert!(!q.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_io_counts_and_errors_at_the_fault_point() {
        let dir = tmp("fault");
        let io = FaultIo::new(Arc::new(RealIo), 3, FaultMode::Error);
        let p = dir.join("file.bin");
        io.write_file(&p, b"one").unwrap(); // op 1
        io.append_file(&p, b"two").unwrap(); // op 2
        let err = io.fsync_file(&p).unwrap_err(); // op 3: the fault
        assert_eq!(err.to_string(), "injected fault");
        // Past the fault point, operations flow again and the counter kept
        // counting the faulted operation.
        io.fsync_file(&p).unwrap();
        assert_eq!(io.ops(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_point_zero_only_counts() {
        let dir = tmp("count");
        let io = FaultIo::new(Arc::new(RealIo), 0, FaultMode::Kill);
        let p = dir.join("file.bin");
        for _ in 0..5 {
            io.append_file(&p, b"x").unwrap();
        }
        assert_eq!(io.ops(), 5);
        assert_eq!(fs::read(&p).unwrap().len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_mode_parses_the_env_spellings() {
        assert_eq!(FaultMode::parse("kill"), FaultMode::Kill);
        assert_eq!(FaultMode::parse("torn"), FaultMode::Torn);
        assert_eq!(FaultMode::parse("error"), FaultMode::Error);
        assert_eq!(FaultMode::parse("anything-else"), FaultMode::Kill);
    }
}
