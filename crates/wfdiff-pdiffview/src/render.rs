//! Rendering diffs as text and Graphviz/DOT.
//!
//! Mirrors the PDiffView panes: the source run with deleted paths in red, the
//! target run with inserted paths in green (Figure 10 of the paper), plus a
//! textual summary suitable for terminals and logs.

use crate::session::DiffSession;
use std::collections::HashMap;
use wfdiff_core::{OpDirection, OpProvenance};
use wfdiff_graph::dot::{to_dot, DotStyle};
use wfdiff_sptree::NodeType;

/// Renders the session as a pair of DOT digraphs: `(source_view, target_view)`.
///
/// Edges covered by deletion operations are drawn red and bold in the source
/// view; edges covered by insertion operations are drawn green and bold in the
/// target view.
pub fn render_diff_dot(session: &DiffSession) -> (String, String) {
    let mut source_style =
        DotStyle::titled(format!("{}: source run (deleted paths in red)", session.spec().name()));
    source_style.show_node_ids = true;
    let mut target_style = DotStyle::titled(format!(
        "{}: target run (inserted paths in green)",
        session.spec().name()
    ));
    target_style.show_node_ids = true;

    let t1 = session.source().tree();
    let t2 = session.target().tree();
    for op in &session.script().ops {
        match (op.provenance, op.direction) {
            (OpProvenance::SourceRun, OpDirection::Delete) => {
                for &leaf in &op.leaves {
                    if let Some(edge) = t1.node(leaf).edge {
                        source_style.edge_attrs.insert(edge, "color=red, penwidth=2".to_string());
                    }
                }
            }
            (OpProvenance::TargetRun, OpDirection::Insert) => {
                for &leaf in &op.leaves {
                    if let Some(edge) = t2.node(leaf).edge {
                        target_style.edge_attrs.insert(edge, "color=green, penwidth=2".to_string());
                    }
                }
            }
            _ => {}
        }
    }
    (
        to_dot(session.source().graph(), "source_run", &source_style),
        to_dot(session.target().graph(), "target_run", &target_style),
    )
}

/// Renders a compact, human-readable textual diff: the overview line, the
/// per-module change counts and the edit script.
pub fn render_diff_text(session: &DiffSession) -> String {
    let mut out = String::new();
    out.push_str(&session.overview());
    out.push_str("\n\n");

    // Per-module change counts: how many deleted/inserted path operations touch
    // each module label.
    let mut per_module: HashMap<String, (usize, usize)> = HashMap::new();
    for op in &session.script().ops {
        for label in &op.labels {
            let entry = per_module.entry(label.as_str().to_string()).or_default();
            match op.direction {
                OpDirection::Delete => entry.0 += 1,
                OpDirection::Insert => entry.1 += 1,
            }
        }
    }
    let mut modules: Vec<_> = per_module.into_iter().collect();
    modules.sort();
    out.push_str("module changes (deletions / insertions touching the module):\n");
    for (module, (del, ins)) in modules {
        out.push_str(&format!("  {module:<24} -{del} +{ins}\n"));
    }
    out.push('\n');
    out.push_str("edit script:\n");
    out.push_str(&session.script().describe());
    out
}

/// Renders the annotated SP-tree of a run with fork/loop markers, a compact
/// replacement for the prototype's tree pane.
pub fn render_run_tree(run: &wfdiff_sptree::Run) -> String {
    let tree = run.tree();
    let mut out = String::new();
    for v in tree.preorder(tree.root()) {
        let node = tree.node(v);
        let indent = "  ".repeat(tree.depth(v));
        let marker = match node.ty {
            NodeType::F => format!(" (fork × {})", node.children.len()),
            NodeType::L => format!(" (loop × {})", node.children.len()),
            _ => String::new(),
        };
        out.push_str(&format!(
            "{indent}{}{} [{} -> {}]\n",
            node.ty, marker, node.s_label, node.t_label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_core::UnitCost;
    use wfdiff_workloads::figures::{fig2_run1, fig2_run2, fig2_specification};

    #[test]
    fn dot_views_highlight_changed_edges() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let session = DiffSession::new(&spec, &UnitCost, &r1, &r2).unwrap();
        let (src, dst) = render_diff_dot(&session);
        assert!(src.contains("digraph"));
        assert!(src.contains("color=red"));
        assert!(dst.contains("color=green"));
        // The deleted copy of branch 3 covers two edges in the source view.
        assert_eq!(src.matches("color=red").count(), 2);
    }

    #[test]
    fn text_view_contains_script_and_module_counts() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let r2 = fig2_run2(&spec);
        let session = DiffSession::new(&spec, &UnitCost, &r1, &r2).unwrap();
        let text = render_diff_text(&session);
        assert!(text.contains("module changes"));
        assert!(text.contains("edit script:"));
        assert!(text.contains("total cost: 4"));
    }

    #[test]
    fn run_tree_rendering_marks_forks_and_loops() {
        let spec = fig2_specification();
        let r1 = fig2_run1(&spec);
        let text = render_run_tree(&r1);
        assert!(text.contains("(fork × 2)"));
        assert!(text.contains("(loop × 1)"));
        assert!(text.contains("[1 -> 7]"));
    }
}
