//! Laminar families (Definition 3.6).
//!
//! The fork and loop subgraphs of an SP-workflow specification must be *well
//! nested*: the collection of their edge sets must form a laminar family —
//! any two sets are either disjoint or one contains the other.

use std::collections::BTreeSet;
use wfdiff_graph::EdgeId;

/// Checks whether the given collection of edge sets forms a laminar family.
///
/// Returns `Ok(())` or the indices of the first offending pair.
pub fn check_laminar(sets: &[BTreeSet<EdgeId>]) -> Result<(), (usize, usize)> {
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            if !nested_or_disjoint(&sets[i], &sets[j]) {
                return Err((i, j));
            }
        }
    }
    Ok(())
}

/// Returns `true` if `a ⊆ b`, `b ⊆ a`, or `a ∩ b = ∅`.
pub fn nested_or_disjoint(a: &BTreeSet<EdgeId>, b: &BTreeSet<EdgeId>) -> bool {
    let intersects = a.iter().any(|x| b.contains(x));
    if !intersects {
        return true;
    }
    a.is_subset(b) || b.is_subset(a)
}

/// Returns `true` if any two sets in the collection are equal.
///
/// Equal sets are permitted by the laminar-family definition but make the
/// annotation ambiguous (two forks, or a fork and a loop, over exactly the same
/// subgraph), so the specification builder rejects them explicitly.
pub fn has_duplicate_sets(sets: &[BTreeSet<EdgeId>]) -> Option<(usize, usize)> {
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            if sets[i] == sets[j] {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<EdgeId> {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    #[test]
    fn disjoint_sets_are_laminar() {
        assert!(check_laminar(&[set(&[0, 1]), set(&[2, 3]), set(&[4])]).is_ok());
    }

    #[test]
    fn nested_sets_are_laminar() {
        assert!(check_laminar(&[set(&[0, 1, 2, 3]), set(&[1, 2]), set(&[1])]).is_ok());
    }

    #[test]
    fn crossing_sets_are_rejected() {
        let err = check_laminar(&[set(&[0, 1]), set(&[1, 2])]).unwrap_err();
        assert_eq!(err, (0, 1));
    }

    #[test]
    fn mixed_family() {
        // {0,1,2,3,4,5}, {0,1}, {2,3}, {2} is laminar; adding {3,4} crosses {2,3}.
        let mut family = vec![set(&[0, 1, 2, 3, 4, 5]), set(&[0, 1]), set(&[2, 3]), set(&[2])];
        assert!(check_laminar(&family).is_ok());
        family.push(set(&[3, 4]));
        assert!(check_laminar(&family).is_err());
    }

    #[test]
    fn duplicates_detected() {
        assert_eq!(has_duplicate_sets(&[set(&[1, 2]), set(&[2, 1])]), Some((0, 1)));
        assert_eq!(has_duplicate_sets(&[set(&[1]), set(&[2])]), None);
    }

    #[test]
    fn empty_family_is_laminar() {
        assert!(check_laminar(&[]).is_ok());
    }
}
