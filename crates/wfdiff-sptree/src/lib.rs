//! Annotated SP-trees for SP-workflow specifications and runs.
//!
//! This crate implements Sections III-D, IV and VI of *Differencing Provenance
//! in Scientific Workflows* (Bao et al.):
//!
//! * the **SP-workflow model**: an SP-specification graph overlaid with a
//!   laminar family of fork (`F`) and loop (`L`) subgraphs
//!   ([`Specification`], [`laminar`]),
//! * the **canonical SP-tree** of an SP-graph ([`canonical`]),
//! * **Algorithm 1** — the annotated SP-tree of a specification
//!   ([`Specification::new`]),
//! * **Algorithms 2 and 5** — the annotated SP-tree of a valid run, i.e. the
//!   deterministic replay `f''` of the execution that produced the run
//!   ([`Specification::validate_run`]),
//! * the **execution function** `f` / `f'` used to generate valid runs from a
//!   specification ([`execution`]),
//! * materialisation of run graphs from annotated SP-trees, including the
//!   implicit loop back-edges ([`materialize`]),
//! * the **branch-free achievable-length** DP used by the cost machinery of
//!   `wfdiff-core` ([`lengths`]).
//!
//! The edit-distance algorithms themselves (Algorithms 3, 4 and 6) live in the
//! `wfdiff-core` crate, which consumes the [`AnnotatedTree`]s produced here.
//!
//! # Example
//!
//! Build a two-branch specification and execute it into a valid run:
//!
//! ```
//! use wfdiff_sptree::{FullDecider, SpecificationBuilder};
//!
//! let mut builder = SpecificationBuilder::new("demo");
//! builder.path(&["in", "analyse", "out"]);
//! builder.path(&["in", "filter", "out"]);
//! let spec = builder.build().unwrap();
//!
//! // The full decider takes every parallel branch once (the `f` of
//! // Section IV with all-true decisions).
//! let run = spec.execute(&mut FullDecider).unwrap();
//! assert_eq!(run.spec_name(), "demo");
//! // Runs remember the exact specification version they were validated
//! // against.
//! assert_eq!(run.spec_fingerprint(), spec.fingerprint());
//! ```

#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod canonical;
pub mod error;
pub mod execution;
pub mod fingerprint;
pub mod laminar;
pub mod lengths;
pub mod materialize;
pub mod node;
pub mod run;
pub mod spec;
pub mod tree;

pub use error::SpTreeError;
pub use execution::{ExecutionDecider, FullDecider, MinimalDecider};
pub use fingerprint::{Fingerprint, TreeFingerprints};
pub use node::{NodeType, TreeId, TreeNode};
pub use run::Run;
pub use spec::{ControlKind, ControlSubgraph, Specification, SpecificationBuilder};
pub use tree::AnnotatedTree;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SpTreeError>;
