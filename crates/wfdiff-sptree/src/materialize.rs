//! Materialising run graphs from annotated SP-trees.
//!
//! The execution function (and the edit-script applier in `wfdiff-core`)
//! produce annotated run *trees*; this module turns such a tree into the
//! corresponding run *graph* — `Graph(T)` in the paper's notation — creating
//! fresh node identities for every replicated module and inserting the
//! implicit loop back-edges between consecutive iterations of `L` nodes.
//!
//! As a side effect the tree's per-node terminal node ids (`s_node`,
//! `t_node`) and the `Q`-leaf edge ids are filled in so that the tree and the
//! graph reference each other consistently.

use crate::node::{NodeType, TreeId};
use crate::tree::AnnotatedTree;
use wfdiff_graph::{LabeledDigraph, NodeId};

/// Result of materialising a run tree.
#[derive(Debug, Clone)]
pub struct MaterializedRun {
    /// The run graph, including implicit loop back-edges.
    pub graph: LabeledDigraph,
    /// The run's source node.
    pub source: NodeId,
    /// The run's sink node.
    pub sink: NodeId,
    /// Number of implicit loop back-edges added (edges of the graph that do not
    /// correspond to any `Q` leaf of the tree).
    pub implicit_edges: usize,
}

/// Materialises the run graph of `tree`, updating the tree's terminal node ids
/// and leaf edge ids in place.
pub fn materialize(tree: &mut AnnotatedTree) -> MaterializedRun {
    let mut graph = LabeledDigraph::new();
    let root = tree.root();
    let source = graph.add_node(tree.node(root).s_label.clone());
    let sink = graph.add_node(tree.node(root).t_label.clone());
    let mut implicit = 0usize;
    fill(tree, root, &mut graph, source, sink, &mut implicit);
    MaterializedRun { graph, source, sink, implicit_edges: implicit }
}

fn fill(
    tree: &mut AnnotatedTree,
    v: TreeId,
    graph: &mut LabeledDigraph,
    s_node: NodeId,
    t_node: NodeId,
    implicit: &mut usize,
) {
    {
        let node = tree.node_mut(v);
        node.s_node = s_node;
        node.t_node = t_node;
    }
    match tree.ty(v) {
        NodeType::Q => {
            let edge = graph.add_edge(s_node, t_node);
            tree.node_mut(v).edge = Some(edge);
        }
        NodeType::S => {
            let children = tree.children(v).to_vec();
            let mut prev = s_node;
            for (i, &c) in children.iter().enumerate() {
                let next = if i + 1 == children.len() {
                    t_node
                } else {
                    graph.add_node(tree.node(c).t_label.clone())
                };
                fill(tree, c, graph, prev, next, implicit);
                prev = next;
            }
        }
        NodeType::P | NodeType::F => {
            let children = tree.children(v).to_vec();
            for &c in &children {
                fill(tree, c, graph, s_node, t_node, implicit);
            }
        }
        NodeType::L => {
            let children = tree.children(v).to_vec();
            let mut iter_source = s_node;
            for (i, &c) in children.iter().enumerate() {
                let iter_sink = if i + 1 == children.len() {
                    t_node
                } else {
                    graph.add_node(tree.node(c).t_label.clone())
                };
                fill(tree, c, graph, iter_source, iter_sink, implicit);
                if i + 1 != children.len() {
                    let next_source = graph.add_node(tree.node(children[i + 1]).s_label.clone());
                    graph.add_edge(iter_sink, next_source);
                    *implicit += 1;
                    iter_source = next_source;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TreeNode;
    use wfdiff_graph::{validate_flow_network, Label};

    fn q(tree: &mut AnnotatedTree, s: &str, t: &str) -> TreeId {
        let mut n = TreeNode::new(NodeType::Q, Label::new(s), Label::new(t), NodeId(0), NodeId(0));
        n.leaf_count = 1;
        tree.add_node(n)
    }

    fn internal(tree: &mut AnnotatedTree, ty: NodeType, s: &str, t: &str) -> TreeId {
        tree.add_node(TreeNode::new(ty, Label::new(s), Label::new(t), NodeId(0), NodeId(0)))
    }

    #[test]
    fn materialize_series_of_leaves() {
        let mut t = AnnotatedTree::empty();
        let root = internal(&mut t, NodeType::S, "a", "c");
        let q1 = q(&mut t, "a", "b");
        let q2 = q(&mut t, "b", "c");
        t.attach_child(root, q1);
        t.attach_child(root, q2);
        t.set_root(root);
        t.recompute_leaf_counts();
        let m = materialize(&mut t);
        assert_eq!(m.graph.node_count(), 3);
        assert_eq!(m.graph.edge_count(), 2);
        assert_eq!(m.implicit_edges, 0);
        assert!(validate_flow_network(&m.graph).is_ok());
        assert!(t.node(q1).edge.is_some());
        assert_eq!(t.node(root).s_node, m.source);
        assert_eq!(t.node(root).t_node, m.sink);
    }

    #[test]
    fn materialize_fork_copies_share_terminals() {
        // F node with two copies of a two-edge series subgraph between u and w.
        let mut t = AnnotatedTree::empty();
        let root = internal(&mut t, NodeType::F, "u", "w");
        for _ in 0..2 {
            let s = internal(&mut t, NodeType::S, "u", "w");
            let a = q(&mut t, "u", "v");
            let b = q(&mut t, "v", "w");
            t.attach_child(s, a);
            t.attach_child(s, b);
            t.attach_child(root, s);
        }
        t.set_root(root);
        t.recompute_leaf_counts();
        let m = materialize(&mut t);
        // Nodes: u, w shared + two private copies of v.
        assert_eq!(m.graph.node_count(), 4);
        assert_eq!(m.graph.edge_count(), 4);
        assert_eq!(m.graph.out_degree(m.source), 2);
        assert_eq!(m.graph.in_degree(m.sink), 2);
    }

    #[test]
    fn materialize_loop_adds_implicit_edges() {
        // L node with two iterations of a single-edge body u -> w.
        let mut t = AnnotatedTree::empty();
        let root = internal(&mut t, NodeType::L, "u", "w");
        let i1 = q(&mut t, "u", "w");
        let i2 = q(&mut t, "u", "w");
        t.attach_child(root, i1);
        t.attach_child(root, i2);
        t.set_root(root);
        t.recompute_leaf_counts();
        let m = materialize(&mut t);
        // Nodes: u, w (outer) + w (iteration-1 sink) + u (iteration-2 source).
        assert_eq!(m.graph.node_count(), 4);
        // Two body edges + one implicit back edge.
        assert_eq!(m.graph.edge_count(), 3);
        assert_eq!(m.implicit_edges, 1);
        assert!(validate_flow_network(&m.graph).is_ok());
        assert!(m.graph.is_acyclic());
    }

    #[test]
    fn nested_structures_materialize_to_valid_flow_networks() {
        // S( Q(1,2), F( S(Q(2,3), Q(3,6)), S(Q(2,3), Q(3,6)) ), Q(6,7) )
        let mut t = AnnotatedTree::empty();
        let root = internal(&mut t, NodeType::S, "1", "7");
        let q12 = q(&mut t, "1", "2");
        let f = internal(&mut t, NodeType::F, "2", "6");
        for _ in 0..2 {
            let s = internal(&mut t, NodeType::S, "2", "6");
            let a = q(&mut t, "2", "3");
            let b = q(&mut t, "3", "6");
            t.attach_child(s, a);
            t.attach_child(s, b);
            t.attach_child(f, s);
        }
        let q67 = q(&mut t, "6", "7");
        t.attach_child(root, q12);
        t.attach_child(root, f);
        t.attach_child(root, q67);
        t.set_root(root);
        t.recompute_leaf_counts();
        let m = materialize(&mut t);
        assert!(validate_flow_network(&m.graph).is_ok());
        assert!(m.graph.is_acyclic());
        assert_eq!(m.graph.edge_count(), 6);
        // Labels: 1,2,6,7 shared; 3 appears twice.
        assert_eq!(m.graph.find_all_labels("3").len(), 2);
    }
}
