//! The execution function `f` / `f'` (Figure 5 and Section VI): generating
//! valid runs from a specification.
//!
//! Execution is nondeterministic in the paper; here the nondeterminism is
//! factored out into an [`ExecutionDecider`], so that deterministic test
//! deciders, exhaustive enumerators and the random workload generators of
//! `wfdiff-workloads` can all share the same machinery.

use crate::materialize::materialize;
use crate::node::{NodeType, TreeId, TreeNode};
use crate::run::Run;
use crate::spec::Specification;
use crate::tree::AnnotatedTree;
use crate::Result;

/// Supplies the nondeterministic choices of the execution function.
pub trait ExecutionDecider {
    /// Chooses which of the `n` branches of a parallel composition to execute.
    /// Returning all-`false` is sanitised to "execute the first branch", since
    /// a parallel execution must execute at least one branch.
    fn parallel_subset(&mut self, n: usize) -> Vec<bool>;

    /// Number of copies a fork execution replicates (sanitised to at least 1).
    /// `control_id` identifies the fork in [`Specification::controls`].
    fn fork_copies(&mut self, control_id: usize) -> usize;

    /// Number of iterations a loop execution performs (sanitised to at least
    /// 1).  `control_id` identifies the loop in [`Specification::controls`].
    fn loop_iterations(&mut self, control_id: usize) -> usize;
}

/// A decider that takes exactly one branch of every parallel composition, one
/// fork copy and one loop iteration: it produces the *smallest* valid run.
#[derive(Debug, Clone, Default)]
pub struct MinimalDecider;

impl ExecutionDecider for MinimalDecider {
    fn parallel_subset(&mut self, n: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        if n > 0 {
            v[0] = true;
        }
        v
    }

    fn fork_copies(&mut self, _control_id: usize) -> usize {
        1
    }

    fn loop_iterations(&mut self, _control_id: usize) -> usize {
        1
    }
}

/// A decider that executes every parallel branch, with a single fork copy and
/// a single loop iteration: the "everything once" run.
#[derive(Debug, Clone, Default)]
pub struct FullDecider;

impl ExecutionDecider for FullDecider {
    fn parallel_subset(&mut self, n: usize) -> Vec<bool> {
        vec![true; n]
    }

    fn fork_copies(&mut self, _control_id: usize) -> usize {
        1
    }

    fn loop_iterations(&mut self, _control_id: usize) -> usize {
        1
    }
}

/// A decider with fixed replication counts, useful in tests: every parallel
/// branch is executed, every fork makes `fork` copies and every loop makes
/// `loops` iterations.
#[derive(Debug, Clone)]
pub struct FixedDecider {
    /// Copies per fork execution.
    pub fork: usize,
    /// Iterations per loop execution.
    pub loops: usize,
}

impl ExecutionDecider for FixedDecider {
    fn parallel_subset(&mut self, n: usize) -> Vec<bool> {
        vec![true; n]
    }

    fn fork_copies(&mut self, _control_id: usize) -> usize {
        self.fork
    }

    fn loop_iterations(&mut self, _control_id: usize) -> usize {
        self.loops
    }
}

/// Executes `spec` with the given decider, producing a valid [`Run`].
pub fn execute(spec: &Specification, decider: &mut dyn ExecutionDecider) -> Result<Run> {
    let mut out = AnnotatedTree::empty();
    let root = gen(spec, spec.tree().root(), decider, &mut out);
    out.set_root(root);
    let materialized = materialize(&mut out);
    out.recompute_leaf_counts();
    out.validate_run_tree()?;
    Ok(Run::from_parts(
        spec.name().to_string(),
        spec.fingerprint(),
        materialized.graph,
        materialized.source,
        materialized.sink,
        out,
    ))
}

impl Specification {
    /// Convenience wrapper for [`execute`].
    pub fn execute(&self, decider: &mut dyn ExecutionDecider) -> Result<Run> {
        execute(self, decider)
    }
}

fn gen(
    spec: &Specification,
    spec_v: TreeId,
    decider: &mut dyn ExecutionDecider,
    out: &mut AnnotatedTree,
) -> TreeId {
    let tree = spec.tree();
    let spec_node = tree.node(spec_v);
    let mut node = TreeNode::new(
        spec_node.ty,
        spec_node.s_label.clone(),
        spec_node.t_label.clone(),
        spec_node.s_node,
        spec_node.t_node,
    );
    node.origin = Some(spec_v);
    node.control_id = spec_node.control_id;
    match tree.ty(spec_v) {
        NodeType::Q => {
            node.leaf_count = 1;
            out.add_node(node)
        }
        NodeType::S => {
            let id = out.add_node(node);
            for &c in tree.children(spec_v) {
                let child = gen(spec, c, decider, out);
                out.attach_child(id, child);
            }
            id
        }
        NodeType::P => {
            let children = tree.children(spec_v).to_vec();
            let mut mask = decider.parallel_subset(children.len());
            mask.resize(children.len(), false);
            if !mask.iter().any(|&b| b) {
                mask[0] = true;
            }
            let id = out.add_node(node);
            for (i, &c) in children.iter().enumerate() {
                if mask[i] {
                    let child = gen(spec, c, decider, out);
                    out.attach_child(id, child);
                }
            }
            id
        }
        NodeType::F => {
            let control = spec_node.control_id.expect("spec F node carries a control id");
            let copies = decider.fork_copies(control).max(1);
            let body = tree.children(spec_v)[0];
            let id = out.add_node(node);
            for _ in 0..copies {
                let child = gen(spec, body, decider, out);
                out.attach_child(id, child);
            }
            id
        }
        NodeType::L => {
            let control = spec_node.control_id.expect("spec L node carries a control id");
            let iterations = decider.loop_iterations(control).max(1);
            let body = tree.children(spec_v)[0];
            let id = out.add_node(node);
            for _ in 0..iterations {
                let child = gen(spec, body, decider, out);
                out.attach_child(id, child);
            }
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Run;
    use crate::spec::SpecificationBuilder;

    fn fig2_specification() -> Specification {
        let mut b = SpecificationBuilder::new("fig2");
        b.edge("1", "2")
            .path(&["2", "3", "6"])
            .path(&["2", "4", "6"])
            .path(&["2", "5", "6"])
            .edge("6", "7")
            .fork_path(&["2", "3", "6"])
            .fork_path(&["2", "4", "6"])
            .fork_path(&["2", "5", "6"])
            .fork_between("1", "7")
            .loop_between("2", "6");
        b.build().unwrap()
    }

    #[test]
    fn minimal_execution_is_a_single_path() {
        let spec = fig2_specification();
        let run = spec.execute(&mut MinimalDecider).unwrap();
        // 1 -> 2 -> 3 -> 6 -> 7.
        assert_eq!(run.edge_count(), 4);
        assert_eq!(run.node_count(), 5);
        assert!(run.graph().is_acyclic());
    }

    #[test]
    fn full_execution_covers_every_branch_once() {
        let spec = fig2_specification();
        let run = spec.execute(&mut FullDecider).unwrap();
        assert_eq!(run.edge_count(), spec.graph().edge_count());
        assert_eq!(run.tree().leaf_count(run.tree().root()), 8);
    }

    #[test]
    fn fixed_decider_replicates_forks_and_loops() {
        let spec = fig2_specification();
        let run = spec.execute(&mut FixedDecider { fork: 2, loops: 2 }).unwrap();
        // Outer fork doubles everything; the loop runs twice inside each copy;
        // each branch fork doubles each branch.
        let t = run.tree();
        assert_eq!(t.ty(t.root()), NodeType::F);
        assert_eq!(t.children(t.root()).len(), 2);
        assert!(run.graph().is_acyclic());
        assert!(run.edge_count() > spec.graph().edge_count());
    }

    #[test]
    fn executed_runs_replay_to_equivalent_trees() {
        // The fundamental consistency check: executing a specification and then
        // re-validating the produced graph with Algorithm 2/5 must give an
        // equivalent annotated tree.
        let spec = fig2_specification();
        for decider in [
            &mut FixedDecider { fork: 1, loops: 1 } as &mut dyn ExecutionDecider,
            &mut FixedDecider { fork: 2, loops: 1 },
            &mut FixedDecider { fork: 1, loops: 3 },
            &mut FixedDecider { fork: 3, loops: 2 },
            &mut MinimalDecider,
            &mut FullDecider,
        ] {
            let run = spec.execute(decider).unwrap();
            let replayed = Run::from_graph(&spec, run.graph().clone()).unwrap();
            assert!(
                run.tree().equivalent(replayed.tree()),
                "executed tree:\n{}\nreplayed tree:\n{}",
                run.tree().render(run.tree().root()),
                replayed.tree().render(replayed.tree().root())
            );
        }
    }

    #[test]
    fn executed_runs_are_valid_homomorphic_images() {
        let spec = fig2_specification();
        let run = spec.execute(&mut FixedDecider { fork: 2, loops: 2 }).unwrap();
        // Re-validating from the graph must succeed (exercises the
        // homomorphism check including loop back edges).
        assert!(Run::from_graph(&spec, run.graph().clone()).is_ok());
    }

    #[test]
    fn nested_loop_and_fork_execution() {
        let mut b = SpecificationBuilder::new("nested");
        b.path(&["a", "b", "c", "d", "e"]);
        b.loop_between("b", "d");
        b.fork_path(&["b", "c"]);
        let spec = b.build().unwrap();
        let run = spec.execute(&mut FixedDecider { fork: 2, loops: 3 }).unwrap();
        // Each of the 3 iterations has 2 copies of edge b->c plus edge c->d,
        // plus the chain edges a->b, d->e and 2 implicit back edges.
        assert_eq!(run.edge_count(), 3 * (2 + 1) + 2 + 2);
        let replayed = Run::from_graph(&spec, run.graph().clone()).unwrap();
        assert!(run.tree().equivalent(replayed.tree()));
    }
}
