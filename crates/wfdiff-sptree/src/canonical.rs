//! Canonical SP-trees (Section IV-A).
//!
//! The binary decomposition produced by `wfdiff_graph::decompose` is not
//! unique; the *canonical* SP-tree is obtained by repeatedly merging adjacent
//! nodes of the same type, producing n-ary `S` and `P` nodes.  The canonical
//! tree is unique up to reordering of `P` children, which is exactly the
//! equivalence captured by [`AnnotatedTree::signature`].

use crate::node::{NodeType, TreeId, TreeNode};
use crate::tree::AnnotatedTree;
use crate::Result;
use wfdiff_graph::{decompose, BinSpTree, LabeledDigraph, NodeId};

/// Builds the canonical SP-tree of the two-terminal graph
/// `(graph, source, sink)`.
///
/// Leaves carry the original [`wfdiff_graph::EdgeId`]s and every node carries
/// the terminals (node ids and labels) of the subgraph it represents.
pub fn canonical_tree(
    graph: &LabeledDigraph,
    source: NodeId,
    sink: NodeId,
) -> Result<AnnotatedTree> {
    let bin = decompose(graph, source, sink)?;
    let mut tree = AnnotatedTree::empty();
    let root = convert(graph, &bin, &mut tree);
    tree.set_root(root);
    tree.recompute_leaf_counts();
    Ok(tree)
}

/// Flattens a binary subtree of the given composition type into the list of
/// maximal subtrees of *different* type, preserving left-to-right order.
fn flatten<'a>(bin: &'a BinSpTree, want_series: bool, out: &mut Vec<&'a BinSpTree>) {
    match bin {
        BinSpTree::Series(a, b) if want_series => {
            flatten(a, want_series, out);
            flatten(b, want_series, out);
        }
        BinSpTree::Parallel(a, b) if !want_series => {
            flatten(a, want_series, out);
            flatten(b, want_series, out);
        }
        other => out.push(other),
    }
}

fn convert(graph: &LabeledDigraph, bin: &BinSpTree, tree: &mut AnnotatedTree) -> TreeId {
    match bin {
        BinSpTree::Leaf(e) => {
            let edge = graph.edge(*e);
            let mut node = TreeNode::new(
                NodeType::Q,
                graph.label(edge.src).clone(),
                graph.label(edge.dst).clone(),
                edge.src,
                edge.dst,
            );
            node.edge = Some(*e);
            node.leaf_count = 1;
            tree.add_node(node)
        }
        BinSpTree::Series(_, _) => {
            let mut parts = Vec::new();
            flatten(bin, true, &mut parts);
            let children: Vec<TreeId> = parts.iter().map(|p| convert(graph, p, tree)).collect();
            let first = children[0];
            let last = *children.last().expect("series node has children");
            let (s_label, s_node) = (tree.node(first).s_label.clone(), tree.node(first).s_node);
            let (t_label, t_node) = (tree.node(last).t_label.clone(), tree.node(last).t_node);
            let node = TreeNode::new(NodeType::S, s_label, t_label, s_node, t_node);
            let id = tree.add_node(node);
            for c in children {
                tree.attach_child(id, c);
            }
            id
        }
        BinSpTree::Parallel(_, _) => {
            let mut parts = Vec::new();
            flatten(bin, false, &mut parts);
            let children: Vec<TreeId> = parts.iter().map(|p| convert(graph, p, tree)).collect();
            let first = children[0];
            let (s_label, s_node) = (tree.node(first).s_label.clone(), tree.node(first).s_node);
            let (t_label, t_node) = (tree.node(first).t_label.clone(), tree.node(first).t_node);
            let node = TreeNode::new(NodeType::P, s_label, t_label, s_node, t_node);
            let id = tree.add_node(node);
            for c in children {
                tree.attach_child(id, c);
            }
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdiff_graph::SpGraph;

    fn fig2_spec() -> SpGraph {
        let b12 = SpGraph::basic("1", "2");
        let b236 = SpGraph::chain(&["2", "3", "6"]);
        let b246 = SpGraph::chain(&["2", "4", "6"]);
        let b256 = SpGraph::chain(&["2", "5", "6"]);
        let mid = SpGraph::parallel(&SpGraph::parallel(&b236, &b246).unwrap(), &b256).unwrap();
        let b67 = SpGraph::basic("6", "7");
        SpGraph::series(&SpGraph::series(&b12, &mid).unwrap(), &b67).unwrap()
    }

    #[test]
    fn single_edge_tree_is_q_root() {
        let g = SpGraph::basic("s", "t");
        let t = canonical_tree(g.graph(), g.source(), g.sink()).unwrap();
        assert_eq!(t.ty(t.root()), NodeType::Q);
        assert_eq!(t.leaf_count(t.root()), 1);
    }

    #[test]
    fn chain_flattens_into_single_s_node() {
        let g = SpGraph::chain(&["a", "b", "c", "d", "e"]);
        let t = canonical_tree(g.graph(), g.source(), g.sink()).unwrap();
        let root = t.root();
        assert_eq!(t.ty(root), NodeType::S);
        assert_eq!(t.children(root).len(), 4);
        assert!(t.children(root).iter().all(|&c| t.ty(c) == NodeType::Q));
        // Order of the S children follows the chain.
        let (s, _) = t.terminals(t.children(root)[0]);
        assert_eq!(s.as_str(), "a");
        let (_, last_t) = t.terminals(t.children(root)[3]);
        assert_eq!(last_t.as_str(), "e");
        assert!(t.validate_spec_tree().is_ok());
    }

    #[test]
    fn fig2_canonical_tree_shape() {
        // Expected (Fig. 6(a)): S( Q(1,2), P( S(Q(2,3),Q(3,6)), S(Q(2,4),Q(4,6)),
        //                          S(Q(2,5),Q(5,6)) ), Q(6,7) ).
        let g = fig2_spec();
        let t = canonical_tree(g.graph(), g.source(), g.sink()).unwrap();
        let root = t.root();
        assert_eq!(t.ty(root), NodeType::S);
        assert_eq!(t.children(root).len(), 3);
        assert_eq!(t.ty(t.children(root)[0]), NodeType::Q);
        assert_eq!(t.ty(t.children(root)[2]), NodeType::Q);
        let p = t.children(root)[1];
        assert_eq!(t.ty(p), NodeType::P);
        assert_eq!(t.children(p).len(), 3);
        for &branch in t.children(p) {
            assert_eq!(t.ty(branch), NodeType::S);
            assert_eq!(t.children(branch).len(), 2);
            let (s, tt) = t.terminals(branch);
            assert_eq!(s.as_str(), "2");
            assert_eq!(tt.as_str(), "6");
        }
        assert_eq!(t.leaf_count(root), 8);
        assert!(t.validate_spec_tree().is_ok());
    }

    #[test]
    fn canonical_tree_is_stable_under_composition_order() {
        // Compose the parallel section in a different association order and
        // check the canonical trees are equivalent.
        let b12 = SpGraph::basic("1", "2");
        let b236 = SpGraph::chain(&["2", "3", "6"]);
        let b246 = SpGraph::chain(&["2", "4", "6"]);
        let b256 = SpGraph::chain(&["2", "5", "6"]);
        let mid = SpGraph::parallel(&b236, &SpGraph::parallel(&b246, &b256).unwrap()).unwrap();
        let b67 = SpGraph::basic("6", "7");
        let g2 = SpGraph::series(&b12, &SpGraph::series(&mid, &b67).unwrap()).unwrap();

        let g1 = fig2_spec();
        let t1 = canonical_tree(g1.graph(), g1.source(), g1.sink()).unwrap();
        let t2 = canonical_tree(g2.graph(), g2.source(), g2.sink()).unwrap();
        assert!(t1.equivalent(&t2));
    }

    #[test]
    fn parallel_multi_edges_become_one_p_node() {
        let a = SpGraph::basic("u", "v");
        let b = SpGraph::basic("u", "v");
        let c = SpGraph::basic("u", "v");
        let g = SpGraph::parallel(&SpGraph::parallel(&a, &b).unwrap(), &c).unwrap();
        let t = canonical_tree(g.graph(), g.source(), g.sink()).unwrap();
        assert_eq!(t.ty(t.root()), NodeType::P);
        assert_eq!(t.children(t.root()).len(), 3);
    }

    #[test]
    fn leaf_edges_cover_all_graph_edges() {
        let g = fig2_spec();
        let t = canonical_tree(g.graph(), g.source(), g.sink()).unwrap();
        let mut edges = t.leaf_edges(t.root());
        edges.sort();
        edges.dedup();
        assert_eq!(edges.len(), g.edge_count());
    }
}
