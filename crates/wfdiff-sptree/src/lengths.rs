//! Achievable lengths of branch-free executions (used for the unstable-pair
//! surcharge `W_TG` of Algorithm 4 and for minimum insertion costs).
//!
//! For a specification subtree `T_G[v]`, a *branch-free* execution is a valid
//! run of `Graph(T_G[v])` whose annotated SP-tree contains no true `P`, `F` or
//! `L` node — i.e. a single source-to-sink path.  The cost of inserting such a
//! path as an elementary subtree is `γ(l, s(v), t(v))` where `l` is its
//! length, so the cost machinery needs the **set of achievable lengths** for
//! every specification node.  Because cost functions are not required to be
//! monotone in `l`, the full set (not just the minimum) is computed.

use crate::node::{NodeType, TreeId};
use crate::tree::AnnotatedTree;
use std::collections::BTreeSet;

/// For every node of a specification tree, the set of lengths (numbers of
/// edges) of branch-free executions of the subgraph it represents.
#[derive(Debug, Clone)]
pub struct BranchFreeLengths {
    sets: Vec<BTreeSet<usize>>,
}

impl BranchFreeLengths {
    /// Computes the achievable-length sets for all nodes of `tree` (which must
    /// be a specification tree).
    pub fn compute(tree: &AnnotatedTree) -> Self {
        let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); tree.len()];
        for id in tree.postorder(tree.root()) {
            let set = match tree.ty(id) {
                NodeType::Q => BTreeSet::from([1usize]),
                NodeType::S => {
                    // Sum-set over the children.
                    let mut acc = BTreeSet::from([0usize]);
                    for &c in tree.children(id) {
                        let mut next = BTreeSet::new();
                        for &a in &acc {
                            for &b in &sets[c.index()] {
                                next.insert(a + b);
                            }
                        }
                        acc = next;
                    }
                    acc
                }
                NodeType::P => {
                    // A branch-free execution picks exactly one branch.
                    let mut acc = BTreeSet::new();
                    for &c in tree.children(id) {
                        acc.extend(sets[c.index()].iter().copied());
                    }
                    acc
                }
                NodeType::F | NodeType::L => {
                    // A branch-free execution uses exactly one copy/iteration.
                    sets[tree.children(id)[0].index()].clone()
                }
            };
            sets[id.index()] = set;
        }
        BranchFreeLengths { sets }
    }

    /// The set of achievable lengths for node `id`.
    pub fn lengths(&self, id: TreeId) -> &BTreeSet<usize> {
        &self.sets[id.index()]
    }

    /// The minimum achievable length for node `id`.
    pub fn min_length(&self, id: TreeId) -> usize {
        *self.sets[id.index()].iter().next().expect("every spec subtree has an execution")
    }

    /// The maximum achievable length for node `id`.
    pub fn max_length(&self, id: TreeId) -> usize {
        *self.sets[id.index()].iter().next_back().expect("every spec subtree has an execution")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecificationBuilder;

    #[test]
    fn chain_has_single_length() {
        let mut b = SpecificationBuilder::new("chain");
        b.path(&["a", "b", "c", "d"]);
        let spec = b.build().unwrap();
        let lens = BranchFreeLengths::compute(spec.tree());
        let root = spec.tree().root();
        assert_eq!(lens.lengths(root), &BTreeSet::from([3]));
        assert_eq!(lens.min_length(root), 3);
        assert_eq!(lens.max_length(root), 3);
    }

    #[test]
    fn parallel_branches_union_lengths() {
        // Branches of length 1, 2 and 4 between u and v.
        let mut b = SpecificationBuilder::new("par");
        b.edge("u", "v");
        b.path(&["u", "x1", "v"]);
        b.path(&["u", "y1", "y2", "y3", "v"]);
        let spec = b.build().unwrap();
        let lens = BranchFreeLengths::compute(spec.tree());
        assert_eq!(lens.lengths(spec.tree().root()), &BTreeSet::from([1, 2, 4]));
    }

    #[test]
    fn series_of_parallels_sums_lengths() {
        // u ->(1 or 2)-> m ->(1 or 3)-> v : achievable 2, 3, 4, 5 minus gaps.
        let mut b = SpecificationBuilder::new("sp");
        b.edge("u", "m");
        b.path(&["u", "a", "m"]);
        b.edge("m", "v");
        b.path(&["m", "c", "d", "v"]);
        let spec = b.build().unwrap();
        let lens = BranchFreeLengths::compute(spec.tree());
        // 1+1, 1+3, 2+1, 2+3
        assert_eq!(lens.lengths(spec.tree().root()), &BTreeSet::from([2, 3, 4, 5]));
    }

    #[test]
    fn forks_and_loops_do_not_multiply_lengths() {
        let mut b = SpecificationBuilder::new("fl");
        b.path(&["s", "a", "t"]);
        b.fork_between("s", "t");
        let spec = b.build().unwrap();
        let lens = BranchFreeLengths::compute(spec.tree());
        // A branch-free execution forks exactly once: length 2 only.
        assert_eq!(lens.lengths(spec.tree().root()), &BTreeSet::from([2]));
    }

    #[test]
    fn fig17_fan_lengths_are_squares() {
        let mut b = SpecificationBuilder::new("fan");
        for i in 1..=4usize {
            let mut labels: Vec<String> = vec!["u".to_string()];
            for j in 1..(i * i) {
                labels.push(format!("p{i}_{j}"));
            }
            labels.push("v".to_string());
            let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
            b.path(&refs);
        }
        let spec = b.build().unwrap();
        let lens = BranchFreeLengths::compute(spec.tree());
        assert_eq!(lens.lengths(spec.tree().root()), &BTreeSet::from([1, 4, 9, 16]));
    }
}
