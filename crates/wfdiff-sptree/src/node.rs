//! Nodes of annotated SP-trees.

use serde::{Deserialize, Serialize};
use std::fmt;
use wfdiff_graph::{EdgeId, Label, NodeId};

/// Identifier of a node inside an [`crate::AnnotatedTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TreeId(pub u32);

impl TreeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for TreeId {
    fn from(value: usize) -> Self {
        TreeId(u32::try_from(value).expect("tree id overflow"))
    }
}

impl fmt::Display for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The type of an annotated SP-tree node.
///
/// * `Q` — a leaf representing a single graph edge,
/// * `S` — a series composition (children are ordered),
/// * `P` — a parallel composition (children are unordered),
/// * `F` — a fork execution point (children are unordered copies),
/// * `L` — a loop execution point (children are ordered iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// Leaf (single edge).
    Q,
    /// Series composition; children are ordered.
    S,
    /// Parallel composition; children are unordered.
    P,
    /// Fork; children (copies) are unordered.
    F,
    /// Loop; children (iterations) are ordered.
    L,
}

impl NodeType {
    /// `true` for node types whose children are ordered (`S` and `L`).
    pub fn ordered_children(self) -> bool {
        matches!(self, NodeType::S | NodeType::L)
    }

    /// `true` for node types that may appear as internal nodes of a
    /// specification tree.
    pub fn is_internal(self) -> bool {
        !matches!(self, NodeType::Q)
    }

    /// Single-character code used in signatures and debug output.
    pub fn code(self) -> char {
        match self {
            NodeType::Q => 'Q',
            NodeType::S => 'S',
            NodeType::P => 'P',
            NodeType::F => 'F',
            NodeType::L => 'L',
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A node of an annotated SP-tree.
///
/// Every node carries the two *invariants* of the subgraph it represents: the
/// labels of its terminals (`s_label`, `t_label`), plus — for trees associated
/// with a concrete graph — the terminal node ids (`s_node`, `t_node`).  Run
/// trees additionally record `origin`, the specification-tree node the subtree
/// was derived from (the homology map `h` of Section V-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeNode {
    /// The node type.
    pub ty: NodeType,
    /// Children (ordered for `S`/`L`, unordered for `P`/`F`).
    pub children: Vec<TreeId>,
    /// Parent node, if any (the root has none).
    pub parent: Option<TreeId>,
    /// Label of the source terminal of `Graph(T[v])`.
    pub s_label: Label,
    /// Label of the sink terminal of `Graph(T[v])`.
    pub t_label: Label,
    /// Source terminal node id in the associated graph.
    pub s_node: NodeId,
    /// Sink terminal node id in the associated graph.
    pub t_node: NodeId,
    /// For `Q` leaves: the graph edge this leaf represents.
    pub edge: Option<EdgeId>,
    /// For run-tree nodes: the specification-tree node this subtree derives
    /// from (`h(v)`).
    pub origin: Option<TreeId>,
    /// For `F`/`L` nodes: index of the fork/loop subgraph in the
    /// specification's control list.
    pub control_id: Option<usize>,
    /// Number of `Q` leaves in the subtree rooted here (implicit loop edges are
    /// *not* counted; they are not leaves of the annotated tree).
    pub leaf_count: usize,
}

impl TreeNode {
    /// Creates a new node with the given type and terminals; children and
    /// metadata are filled in by the tree-construction code.
    pub fn new(
        ty: NodeType,
        s_label: Label,
        t_label: Label,
        s_node: NodeId,
        t_node: NodeId,
    ) -> Self {
        TreeNode {
            ty,
            children: Vec::new(),
            parent: None,
            s_label,
            t_label,
            s_node,
            t_node,
            edge: None,
            origin: None,
            control_id: None,
            leaf_count: 0,
        }
    }

    /// `true` if the node has more than one child (a *true* node in the
    /// terminology of Section V-A); `Q` leaves are never true nodes.
    pub fn is_true(&self) -> bool {
        self.children.len() > 1
    }

    /// `true` if the node has at most one child (a *pseudo* node).
    pub fn is_pseudo(&self) -> bool {
        !self.is_true()
    }

    /// Number of children.
    pub fn degree(&self) -> usize {
        self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_type_properties() {
        assert!(NodeType::S.ordered_children());
        assert!(NodeType::L.ordered_children());
        assert!(!NodeType::P.ordered_children());
        assert!(!NodeType::F.ordered_children());
        assert!(!NodeType::Q.is_internal());
        assert!(NodeType::F.is_internal());
        assert_eq!(NodeType::P.code(), 'P');
        assert_eq!(NodeType::L.to_string(), "L");
    }

    #[test]
    fn true_and_pseudo_nodes() {
        let mut n =
            TreeNode::new(NodeType::P, Label::new("a"), Label::new("b"), NodeId(0), NodeId(1));
        assert!(n.is_pseudo());
        n.children.push(TreeId(1));
        assert!(n.is_pseudo());
        n.children.push(TreeId(2));
        assert!(n.is_true());
        assert_eq!(n.degree(), 2);
    }

    #[test]
    fn tree_id_display() {
        assert_eq!(TreeId::from(3usize).to_string(), "t3");
        assert_eq!(TreeId(3).index(), 3);
    }
}
