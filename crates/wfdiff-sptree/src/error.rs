//! Error type for SP-tree construction and run validation.

use std::fmt;
use wfdiff_graph::GraphError;

/// Errors raised while constructing annotated SP-trees or validating runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpTreeError {
    /// An underlying graph-level error.
    Graph(GraphError),
    /// A fork/loop subgraph is not representable in the canonical SP-tree
    /// (not a series subgraph / complete subgraph of the specification).
    ControlNotRepresentable {
        /// Human-readable description of the offending subgraph.
        what: String,
    },
    /// The fork/loop subgraphs do not form a laminar family.
    NotLaminar {
        /// Description of the two overlapping subgraphs.
        what: String,
    },
    /// Two fork/loop annotations cover exactly the same edge set, or two loops
    /// share terminals, which would make run replay ambiguous.
    AmbiguousControl {
        /// Description of the ambiguity.
        what: String,
    },
    /// A run does not conform to the specification's execution semantics
    /// (Algorithm 2/5 could not replay it).
    InvalidRun {
        /// Description of where the replay failed.
        what: String,
    },
    /// An internal invariant of the tree machinery was violated.
    Invariant(String),
}

impl fmt::Display for SpTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpTreeError::Graph(e) => write!(f, "graph error: {e}"),
            SpTreeError::ControlNotRepresentable { what } => {
                write!(f, "fork/loop subgraph is not representable: {what}")
            }
            SpTreeError::NotLaminar { what } => {
                write!(f, "fork/loop subgraphs are not well nested (laminar): {what}")
            }
            SpTreeError::AmbiguousControl { what } => {
                write!(f, "ambiguous fork/loop annotation: {what}")
            }
            SpTreeError::InvalidRun { what } => write!(f, "invalid run: {what}"),
            SpTreeError::Invariant(msg) => write!(f, "internal invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for SpTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpTreeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SpTreeError {
    fn from(value: GraphError) -> Self {
        SpTreeError::Graph(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_errors_convert() {
        let e: SpTreeError = GraphError::CyclicGraph.into();
        assert!(matches!(e, SpTreeError::Graph(GraphError::CyclicGraph)));
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn messages_are_informative() {
        let e = SpTreeError::InvalidRun { what: "module 3 executed twice without a fork".into() };
        assert!(e.to_string().contains("invalid run"));
        assert!(e.to_string().contains("module 3"));
    }

    #[test]
    fn source_chains_to_graph_error() {
        use std::error::Error;
        let e: SpTreeError = GraphError::EmptyGraph.into();
        assert!(e.source().is_some());
        assert!(SpTreeError::Invariant("x".into()).source().is_none());
    }
}
