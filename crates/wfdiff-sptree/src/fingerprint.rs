//! Canonical structural fingerprints of annotated SP-(sub)trees.
//!
//! [`AnnotatedTree::signature`](crate::AnnotatedTree::signature) already
//! defines the canonical textual form under which two subtrees are equivalent
//! (`≡`, Section IV-B): equal up to reordering of `P`/`F` children.  Building
//! those strings is `O(n²)` in the subtree size and comparing them is `O(n)`,
//! which is far too slow to use inside the differencing DP.  This module
//! hash-conses the same canonical form into a 128-bit [`Fingerprint`] per
//! subtree in **one post-order pass**, so that identical subtrees compare
//! equal in `O(1)`.
//!
//! The fingerprint of a node combines, exactly mirroring the signature:
//!
//! * the node type code (`Q`/`S`/`P`/`F`/`L`),
//! * the terminal labels `s(v)` and `t(v)`,
//! * the node's specification *origin* (when present, i.e. for run trees), and
//! * the fingerprints of the children — in order for `S`/`L` nodes, sorted
//!   for `P`/`F` nodes whose child order is not significant.
//!
//! Including the origin matters for correctness of fingerprint-keyed diff
//! caches: two run subtrees that are label-identical but instantiate
//! *different* specification branches (possible when a specification has
//! parallel multi-edges between the same modules) are **not** interchangeable
//! for the differencing algorithm, which only maps homologous nodes.  For
//! specification trees every origin is `None`, so a specification fingerprint
//! is purely structural.
//!
//! Fingerprints are 128 bits (two independently seeded 64-bit FNV-1a streams),
//! so accidental collisions are negligible for any realistic workload; equal
//! fingerprints are treated as proof of equivalence by `wfdiff-core`'s cache
//! layer.

use crate::node::{NodeType, TreeId};
use crate::tree::AnnotatedTree;

/// A 128-bit canonical structural hash of a subtree.
///
/// Equal fingerprints mean the subtrees are equivalent (same canonical form,
/// same origins); see the module docs for what the hash covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Two independently seeded FNV-1a streams making up one 128-bit hash.
#[derive(Clone, Copy)]
struct Fnv2 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv2 {
    fn new() -> Self {
        // Standard FNV offset basis and an arbitrary second basis.
        Fnv2 { a: 0xcbf2_9ce4_8422_2325, b: 0x9ae1_6a3b_2f90_404f }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte.wrapping_add(0x55))).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    fn write_u128(&mut self, value: u128) {
        self.write(&value.to_le_bytes());
    }

    fn finish(self) -> Fingerprint {
        Fingerprint((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

/// Per-node canonical fingerprints of one [`AnnotatedTree`], computed in a
/// single post-order pass.
#[derive(Debug, Clone)]
pub struct TreeFingerprints {
    fps: Vec<Fingerprint>,
    root: TreeId,
}

impl TreeFingerprints {
    /// Computes the fingerprint of every node reachable from the root.
    ///
    /// Detached arena nodes keep the default (zero) fingerprint; they are
    /// never consulted by the differencing algorithms.
    pub fn compute(tree: &AnnotatedTree) -> TreeFingerprints {
        let mut fps = vec![Fingerprint::default(); tree.len()];
        for v in tree.postorder(tree.root()) {
            let node = tree.node(v);
            let mut h = Fnv2::new();
            h.write(&[type_code(node.ty)]);
            h.write_u64(node.s_label.as_str().len() as u64);
            h.write(node.s_label.as_str().as_bytes());
            h.write_u64(node.t_label.as_str().len() as u64);
            h.write(node.t_label.as_str().as_bytes());
            match node.origin {
                Some(origin) => h.write_u64(1 + origin.index() as u64),
                None => h.write_u64(0),
            }
            let mut child_fps: Vec<Fingerprint> =
                node.children.iter().map(|c| fps[c.index()]).collect();
            if !node.ty.ordered_children() {
                child_fps.sort_unstable();
            }
            h.write_u64(child_fps.len() as u64);
            for fp in child_fps {
                h.write_u128(fp.0);
            }
            fps[v.index()] = h.finish();
        }
        TreeFingerprints { fps, root: tree.root() }
    }

    /// The fingerprint of the subtree rooted at `id`.
    pub fn of(&self, id: TreeId) -> Fingerprint {
        self.fps[id.index()]
    }

    /// The fingerprint of the whole tree.
    pub fn root(&self) -> Fingerprint {
        self.fps[self.root.index()]
    }

    /// Number of fingerprinted arena slots.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// `true` when the underlying arena was empty.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }
}

/// An **arena-identity** fingerprint of a tree: unlike [`TreeFingerprints`],
/// which canonicalises away the order of `P`/`F` children, this hash covers
/// the exact arena layout — node indices, child order, origins, control ids
/// and leaf edges.  Two trees share an arena fingerprint iff they are equal
/// as stored (`==`), not merely equivalent.
///
/// This is the right identity for *versioning*: run trees reference
/// specification nodes by arena `TreeId`, so two equivalent-but-differently-
/// built specifications are **not** interchangeable for a run's origins even
/// though their canonical fingerprints agree.
pub fn arena_fingerprint(tree: &AnnotatedTree) -> Fingerprint {
    let mut h = Fnv2::new();
    h.write_u64(tree.root().index() as u64);
    h.write_u64(tree.len() as u64);
    for idx in 0..tree.len() {
        let node = tree.node(TreeId::from(idx));
        h.write(&[type_code(node.ty)]);
        h.write_u64(node.s_label.as_str().len() as u64);
        h.write(node.s_label.as_str().as_bytes());
        h.write_u64(node.t_label.as_str().len() as u64);
        h.write(node.t_label.as_str().as_bytes());
        h.write_u64(node.origin.map_or(0, |o| 1 + o.index() as u64));
        h.write_u64(node.control_id.map_or(0, |c| 1 + c as u64));
        h.write_u64(node.children.len() as u64);
        for c in &node.children {
            h.write_u64(c.index() as u64);
        }
    }
    h.finish()
}

fn type_code(ty: NodeType) -> u8 {
    match ty {
        NodeType::Q => b'Q',
        NodeType::S => b'S',
        NodeType::P => b'P',
        NodeType::F => b'F',
        NodeType::L => b'L',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecificationBuilder;
    use crate::ExecutionDecider;

    fn fig2_spec() -> crate::Specification {
        let mut b = SpecificationBuilder::new("fig2");
        b.edge("1", "2")
            .path(&["2", "3", "6"])
            .path(&["2", "4", "6"])
            .path(&["2", "5", "6"])
            .edge("6", "7")
            .fork_path(&["2", "3", "6"])
            .fork_path(&["2", "4", "6"])
            .fork_path(&["2", "5", "6"])
            .fork_between("1", "7")
            .loop_between("2", "6");
        b.build().unwrap()
    }

    struct D {
        fork: usize,
        loops: usize,
    }
    impl ExecutionDecider for D {
        fn parallel_subset(&mut self, n: usize) -> Vec<bool> {
            vec![true; n]
        }
        fn fork_copies(&mut self, _c: usize) -> usize {
            self.fork
        }
        fn loop_iterations(&mut self, _c: usize) -> usize {
            self.loops
        }
    }

    #[test]
    fn equal_fingerprints_iff_equal_signatures() {
        let spec = fig2_spec();
        let runs = [
            spec.execute(&mut D { fork: 1, loops: 1 }).unwrap(),
            spec.execute(&mut D { fork: 2, loops: 1 }).unwrap(),
            spec.execute(&mut D { fork: 1, loops: 2 }).unwrap(),
            spec.execute(&mut D { fork: 2, loops: 2 }).unwrap(),
        ];
        let fps: Vec<TreeFingerprints> =
            runs.iter().map(|r| TreeFingerprints::compute(r.tree())).collect();
        for (i, a) in runs.iter().enumerate() {
            for (j, b) in runs.iter().enumerate() {
                let sig_eq =
                    a.tree().signature(a.tree().root()) == b.tree().signature(b.tree().root());
                assert_eq!(
                    fps[i].root() == fps[j].root(),
                    sig_eq,
                    "fingerprint equality must track signature equality ({i} vs {j})"
                );
            }
        }
    }

    #[test]
    fn fingerprint_ignores_p_child_order() {
        // Two executions that take the same branches produce equivalent trees
        // regardless of internal ordering; their fingerprints agree per node
        // count and at the root.
        let spec = fig2_spec();
        let r1 = spec.execute(&mut D { fork: 1, loops: 1 }).unwrap();
        let r2 = spec.execute(&mut D { fork: 1, loops: 1 }).unwrap();
        let f1 = TreeFingerprints::compute(r1.tree());
        let f2 = TreeFingerprints::compute(r2.tree());
        assert_eq!(f1.root(), f2.root());
    }

    #[test]
    fn subtree_fingerprints_distinguish_different_branches() {
        let spec = fig2_spec();
        let run = spec.execute(&mut D { fork: 1, loops: 1 }).unwrap();
        let tree = run.tree();
        let fps = TreeFingerprints::compute(tree);
        // All Q leaves instantiate different specification edges, so their
        // fingerprints are pairwise distinct.
        let leaves = tree.leaves(tree.root());
        for (i, &a) in leaves.iter().enumerate() {
            for &b in &leaves[i + 1..] {
                assert_ne!(fps.of(a), fps.of(b), "distinct leaves must not collide");
            }
        }
    }

    #[test]
    fn origin_is_part_of_the_fingerprint() {
        // A specification with two parallel multi-edges between u and v: the
        // two run leaves are label-identical but instantiate different
        // specification edges, so their fingerprints must differ.
        let mut b = SpecificationBuilder::new("multi");
        b.edge("u", "v");
        b.edge("u", "v");
        let spec = b.build().unwrap();
        let run = spec.execute(&mut D { fork: 1, loops: 1 }).unwrap();
        let tree = run.tree();
        let fps = TreeFingerprints::compute(tree);
        let leaves = tree.leaves(tree.root());
        assert_eq!(leaves.len(), 2);
        assert_eq!(tree.node(leaves[0]).s_label, tree.node(leaves[1]).s_label);
        assert_ne!(
            tree.node(leaves[0]).origin,
            tree.node(leaves[1]).origin,
            "the two multi-edge leaves instantiate different spec edges"
        );
        assert_ne!(fps.of(leaves[0]), fps.of(leaves[1]));
    }

    #[test]
    fn spec_fingerprint_is_structural() {
        let a = fig2_spec();
        let b = fig2_spec();
        let fa = TreeFingerprints::compute(a.tree());
        let fb = TreeFingerprints::compute(b.tree());
        assert_eq!(fa.root(), fb.root());
        let other = {
            let mut b = SpecificationBuilder::new("chain");
            b.path(&["a", "b", "c"]);
            b.build().unwrap()
        };
        let fo = TreeFingerprints::compute(other.tree());
        assert_ne!(fa.root(), fo.root());
    }
}
