//! The annotated SP-tree arena.
//!
//! Both specification trees (output of Algorithm 1) and run trees (output of
//! Algorithms 2/5 or of the execution function) are stored as
//! [`AnnotatedTree`]s: flat arenas of [`TreeNode`]s with parent/child links.
//!
//! The tree is *semi-ordered*: the order of `S` and `L` children is
//! significant, the order of `P` and `F` children is not.  [`AnnotatedTree::signature`]
//! computes a canonical textual form that sorts `P`/`F` children, so two trees
//! are equivalent (`≡`, Section IV-B) iff their signatures are equal.

use crate::node::{NodeType, TreeId, TreeNode};
use crate::{Result, SpTreeError};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use wfdiff_graph::{EdgeId, Label, NodeId};

/// An annotated SP-tree (specification tree or run tree).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotatedTree {
    nodes: Vec<TreeNode>,
    root: TreeId,
}

impl AnnotatedTree {
    /// Creates a tree with a single root node.
    pub fn with_root(root: TreeNode) -> Self {
        AnnotatedTree { nodes: vec![root], root: TreeId(0) }
    }

    /// Creates an empty arena; the caller must add nodes and then
    /// [`AnnotatedTree::set_root`].
    pub fn empty() -> Self {
        AnnotatedTree { nodes: Vec::new(), root: TreeId(0) }
    }

    /// Adds a node and returns its id.  Parent/child links are the caller's
    /// responsibility (see [`AnnotatedTree::attach_child`]).
    pub fn add_node(&mut self, node: TreeNode) -> TreeId {
        let id = TreeId::from(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Appends `child` to `parent`'s child list and sets the back pointer.
    pub fn attach_child(&mut self, parent: TreeId, child: TreeId) {
        self.nodes[parent.index()].children.push(child);
        self.nodes[child.index()].parent = Some(parent);
    }

    /// Sets the root node.
    pub fn set_root(&mut self, root: TreeId) {
        self.root = root;
        self.nodes[root.index()].parent = None;
    }

    /// The root node id.
    pub fn root(&self) -> TreeId {
        self.root
    }

    /// Number of nodes in the arena (including any detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: TreeId) -> &TreeNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: TreeId) -> &mut TreeNode {
        &mut self.nodes[id.index()]
    }

    /// The children of a node.
    pub fn children(&self, id: TreeId) -> &[TreeId] {
        &self.nodes[id.index()].children
    }

    /// The parent of a node.
    pub fn parent(&self, id: TreeId) -> Option<TreeId> {
        self.nodes[id.index()].parent
    }

    /// The node type of `id`.
    pub fn ty(&self, id: TreeId) -> NodeType {
        self.nodes[id.index()].ty
    }

    /// `true` if `id` has more than one child.
    pub fn is_true_node(&self, id: TreeId) -> bool {
        self.nodes[id.index()].is_true()
    }

    /// Post-order traversal of the subtree rooted at `id`.
    pub fn postorder(&self, id: TreeId) -> Vec<TreeId> {
        let mut out = Vec::new();
        self.postorder_into(id, &mut out);
        out
    }

    fn postorder_into(&self, id: TreeId, out: &mut Vec<TreeId>) {
        for &c in &self.nodes[id.index()].children {
            self.postorder_into(c, out);
        }
        out.push(id);
    }

    /// Pre-order traversal of the subtree rooted at `id`.
    pub fn preorder(&self, id: TreeId) -> Vec<TreeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.nodes[v.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The `Q` leaves of the subtree rooted at `id`, in left-to-right order.
    pub fn leaves(&self, id: TreeId) -> Vec<TreeId> {
        self.postorder(id).into_iter().filter(|&v| self.ty(v) == NodeType::Q).collect()
    }

    /// The graph edges represented by the `Q` leaves of the subtree rooted at
    /// `id`.
    pub fn leaf_edges(&self, id: TreeId) -> Vec<EdgeId> {
        self.leaves(id).into_iter().filter_map(|v| self.node(v).edge).collect()
    }

    /// Number of `Q` leaves below `id` (uses the cached `leaf_count`).
    pub fn leaf_count(&self, id: TreeId) -> usize {
        self.nodes[id.index()].leaf_count
    }

    /// Recomputes the cached `leaf_count` of every node reachable from the
    /// root.  Must be called after structural surgery (Algorithm 1 insertion).
    pub fn recompute_leaf_counts(&mut self) {
        for id in self.postorder(self.root) {
            let count = if self.ty(id) == NodeType::Q {
                1
            } else {
                self.children(id).iter().map(|&c| self.nodes[c.index()].leaf_count).sum()
            };
            self.nodes[id.index()].leaf_count = count;
        }
    }

    /// Depth of node `id` (root has depth 0).
    pub fn depth(&self, id: TreeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Terminal labels `(s(v), t(v))` of the subgraph represented by `id`.
    pub fn terminals(&self, id: TreeId) -> (&Label, &Label) {
        let n = self.node(id);
        (&n.s_label, &n.t_label)
    }

    /// Terminal graph nodes of the subgraph represented by `id`.
    pub fn terminal_nodes(&self, id: TreeId) -> (NodeId, NodeId) {
        let n = self.node(id);
        (n.s_node, n.t_node)
    }

    /// Inserts a fresh node between `child` and its current parent (or above
    /// the root), returning the new node's id.  Used by Algorithm 1 to insert
    /// `F`/`L` annotation nodes and grouping `S` nodes.
    pub fn insert_parent(&mut self, child: TreeId, mut node: TreeNode) -> TreeId {
        let old_parent = self.parent(child);
        node.children = vec![child];
        node.parent = old_parent;
        let new_id = self.add_node(node);
        self.nodes[child.index()].parent = Some(new_id);
        match old_parent {
            Some(p) => {
                let slot = self.nodes[p.index()]
                    .children
                    .iter()
                    .position(|&c| c == child)
                    .expect("child must be registered with its parent");
                self.nodes[p.index()].children[slot] = new_id;
            }
            None => {
                self.root = new_id;
            }
        }
        new_id
    }

    /// Groups the consecutive children `range` of `parent` under a fresh node,
    /// which takes their place in the child list.  Returns the new node's id.
    pub fn group_children(
        &mut self,
        parent: TreeId,
        range: std::ops::Range<usize>,
        mut node: TreeNode,
    ) -> TreeId {
        let grouped: Vec<TreeId> = self.nodes[parent.index()].children[range.clone()].to_vec();
        node.children = grouped.clone();
        node.parent = Some(parent);
        let new_id = self.add_node(node);
        for &c in &grouped {
            self.nodes[c.index()].parent = Some(new_id);
        }
        self.nodes[parent.index()].children.splice(range, [new_id]);
        new_id
    }

    /// Whether every node of the subtree rooted at `id` satisfies the
    /// *branch-free* condition (no true `P`, `F` or `L` node, Definition 4.1
    /// extended to loops as discussed in Section VI).
    pub fn is_branch_free(&self, id: TreeId) -> bool {
        self.postorder(id).into_iter().all(|v| {
            let n = self.node(v);
            match n.ty {
                NodeType::P | NodeType::F | NodeType::L => !n.is_true(),
                _ => true,
            }
        })
    }

    /// Whether `id` roots an *elementary* subtree: branch-free and a child of a
    /// true `P`, `F` or `L` node (Definition 4.1).
    pub fn is_elementary_subtree(&self, id: TreeId) -> bool {
        if !self.is_branch_free(id) {
            return false;
        }
        match self.parent(id) {
            Some(p) => {
                matches!(self.ty(p), NodeType::P | NodeType::F | NodeType::L)
                    && self.is_true_node(p)
            }
            None => false,
        }
    }

    /// Canonical signature of the subtree rooted at `id`.
    ///
    /// Two subtrees are equivalent (differ only in the order of children of
    /// `P`/`F` nodes) iff their signatures are equal.  The signature encodes
    /// the node type, the terminal labels and, for `Q` leaves, nothing more —
    /// run-node identities deliberately do not appear so that isomorphic runs
    /// produce identical signatures.
    pub fn signature(&self, id: TreeId) -> String {
        let n = self.node(id);
        let mut child_sigs: Vec<String> = n.children.iter().map(|&c| self.signature(c)).collect();
        if !n.ty.ordered_children() {
            child_sigs.sort();
        }
        let mut out = String::new();
        let _ = write!(out, "{}[{}>{}](", n.ty.code(), n.s_label, n.t_label);
        for (i, s) in child_sigs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(s);
        }
        out.push(')');
        out
    }

    /// Whole-tree equivalence (`≡` of Section IV-B): equal up to reordering of
    /// `P`/`F` children.
    pub fn equivalent(&self, other: &AnnotatedTree) -> bool {
        self.signature(self.root) == other.signature(other.root)
    }

    /// Validates the structural invariants of a **specification** tree
    /// (Lemma 4.2): internal nodes are `S`/`P`/`F`/`L`, leaves are `Q`, no node
    /// shares its type with its parent, `S`/`P` nodes have at least two
    /// children, and `F`/`L` nodes have exactly one child.
    pub fn validate_spec_tree(&self) -> Result<()> {
        for id in self.postorder(self.root) {
            let n = self.node(id);
            match n.ty {
                NodeType::Q => {
                    if !n.children.is_empty() {
                        return Err(SpTreeError::Invariant(format!("Q node {id} has children")));
                    }
                }
                NodeType::S | NodeType::P => {
                    if n.children.len() < 2 {
                        return Err(SpTreeError::Invariant(format!(
                            "{} node {id} has fewer than two children",
                            n.ty
                        )));
                    }
                }
                NodeType::F | NodeType::L => {
                    if n.children.len() != 1 {
                        return Err(SpTreeError::Invariant(format!(
                            "{} node {id} must have exactly one child in a specification tree",
                            n.ty
                        )));
                    }
                }
            }
            if let Some(p) = n.parent {
                if self.ty(p) == n.ty {
                    return Err(SpTreeError::Invariant(format!(
                        "node {id} has the same type as its parent"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Validates the structural invariants of a **run** tree (Lemma 4.4): as a
    /// specification tree, except `P` nodes may have a single child and
    /// `F`/`L` nodes may have any positive number of children.
    pub fn validate_run_tree(&self) -> Result<()> {
        for id in self.postorder(self.root) {
            let n = self.node(id);
            match n.ty {
                NodeType::Q => {
                    if !n.children.is_empty() {
                        return Err(SpTreeError::Invariant(format!("Q node {id} has children")));
                    }
                }
                NodeType::S => {
                    if n.children.len() < 2 {
                        return Err(SpTreeError::Invariant(format!(
                            "S node {id} has fewer than two children"
                        )));
                    }
                }
                NodeType::P => {
                    if n.children.is_empty() {
                        return Err(SpTreeError::Invariant(format!("P node {id} has no children")));
                    }
                }
                NodeType::F | NodeType::L => {
                    if n.children.is_empty() {
                        return Err(SpTreeError::Invariant(format!(
                            "{} node {id} has no children",
                            n.ty
                        )));
                    }
                }
            }
            if let Some(p) = n.parent {
                if self.ty(p) == n.ty && n.ty != NodeType::S {
                    return Err(SpTreeError::Invariant(format!(
                        "node {id} has the same type as its parent"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Renders the subtree rooted at `id` as an indented multi-line string,
    /// for debugging and for the PDiffView text views.
    pub fn render(&self, id: TreeId) -> String {
        let mut out = String::new();
        self.render_into(id, 0, &mut out);
        out
    }

    fn render_into(&self, id: TreeId, depth: usize, out: &mut String) {
        let n = self.node(id);
        let indent = "  ".repeat(depth);
        match n.ty {
            NodeType::Q => {
                let _ = writeln!(out, "{indent}Q({} -> {})", n.s_label, n.t_label);
            }
            _ => {
                let _ = writeln!(out, "{indent}{}[{} -> {}]", n.ty, n.s_label, n.t_label);
                for &c in &n.children {
                    self.render_into(c, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(tree: &mut AnnotatedTree, s: &str, t: &str) -> TreeId {
        let mut n = TreeNode::new(NodeType::Q, Label::new(s), Label::new(t), NodeId(0), NodeId(1));
        n.leaf_count = 1;
        tree.add_node(n)
    }

    /// Builds the tree S( Q(1,2), P( Q(2,3), Q(2,4) ), Q(4,5) ) by hand.
    fn sample_tree() -> AnnotatedTree {
        let mut t = AnnotatedTree::empty();
        let root = t.add_node(TreeNode::new(
            NodeType::S,
            Label::new("1"),
            Label::new("5"),
            NodeId(0),
            NodeId(4),
        ));
        let q12 = leaf(&mut t, "1", "2");
        let p = t.add_node(TreeNode::new(
            NodeType::P,
            Label::new("2"),
            Label::new("4"),
            NodeId(1),
            NodeId(3),
        ));
        let q23 = leaf(&mut t, "2", "3");
        let q24 = leaf(&mut t, "2", "4");
        let q45 = leaf(&mut t, "4", "5");
        t.attach_child(root, q12);
        t.attach_child(root, p);
        t.attach_child(p, q23);
        t.attach_child(p, q24);
        t.attach_child(root, q45);
        t.set_root(root);
        t.recompute_leaf_counts();
        t
    }

    #[test]
    fn traversals_and_leaf_counts() {
        let t = sample_tree();
        assert_eq!(t.leaf_count(t.root()), 4);
        assert_eq!(t.leaves(t.root()).len(), 4);
        let post = t.postorder(t.root());
        assert_eq!(*post.last().unwrap(), t.root());
        let pre = t.preorder(t.root());
        assert_eq!(pre[0], t.root());
        assert_eq!(pre.len(), post.len());
    }

    #[test]
    fn signature_sorts_parallel_children() {
        let t1 = sample_tree();
        // Build the same tree with the P children swapped.
        let mut t2 = AnnotatedTree::empty();
        let root = t2.add_node(TreeNode::new(
            NodeType::S,
            Label::new("1"),
            Label::new("5"),
            NodeId(0),
            NodeId(4),
        ));
        let q12 = leaf(&mut t2, "1", "2");
        let p = t2.add_node(TreeNode::new(
            NodeType::P,
            Label::new("2"),
            Label::new("4"),
            NodeId(1),
            NodeId(3),
        ));
        let q24 = leaf(&mut t2, "2", "4");
        let q23 = leaf(&mut t2, "2", "3");
        let q45 = leaf(&mut t2, "4", "5");
        t2.attach_child(root, q12);
        t2.attach_child(root, p);
        t2.attach_child(p, q24);
        t2.attach_child(p, q23);
        t2.attach_child(root, q45);
        t2.set_root(root);
        t2.recompute_leaf_counts();
        assert!(t1.equivalent(&t2));
    }

    #[test]
    fn signature_distinguishes_series_order() {
        let mut t1 = AnnotatedTree::empty();
        let r1 = t1.add_node(TreeNode::new(
            NodeType::S,
            Label::new("a"),
            Label::new("c"),
            NodeId(0),
            NodeId(2),
        ));
        let x = leaf(&mut t1, "a", "b");
        let y = leaf(&mut t1, "b", "c");
        t1.attach_child(r1, x);
        t1.attach_child(r1, y);
        t1.set_root(r1);

        let mut t2 = AnnotatedTree::empty();
        let r2 = t2.add_node(TreeNode::new(
            NodeType::S,
            Label::new("a"),
            Label::new("c"),
            NodeId(0),
            NodeId(2),
        ));
        let y2 = leaf(&mut t2, "b", "c");
        let x2 = leaf(&mut t2, "a", "b");
        t2.attach_child(r2, y2);
        t2.attach_child(r2, x2);
        t2.set_root(r2);

        assert!(!t1.equivalent(&t2));
    }

    #[test]
    fn insert_parent_above_child_and_root() {
        let mut t = sample_tree();
        let p_node = t.children(t.root())[1];
        let f = t.insert_parent(
            p_node,
            TreeNode::new(NodeType::F, Label::new("2"), Label::new("4"), NodeId(1), NodeId(3)),
        );
        assert_eq!(t.parent(p_node), Some(f));
        assert_eq!(t.children(t.root())[1], f);
        // Insert above the root.
        let old_root = t.root();
        let new_root = t.insert_parent(
            old_root,
            TreeNode::new(NodeType::F, Label::new("1"), Label::new("5"), NodeId(0), NodeId(4)),
        );
        assert_eq!(t.root(), new_root);
        assert_eq!(t.parent(old_root), Some(new_root));
        t.recompute_leaf_counts();
        assert_eq!(t.leaf_count(new_root), 4);
    }

    #[test]
    fn group_children_splices_range() {
        let mut t = sample_tree();
        let root = t.root();
        let grouped = t.group_children(
            root,
            0..2,
            TreeNode::new(NodeType::S, Label::new("1"), Label::new("4"), NodeId(0), NodeId(3)),
        );
        assert_eq!(t.children(root).len(), 2);
        assert_eq!(t.children(root)[0], grouped);
        assert_eq!(t.children(grouped).len(), 2);
        t.recompute_leaf_counts();
        assert_eq!(t.leaf_count(grouped), 3);
    }

    #[test]
    fn branch_free_and_elementary_subtrees() {
        let t = sample_tree();
        let root = t.root();
        let p = t.children(root)[1];
        let q23 = t.children(p)[0];
        // The whole tree has a true P node, so it is not branch-free.
        assert!(!t.is_branch_free(root));
        assert!(t.is_branch_free(q23));
        // q23's parent is a true P node, so it is elementary.
        assert!(t.is_elementary_subtree(q23));
        // The P node's parent is an S node, so the P subtree is not elementary
        // (and not branch-free either).
        assert!(!t.is_elementary_subtree(p));
        // The root is never elementary.
        assert!(!t.is_elementary_subtree(root));
    }

    #[test]
    fn spec_tree_validation() {
        let t = sample_tree();
        assert!(t.validate_spec_tree().is_ok());
        assert!(t.validate_run_tree().is_ok());
    }

    #[test]
    fn spec_validation_rejects_single_child_p() {
        let mut t = AnnotatedTree::empty();
        let root = t.add_node(TreeNode::new(
            NodeType::P,
            Label::new("a"),
            Label::new("b"),
            NodeId(0),
            NodeId(1),
        ));
        let q = leaf(&mut t, "a", "b");
        t.attach_child(root, q);
        t.set_root(root);
        t.recompute_leaf_counts();
        assert!(t.validate_spec_tree().is_err());
        // But it is a legal run tree (pseudo P node).
        assert!(t.validate_run_tree().is_ok());
    }

    #[test]
    fn render_is_indented() {
        let t = sample_tree();
        let s = t.render(t.root());
        assert!(s.contains("S[1 -> 5]"));
        assert!(s.contains("  P[2 -> 4]"));
        assert!(s.contains("    Q(2 -> 3)"));
    }

    #[test]
    fn depth_is_measured_from_root() {
        let t = sample_tree();
        let root = t.root();
        let p = t.children(root)[1];
        let q23 = t.children(p)[0];
        assert_eq!(t.depth(root), 0);
        assert_eq!(t.depth(p), 1);
        assert_eq!(t.depth(q23), 2);
    }
}
