//! Valid runs and Algorithms 2 and 5 (annotated SP-trees for runs).
//!
//! [`Run::from_graph`] takes a specification and a run *graph* and replays the
//! deterministic tree-execution function `f''`: it validates the run (label
//! homomorphism, acyclicity), builds the canonical SP-tree of the run graph
//! and then matches it against the specification's annotated SP-tree,
//! producing the run's annotated SP-tree with `F` and `L` nodes and the
//! homology map `h` (stored as each node's `origin`).
//!
//! Loop iterations are recognised through the implicit back edges
//! `(t(H), s(H))` as in Algorithm 5; the back edges themselves become the
//! separators between iterations and do not appear as leaves of the annotated
//! tree.

use crate::canonical::canonical_tree;
use crate::node::{NodeType, TreeId, TreeNode};
use crate::spec::Specification;
use crate::tree::AnnotatedTree;
use crate::{Result, SpTreeError};
use std::collections::{BTreeSet, HashMap};
use wfdiff_graph::{validate_run_against_graph, EdgeId, Label, LabeledDigraph, NodeId};

/// A valid run of an SP-workflow specification: the run graph together with
/// its annotated SP-tree.
#[derive(Debug, Clone)]
pub struct Run {
    spec_name: String,
    spec_fp: crate::Fingerprint,
    graph: LabeledDigraph,
    source: NodeId,
    sink: NodeId,
    tree: AnnotatedTree,
}

impl Run {
    /// Builds a [`Run`] by validating `graph` against `spec` and replaying its
    /// execution (Algorithms 2 and 5).
    pub fn from_graph(spec: &Specification, graph: LabeledDigraph) -> Result<Run> {
        let hom = validate_run_against_graph(
            spec.graph(),
            spec.sp().source(),
            spec.sp().sink(),
            &spec.loop_back_labels(),
            &graph,
        )?;
        let ctree = canonical_tree(&graph, hom.run_source, hom.run_sink)?;
        let tree = replay(spec, &graph, &ctree)?;
        Ok(Run {
            spec_name: spec.name().to_string(),
            spec_fp: spec.fingerprint(),
            graph,
            source: hom.run_source,
            sink: hom.run_sink,
            tree,
        })
    }

    /// Assembles a run from pre-built parts (used by the execution generator
    /// and by the edit-script applier, which construct the tree directly).
    pub(crate) fn from_parts(
        spec_name: String,
        spec_fp: crate::Fingerprint,
        graph: LabeledDigraph,
        source: NodeId,
        sink: NodeId,
        tree: AnnotatedTree,
    ) -> Run {
        Run { spec_name, spec_fp, graph, source, sink, tree }
    }

    /// Name of the specification this run belongs to.
    pub fn spec_name(&self) -> &str {
        &self.spec_name
    }

    /// Fingerprint of the exact specification *version* this run was
    /// validated against; see [`crate::Specification::fingerprint`].
    pub fn spec_fingerprint(&self) -> crate::Fingerprint {
        self.spec_fp
    }

    /// The run graph (including implicit loop back-edges).
    pub fn graph(&self) -> &LabeledDigraph {
        &self.graph
    }

    /// The run's source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The run's sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// The annotated SP-tree of the run.
    pub fn tree(&self) -> &AnnotatedTree {
        &self.tree
    }

    /// Number of edges of the run graph (implicit loop edges included); this is
    /// the `|E|` the evaluation section reports.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of nodes of the run graph.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Two runs are equivalent if their annotated SP-trees are equivalent
    /// (equal up to reordering of `P`/`F` children).
    pub fn equivalent(&self, other: &Run) -> bool {
        self.tree.equivalent(&other.tree)
    }
}

impl Specification {
    /// Convenience wrapper for [`Run::from_graph`].
    pub fn validate_run(&self, graph: LabeledDigraph) -> Result<Run> {
        Run::from_graph(self, graph)
    }
}

/// A key identifying what part of the specification a run edge belongs to:
/// either a specification edge, or the implicit back edge of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SpecKey {
    Edge(EdgeId),
    LoopBack(usize),
}

/// How a multi-element forest of canonical subtrees composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Comp {
    Series,
    Parallel,
}

struct Replayer<'a> {
    spec: &'a Specification,
    /// Key sets of every specification-tree node.
    spec_keys: Vec<BTreeSet<SpecKey>>,
    ctree: &'a AnnotatedTree,
    /// Key sets of every canonical-run-tree node.
    run_keys: Vec<BTreeSet<SpecKey>>,
    out: AnnotatedTree,
}

/// Replays the run described by the canonical tree `ctree` against `spec`,
/// producing the annotated run tree.
fn replay(
    spec: &Specification,
    graph: &LabeledDigraph,
    ctree: &AnnotatedTree,
) -> Result<AnnotatedTree> {
    // Key set per specification node.
    let spec_tree = spec.tree();
    let mut spec_keys: Vec<BTreeSet<SpecKey>> = vec![BTreeSet::new(); spec_tree.len()];
    for id in spec_tree.postorder(spec_tree.root()) {
        let mut set = BTreeSet::new();
        match spec_tree.ty(id) {
            NodeType::Q => {
                set.insert(SpecKey::Edge(
                    spec_tree.node(id).edge.expect("spec Q leaves reference spec edges"),
                ));
            }
            NodeType::L => {
                set.insert(SpecKey::LoopBack(
                    spec_tree.node(id).control_id.expect("L nodes carry a control id"),
                ));
                for &c in spec_tree.children(id) {
                    set.extend(spec_keys[c.index()].iter().copied());
                }
            }
            _ => {
                for &c in spec_tree.children(id) {
                    set.extend(spec_keys[c.index()].iter().copied());
                }
            }
        }
        spec_keys[id.index()] = set;
    }

    // Key set per canonical run node.
    let edge_by_labels = spec.edge_by_labels();
    let mut run_keys: Vec<BTreeSet<SpecKey>> = vec![BTreeSet::new(); ctree.len()];
    for id in ctree.postorder(ctree.root()) {
        let mut set = BTreeSet::new();
        if ctree.ty(id) == NodeType::Q {
            let node = ctree.node(id);
            let key = run_edge_key(spec, &edge_by_labels, &node.s_label, &node.t_label)?;
            set.insert(key);
        } else {
            for &c in ctree.children(id) {
                set.extend(run_keys[c.index()].iter().copied());
            }
        }
        run_keys[id.index()] = set;
    }
    let _ = graph;

    let mut replayer = Replayer { spec, spec_keys, ctree, run_keys, out: AnnotatedTree::empty() };
    let root = replayer.build(spec_tree.root(), &[ctree.root()], Comp::Series)?;
    let mut out = replayer.out;
    out.set_root(root);
    out.recompute_leaf_counts();
    out.validate_run_tree()?;
    Ok(out)
}

/// Maps a run edge (by its endpoint labels) to the specification edge or loop
/// back-edge it instantiates.
fn run_edge_key(
    spec: &Specification,
    edge_by_labels: &HashMap<(Label, Label), EdgeId>,
    from: &Label,
    to: &Label,
) -> Result<SpecKey> {
    if let Some(&e) = edge_by_labels.get(&(from.clone(), to.clone())) {
        return Ok(SpecKey::Edge(e));
    }
    if let Some(l) = spec.loop_for_back_edge(from, to) {
        return Ok(SpecKey::LoopBack(l));
    }
    Err(SpTreeError::InvalidRun {
        what: format!(
            "run edge {from} -> {to} matches neither a specification edge nor a loop back edge"
        ),
    })
}

impl<'a> Replayer<'a> {
    fn spec_tree(&self) -> &AnnotatedTree {
        self.spec.tree()
    }

    fn overlaps(&self, spec_v: TreeId, run_v: TreeId) -> bool {
        let a = &self.spec_keys[spec_v.index()];
        let b = &self.run_keys[run_v.index()];
        // Iterate over the smaller set.
        if a.len() <= b.len() {
            a.iter().any(|k| b.contains(k))
        } else {
            b.iter().any(|k| a.contains(k))
        }
    }

    /// Flattens a forest that is known to compose in series into the ordered
    /// list of canonical subtrees at the top level.
    fn flatten_series(&self, forest: &[TreeId], ctx: Comp) -> Result<Vec<TreeId>> {
        if forest.len() == 1 && self.ctree.ty(forest[0]) == NodeType::S {
            Ok(self.ctree.children(forest[0]).to_vec())
        } else if forest.len() == 1 || ctx == Comp::Series {
            Ok(forest.to_vec())
        } else {
            Err(SpTreeError::InvalidRun {
                what: "parallel replication found where the specification requires a series \
                       composition (missing fork annotation?)"
                    .to_string(),
            })
        }
    }

    fn build(&mut self, spec_v: TreeId, forest: &[TreeId], ctx: Comp) -> Result<TreeId> {
        if forest.is_empty() {
            return Err(SpTreeError::InvalidRun {
                what: format!(
                    "no run fragment corresponds to the specification subtree between {} and {}",
                    self.spec_tree().node(spec_v).s_label,
                    self.spec_tree().node(spec_v).t_label
                ),
            });
        }
        match self.spec_tree().ty(spec_v) {
            NodeType::Q => self.build_leaf(spec_v, forest),
            NodeType::S => self.build_series(spec_v, forest, ctx),
            NodeType::P => self.build_parallel(spec_v, forest, ctx),
            NodeType::F => self.build_fork(spec_v, forest, ctx),
            NodeType::L => self.build_loop(spec_v, forest, ctx),
        }
    }

    fn build_leaf(&mut self, spec_v: TreeId, forest: &[TreeId]) -> Result<TreeId> {
        let spec_node = self.spec_tree().node(spec_v).clone();
        if forest.len() != 1 || self.ctree.ty(forest[0]) != NodeType::Q {
            return Err(SpTreeError::InvalidRun {
                what: format!(
                    "module edge {} -> {} is replicated in the run without a fork or loop",
                    spec_node.s_label, spec_node.t_label
                ),
            });
        }
        let cnode = self.ctree.node(forest[0]);
        if cnode.s_label != spec_node.s_label || cnode.t_label != spec_node.t_label {
            return Err(SpTreeError::InvalidRun {
                what: format!(
                    "run edge {} -> {} does not instantiate specification edge {} -> {}",
                    cnode.s_label, cnode.t_label, spec_node.s_label, spec_node.t_label
                ),
            });
        }
        let mut node = TreeNode::new(
            NodeType::Q,
            cnode.s_label.clone(),
            cnode.t_label.clone(),
            cnode.s_node,
            cnode.t_node,
        );
        node.edge = cnode.edge;
        node.origin = Some(spec_v);
        node.leaf_count = 1;
        Ok(self.out.add_node(node))
    }

    fn build_series(&mut self, spec_v: TreeId, forest: &[TreeId], ctx: Comp) -> Result<TreeId> {
        let flat = self.flatten_series(forest, ctx)?;
        let spec_children = self.spec_tree().children(spec_v).to_vec();
        let mut groups: Vec<Vec<TreeId>> = vec![Vec::new(); spec_children.len()];
        for &f in &flat {
            let mut target = None;
            for (i, &sc) in spec_children.iter().enumerate() {
                if self.overlaps(sc, f) {
                    if target.is_some() {
                        return Err(SpTreeError::InvalidRun {
                            what: "a run fragment spans more than one series component of the \
                                   specification"
                                .to_string(),
                        });
                    }
                    target = Some(i);
                }
            }
            match target {
                Some(i) => groups[i].push(f),
                None => {
                    return Err(SpTreeError::InvalidRun {
                        what: "a run fragment does not correspond to any series component of the \
                               specification"
                            .to_string(),
                    })
                }
            }
        }
        let mut out_children = Vec::with_capacity(spec_children.len());
        for (i, &sc) in spec_children.iter().enumerate() {
            let child = self.build(sc, &groups[i], Comp::Series)?;
            out_children.push(child);
        }
        Ok(self.add_internal(NodeType::S, spec_v, out_children, None))
    }

    fn build_parallel(&mut self, spec_v: TreeId, forest: &[TreeId], ctx: Comp) -> Result<TreeId> {
        let spec_children = self.spec_tree().children(spec_v).to_vec();
        if forest.len() == 1 && self.ctree.ty(forest[0]) == NodeType::P {
            let flat = self.ctree.children(forest[0]).to_vec();
            let mut groups: Vec<Vec<TreeId>> = vec![Vec::new(); spec_children.len()];
            for &f in &flat {
                let mut target = None;
                for (i, &sc) in spec_children.iter().enumerate() {
                    if self.overlaps(sc, f) {
                        if target.is_some() {
                            return Err(SpTreeError::InvalidRun {
                                what: "a run branch spans more than one parallel branch of the \
                                       specification"
                                    .to_string(),
                            });
                        }
                        target = Some(i);
                    }
                }
                match target {
                    Some(i) => groups[i].push(f),
                    None => {
                        return Err(SpTreeError::InvalidRun {
                            what: "a run branch does not correspond to any parallel branch of \
                                   the specification"
                                .to_string(),
                        })
                    }
                }
            }
            let mut out_children = Vec::new();
            for (i, &sc) in spec_children.iter().enumerate() {
                if groups[i].is_empty() {
                    continue;
                }
                out_children.push(self.build(sc, &groups[i], Comp::Parallel)?);
            }
            if out_children.is_empty() {
                return Err(SpTreeError::InvalidRun {
                    what: "parallel section of the run executes no branch".to_string(),
                });
            }
            Ok(self.add_internal(NodeType::P, spec_v, out_children, None))
        } else {
            // A single branch was taken: the forest is the branch's content.
            let mut target = None;
            for (i, &sc) in spec_children.iter().enumerate() {
                if forest.iter().any(|&f| self.overlaps(sc, f)) {
                    if target.is_some() {
                        return Err(SpTreeError::InvalidRun {
                            what: "run content inside a parallel section maps to several \
                                   branches but is not parallel-composed"
                                .to_string(),
                        });
                    }
                    target = Some(i);
                }
            }
            let i = target.ok_or_else(|| SpTreeError::InvalidRun {
                what: "parallel section of the run executes no branch".to_string(),
            })?;
            let child = self.build(spec_children[i], forest, ctx)?;
            Ok(self.add_internal(NodeType::P, spec_v, vec![child], None))
        }
    }

    fn build_fork(&mut self, spec_v: TreeId, forest: &[TreeId], ctx: Comp) -> Result<TreeId> {
        let body = self.spec_tree().children(spec_v)[0];
        let control_id = self.spec_tree().node(spec_v).control_id;
        let copies: Vec<Vec<TreeId>> =
            if forest.len() == 1 && self.ctree.ty(forest[0]) == NodeType::P {
                self.ctree.children(forest[0]).iter().map(|&c| vec![c]).collect()
            } else if forest.len() > 1 && ctx == Comp::Parallel {
                forest.iter().map(|&c| vec![c]).collect()
            } else {
                vec![forest.to_vec()]
            };
        let mut out_children = Vec::with_capacity(copies.len());
        for copy in &copies {
            out_children.push(self.build(body, copy, Comp::Series)?);
        }
        Ok(self.add_internal(NodeType::F, spec_v, out_children, control_id))
    }

    fn build_loop(&mut self, spec_v: TreeId, forest: &[TreeId], ctx: Comp) -> Result<TreeId> {
        let body = self.spec_tree().children(spec_v)[0];
        let control_id = self.spec_tree().node(spec_v).control_id;
        let this_loop = control_id.expect("L nodes carry a control id");
        let flat = self.flatten_series(forest, ctx)?;
        // Split the flat sequence at the implicit back edges of *this* loop.
        let mut iterations: Vec<Vec<TreeId>> = vec![Vec::new()];
        for &f in &flat {
            let is_separator = self.ctree.ty(f) == NodeType::Q
                && self.run_keys[f.index()].contains(&SpecKey::LoopBack(this_loop))
                && self.run_keys[f.index()].len() == 1;
            if is_separator {
                iterations.push(Vec::new());
            } else {
                iterations.last_mut().expect("iterations is non-empty").push(f);
            }
        }
        if iterations.iter().any(|it| it.is_empty()) {
            return Err(SpTreeError::InvalidRun {
                what: format!(
                    "loop between {} and {} has an empty iteration (stray back edge)",
                    self.spec_tree().node(spec_v).s_label,
                    self.spec_tree().node(spec_v).t_label
                ),
            });
        }
        let mut out_children = Vec::with_capacity(iterations.len());
        for it in &iterations {
            out_children.push(self.build(body, it, Comp::Series)?);
        }
        Ok(self.add_internal(NodeType::L, spec_v, out_children, control_id))
    }

    /// Adds an internal node whose terminals are inferred from its children
    /// (first child's source, last child's sink).
    fn add_internal(
        &mut self,
        ty: NodeType,
        origin: TreeId,
        children: Vec<TreeId>,
        control_id: Option<usize>,
    ) -> TreeId {
        let first = children[0];
        let last = *children.last().expect("internal nodes have children");
        let mut node = TreeNode::new(
            ty,
            self.out.node(first).s_label.clone(),
            self.out.node(last).t_label.clone(),
            self.out.node(first).s_node,
            self.out.node(last).t_node,
        );
        node.origin = Some(origin);
        node.control_id = control_id;
        let id = self.out.add_node(node);
        for c in children {
            self.out.attach_child(id, c);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecificationBuilder;

    fn fig2_specification() -> Specification {
        let mut b = SpecificationBuilder::new("fig2");
        b.edge("1", "2")
            .path(&["2", "3", "6"])
            .path(&["2", "4", "6"])
            .path(&["2", "5", "6"])
            .edge("6", "7")
            .fork_path(&["2", "3", "6"])
            .fork_path(&["2", "4", "6"])
            .fork_path(&["2", "5", "6"])
            .fork_between("1", "7")
            .loop_between("2", "6");
        b.build().unwrap()
    }

    /// Run R1 of Fig. 2(b): branches 3 (twice, forked) and 4 between 2 and 6.
    fn fig2_run1_graph() -> LabeledDigraph {
        let mut r = LabeledDigraph::new();
        let n1 = r.add_node("1");
        let n2 = r.add_node("2");
        let n3a = r.add_node("3");
        let n3b = r.add_node("3");
        let n4 = r.add_node("4");
        let n6 = r.add_node("6");
        let n7 = r.add_node("7");
        r.add_edge(n1, n2);
        r.add_edge(n2, n3a);
        r.add_edge(n2, n3b);
        r.add_edge(n2, n4);
        r.add_edge(n3a, n6);
        r.add_edge(n3b, n6);
        r.add_edge(n4, n6);
        r.add_edge(n6, n7);
        r
    }

    /// Run R2 of Fig. 2(c): two copies of the whole workflow (outer fork).
    fn fig2_run2_graph() -> LabeledDigraph {
        let mut r = LabeledDigraph::new();
        // Copy 1: 1 -> 2 -> {3, 4, 4} -> 6 -> 7
        let n1 = r.add_node("1");
        let n2a = r.add_node("2");
        let n3a = r.add_node("3");
        let n4a = r.add_node("4");
        let n4b = r.add_node("4");
        let n6a = r.add_node("6");
        let n7 = r.add_node("7");
        // Copy 2: 1 -> 2 -> {4, 5} -> 6 -> 7 (sharing nodes 1 and 7)
        let n2b = r.add_node("2");
        let n4c = r.add_node("4");
        let n5a = r.add_node("5");
        let n6b = r.add_node("6");
        r.add_edge(n1, n2a);
        r.add_edge(n2a, n3a);
        r.add_edge(n2a, n4a);
        r.add_edge(n2a, n4b);
        r.add_edge(n3a, n6a);
        r.add_edge(n4a, n6a);
        r.add_edge(n4b, n6a);
        r.add_edge(n6a, n7);
        r.add_edge(n1, n2b);
        r.add_edge(n2b, n4c);
        r.add_edge(n2b, n5a);
        r.add_edge(n4c, n6b);
        r.add_edge(n5a, n6b);
        r.add_edge(n6b, n7);
        r
    }

    /// Run R3 of Fig. 2(d): two iterations of the loop between 2 and 6.
    fn fig2_run3_graph() -> LabeledDigraph {
        let mut r = LabeledDigraph::new();
        let n1 = r.add_node("1");
        let n2a = r.add_node("2");
        let n3a = r.add_node("3");
        let n4a = r.add_node("4");
        let n4b = r.add_node("4");
        let n6a = r.add_node("6");
        let n2b = r.add_node("2");
        let n4c = r.add_node("4");
        let n5a = r.add_node("5");
        let n6b = r.add_node("6");
        let n7 = r.add_node("7");
        r.add_edge(n1, n2a);
        r.add_edge(n2a, n3a);
        r.add_edge(n2a, n4a);
        r.add_edge(n2a, n4b);
        r.add_edge(n3a, n6a);
        r.add_edge(n4a, n6a);
        r.add_edge(n4b, n6a);
        r.add_edge(n6a, n2b); // implicit loop back edge
        r.add_edge(n2b, n4c);
        r.add_edge(n2b, n5a);
        r.add_edge(n4c, n6b);
        r.add_edge(n5a, n6b);
        r.add_edge(n6b, n7);
        r
    }

    #[test]
    fn run1_tree_matches_fig6c() {
        let spec = fig2_specification();
        let run = Run::from_graph(&spec, fig2_run1_graph()).unwrap();
        let t = run.tree();
        // Root F (outer fork) with one copy.
        assert_eq!(t.ty(t.root()), NodeType::F);
        assert_eq!(t.children(t.root()).len(), 1);
        let s = t.children(t.root())[0];
        assert_eq!(t.ty(s), NodeType::S);
        assert_eq!(t.children(s).len(), 3);
        // Middle child: L (one iteration) wrapping P.
        let l = t.children(s)[1];
        assert_eq!(t.ty(l), NodeType::L);
        assert_eq!(t.children(l).len(), 1);
        let p = t.children(l)[0];
        assert_eq!(t.ty(p), NodeType::P);
        // Two parallel groups: the fork over branch 3 (2 copies) and branch 4.
        assert_eq!(t.children(p).len(), 2);
        let mut fork_sizes: Vec<usize> =
            t.children(p).iter().map(|&c| t.children(c).len()).collect();
        fork_sizes.sort();
        assert_eq!(fork_sizes, vec![1, 2]);
        // Leaf count excludes nothing here (no loops unrolled): 8 edges.
        assert_eq!(t.leaf_count(t.root()), 8);
        assert_eq!(run.edge_count(), 8);
    }

    #[test]
    fn run2_tree_has_two_outer_fork_copies() {
        let spec = fig2_specification();
        let run = Run::from_graph(&spec, fig2_run2_graph()).unwrap();
        let t = run.tree();
        assert_eq!(t.ty(t.root()), NodeType::F);
        assert_eq!(t.children(t.root()).len(), 2);
        for &copy in t.children(t.root()) {
            assert_eq!(t.ty(copy), NodeType::S);
            assert_eq!(t.children(copy).len(), 3);
        }
        assert_eq!(t.leaf_count(t.root()), 14);
    }

    #[test]
    fn run3_tree_has_two_loop_iterations() {
        let spec = fig2_specification();
        let run = Run::from_graph(&spec, fig2_run3_graph()).unwrap();
        let t = run.tree();
        assert_eq!(t.ty(t.root()), NodeType::F);
        let s = t.children(t.root())[0];
        let l = t.children(s)[1];
        assert_eq!(t.ty(l), NodeType::L);
        assert_eq!(t.children(l).len(), 2, "the loop was executed twice");
        // 13 graph edges, one of which is the implicit back edge.
        assert_eq!(run.edge_count(), 13);
        assert_eq!(t.leaf_count(t.root()), 12);
    }

    #[test]
    fn origins_point_into_the_spec_tree() {
        let spec = fig2_specification();
        let run = Run::from_graph(&spec, fig2_run1_graph()).unwrap();
        let t = run.tree();
        for id in t.postorder(t.root()) {
            let origin = t.node(id).origin.expect("every run node has an origin");
            // The origin is a valid spec node of the same type.
            assert_eq!(spec.tree().ty(origin), t.ty(id));
            // Terminal labels agree with the spec node's terminals.
            assert_eq!(spec.tree().node(origin).s_label, t.node(id).s_label);
            assert_eq!(spec.tree().node(origin).t_label, t.node(id).t_label);
        }
    }

    #[test]
    fn runs_of_the_same_shape_are_equivalent() {
        let spec = fig2_specification();
        let r1 = Run::from_graph(&spec, fig2_run1_graph()).unwrap();
        let r1_again = Run::from_graph(&spec, fig2_run1_graph()).unwrap();
        let r2 = Run::from_graph(&spec, fig2_run2_graph()).unwrap();
        assert!(r1.equivalent(&r1_again));
        assert!(!r1.equivalent(&r2));
    }

    #[test]
    fn replication_without_fork_is_rejected() {
        // Specification chain a -> b -> c with no forks; a run that duplicates
        // the edge a -> b is a valid homomorphic image but not a valid
        // SP-workflow execution.
        let mut b = SpecificationBuilder::new("plain");
        b.path(&["a", "b", "c"]);
        let spec = b.build().unwrap();
        let mut r = LabeledDigraph::new();
        let na = r.add_node("a");
        let nb1 = r.add_node("b");
        let nb2 = r.add_node("b");
        let nc = r.add_node("c");
        r.add_edge(na, nb1);
        r.add_edge(na, nb2);
        r.add_edge(nb1, nc);
        r.add_edge(nb2, nc);
        let err = Run::from_graph(&spec, r).unwrap_err();
        assert!(matches!(err, SpTreeError::InvalidRun { .. }));
    }

    #[test]
    fn missing_series_component_is_rejected() {
        let spec = fig2_specification();
        // A "run" that skips module 6: 1 -> 2 -> 3 -> 7 is not even
        // homomorphic (edge 3 -> 7 does not exist), so use 1 -> 2 -> 3 -> 6
        // without the final 6 -> 7 edge: then 6 is the sink, violating the
        // terminal condition.
        let mut r = LabeledDigraph::new();
        let n1 = r.add_node("1");
        let n2 = r.add_node("2");
        let n3 = r.add_node("3");
        let n6 = r.add_node("6");
        r.add_edge(n1, n2);
        r.add_edge(n2, n3);
        r.add_edge(n3, n6);
        assert!(Run::from_graph(&spec, r).is_err());
    }

    #[test]
    fn single_path_run_is_valid() {
        let spec = fig2_specification();
        let mut r = LabeledDigraph::new();
        let n1 = r.add_node("1");
        let n2 = r.add_node("2");
        let n5 = r.add_node("5");
        let n6 = r.add_node("6");
        let n7 = r.add_node("7");
        r.add_edge(n1, n2);
        r.add_edge(n2, n5);
        r.add_edge(n5, n6);
        r.add_edge(n6, n7);
        let run = Run::from_graph(&spec, r).unwrap();
        let t = run.tree();
        assert_eq!(t.leaf_count(t.root()), 4);
        // Structure: F -> S -> [Q, L -> P -> F -> S(Q,Q), Q]
        assert_eq!(t.ty(t.root()), NodeType::F);
        assert!(t.validate_run_tree().is_ok());
    }
}
