//! SP-workflow specifications and Algorithm 1 (annotated SP-trees for
//! specifications).
//!
//! A specification is a triple `(G, F, L)`: an SP-graph `G` with unique node
//! labels, a set `F` of *fork* subgraphs (series subgraphs of `G`) and a set
//! `L` of *loop* subgraphs (complete subgraphs of `G`), such that the edge
//! sets of `F ∪ L` form a laminar family (Sections III-D and VI).
//!
//! [`Specification::new`] builds the canonical SP-tree of `G` and then applies
//! **Algorithm 1**, inserting an `F` or `L` node above the subtree that
//! represents each fork/loop subgraph.

use crate::canonical::canonical_tree;
use crate::laminar::{check_laminar, has_duplicate_sets};
use crate::node::{NodeType, TreeId, TreeNode};
use crate::tree::AnnotatedTree;
use crate::{Result, SpTreeError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use wfdiff_graph::{EdgeId, GraphError, Label, LabeledDigraph, NodeId, SpGraph};

/// Whether a control subgraph is replicated in parallel (fork) or in series
/// (loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlKind {
    /// Fork: copies execute in parallel between the fork point and the
    /// synchronisation point.
    Fork,
    /// Loop: iterations execute in series, joined by implicit back edges from
    /// the sink of one iteration to the source of the next.
    Loop,
}

/// A fork or loop subgraph of a specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlSubgraph {
    /// Fork or loop.
    pub kind: ControlKind,
    /// The specification edges covered by the subgraph.
    pub edges: BTreeSet<EdgeId>,
    /// Source terminal of the subgraph (the fork/loop entry point).
    pub source: NodeId,
    /// Sink terminal of the subgraph (the synchronisation point).
    pub sink: NodeId,
    /// Label of the source terminal.
    pub source_label: Label,
    /// Label of the sink terminal.
    pub sink_label: Label,
}

impl ControlSubgraph {
    /// Number of specification edges covered (`||F||` / `||L||` contributions
    /// in Table I).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Summary statistics of a specification, matching the columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// Number of forks `|F|`.
    pub forks: usize,
    /// Total number of edges covered by forks `||F||`.
    pub fork_edges: usize,
    /// Number of loops `|L|`.
    pub loops: usize,
    /// Total number of edges covered by loops `||L||`.
    pub loop_edges: usize,
}

/// An SP-workflow specification `(G, F, L)` together with its annotated
/// SP-tree `T_G`.
#[derive(Debug, Clone)]
pub struct Specification {
    name: String,
    sp: SpGraph,
    controls: Vec<ControlSubgraph>,
    tree: AnnotatedTree,
    /// Loop back edges `(t(H), s(H))` keyed by label pair, mapping to the
    /// control index of the loop.
    loop_back: HashMap<(Label, Label), usize>,
    /// Tree node of each control annotation (the inserted `F`/`L` node).
    control_tree_nodes: Vec<TreeId>,
    /// Lazily computed arena-identity fingerprint of the annotated tree; used
    /// to detect stale runs after a specification is replaced.
    fp: std::sync::OnceLock<crate::Fingerprint>,
}

impl Specification {
    /// Builds a specification from an SP-graph and its fork/loop subgraphs
    /// (Algorithm 1).
    pub fn new(
        name: impl Into<String>,
        sp: SpGraph,
        controls: Vec<(ControlKind, BTreeSet<EdgeId>)>,
    ) -> Result<Self> {
        let name = name.into();
        // Specification labels must be unique.
        sp.graph().unique_label_index()?;
        let mut tree = canonical_tree(sp.graph(), sp.source(), sp.sink())?;

        // Validate the control family.
        let sets: Vec<BTreeSet<EdgeId>> = controls.iter().map(|(_, s)| s.clone()).collect();
        if let Err((i, j)) = check_laminar(&sets) {
            return Err(SpTreeError::NotLaminar {
                what: format!("control subgraphs #{i} and #{j} overlap without nesting"),
            });
        }
        if let Some((i, j)) = has_duplicate_sets(&sets) {
            return Err(SpTreeError::AmbiguousControl {
                what: format!("control subgraphs #{i} and #{j} cover exactly the same edges"),
            });
        }

        // Materialise the ControlSubgraph records (terminals from edge sets).
        let mut records = Vec::with_capacity(controls.len());
        for (kind, edges) in &controls {
            if edges.is_empty() {
                return Err(SpTreeError::ControlNotRepresentable {
                    what: "empty fork/loop subgraph".to_string(),
                });
            }
            let (source, sink) = subgraph_terminals(sp.graph(), edges)?;
            records.push(ControlSubgraph {
                kind: *kind,
                edges: edges.clone(),
                source,
                sink,
                source_label: sp.graph().label(source).clone(),
                sink_label: sp.graph().label(sink).clone(),
            });
        }

        // Algorithm 1: insert an F/L node for every control subgraph.
        let mut control_tree_nodes = vec![TreeId(0); records.len()];
        for (idx, rec) in records.iter().enumerate() {
            let inserted = insert_control_annotation(&mut tree, rec, idx)?;
            control_tree_nodes[idx] = inserted;
        }
        tree.recompute_leaf_counts();
        tree.validate_spec_tree()?;

        // Loop back-edge disambiguation map.
        let mut loop_back = HashMap::new();
        for (idx, rec) in records.iter().enumerate() {
            if rec.kind == ControlKind::Loop {
                let key = (rec.sink_label.clone(), rec.source_label.clone());
                if loop_back.insert(key, idx).is_some() {
                    return Err(SpTreeError::AmbiguousControl {
                        what: format!(
                            "two loops share the terminals ({}, {}); their implicit back edges \
                             would be indistinguishable in runs",
                            rec.source_label, rec.sink_label
                        ),
                    });
                }
            }
        }

        Ok(Specification {
            name,
            sp,
            controls: records,
            tree,
            loop_back,
            control_tree_nodes,
            fp: std::sync::OnceLock::new(),
        })
    }

    /// The **arena-identity** fingerprint of the annotated specification
    /// tree (cached after the first call); see
    /// [`crate::fingerprint::arena_fingerprint`].  Two specifications share
    /// a fingerprint iff their trees are equal as stored — equivalent trees
    /// built with a different parallel-branch order do **not**, because run
    /// trees reference specification nodes by arena id and are therefore not
    /// portable between such builds.
    pub fn fingerprint(&self) -> crate::Fingerprint {
        *self.fp.get_or_init(|| crate::fingerprint::arena_fingerprint(&self.tree))
    }

    /// The specification name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying SP-graph.
    pub fn sp(&self) -> &SpGraph {
        &self.sp
    }

    /// The underlying labeled graph.
    pub fn graph(&self) -> &LabeledDigraph {
        self.sp.graph()
    }

    /// The annotated SP-tree `T_G`.
    pub fn tree(&self) -> &AnnotatedTree {
        &self.tree
    }

    /// All fork/loop subgraphs in the order they were supplied.
    pub fn controls(&self) -> &[ControlSubgraph] {
        &self.controls
    }

    /// The control subgraph with the given index.
    pub fn control(&self, idx: usize) -> &ControlSubgraph {
        &self.controls[idx]
    }

    /// The tree node (`F` or `L`) annotating control `idx`.
    pub fn control_tree_node(&self, idx: usize) -> TreeId {
        self.control_tree_nodes[idx]
    }

    /// Number of forks `|F|`.
    pub fn fork_count(&self) -> usize {
        self.controls.iter().filter(|c| c.kind == ControlKind::Fork).count()
    }

    /// Number of loops `|L|`.
    pub fn loop_count(&self) -> usize {
        self.controls.iter().filter(|c| c.kind == ControlKind::Loop).count()
    }

    /// Table-I style statistics.
    pub fn stats(&self) -> SpecStats {
        SpecStats {
            nodes: self.graph().node_count(),
            edges: self.graph().edge_count(),
            forks: self.fork_count(),
            fork_edges: self
                .controls
                .iter()
                .filter(|c| c.kind == ControlKind::Fork)
                .map(|c| c.edge_count())
                .sum(),
            loops: self.loop_count(),
            loop_edges: self
                .controls
                .iter()
                .filter(|c| c.kind == ControlKind::Loop)
                .map(|c| c.edge_count())
                .sum(),
        }
    }

    /// The label pairs of the implicit loop back-edges, which runs may contain
    /// in addition to the specification edges.
    pub fn loop_back_labels(&self) -> HashSet<(Label, Label)> {
        self.loop_back.keys().cloned().collect()
    }

    /// Looks up the loop whose implicit back edge carries the given
    /// `(from, to)` label pair.
    pub fn loop_for_back_edge(&self, from: &Label, to: &Label) -> Option<usize> {
        self.loop_back.get(&(from.clone(), to.clone())).copied()
    }

    /// Maps a specification edge id to the spec-tree `Q` leaf representing it.
    pub fn leaf_for_edge(&self) -> HashMap<EdgeId, TreeId> {
        let mut map = HashMap::new();
        for leaf in self.tree.leaves(self.tree.root()) {
            if let Some(e) = self.tree.node(leaf).edge {
                map.insert(e, leaf);
            }
        }
        map
    }

    /// Maps a `(source-label, target-label)` pair to the specification edge id,
    /// when such an edge exists.  Because specification labels are unique and
    /// `G` is a simple multigraph built from compositions, at most one edge can
    /// connect a given ordered pair of labels in a specification.
    pub fn edge_by_labels(&self) -> HashMap<(Label, Label), EdgeId> {
        let mut map = HashMap::new();
        for (id, e) in self.graph().edges() {
            let key = (self.graph().label(e.src).clone(), self.graph().label(e.dst).clone());
            map.insert(key, id);
        }
        map
    }
}

/// Computes the terminals of a subgraph given by an edge set: the unique node
/// that only appears as a source within the set, and the unique node that only
/// appears as a target.
fn subgraph_terminals(
    graph: &LabeledDigraph,
    edges: &BTreeSet<EdgeId>,
) -> Result<(NodeId, NodeId)> {
    let mut appears_as_src: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut appears_as_dst: BTreeMap<NodeId, usize> = BTreeMap::new();
    for &e in edges {
        let edge = graph.edge(e);
        *appears_as_src.entry(edge.src).or_insert(0) += 1;
        *appears_as_dst.entry(edge.dst).or_insert(0) += 1;
    }
    let sources: Vec<NodeId> =
        appears_as_src.keys().filter(|n| !appears_as_dst.contains_key(n)).copied().collect();
    let sinks: Vec<NodeId> =
        appears_as_dst.keys().filter(|n| !appears_as_src.contains_key(n)).copied().collect();
    if sources.len() != 1 || sinks.len() != 1 {
        return Err(SpTreeError::ControlNotRepresentable {
            what: format!(
                "fork/loop subgraph must have a single entry and a single exit \
                 (found {} entries, {} exits)",
                sources.len(),
                sinks.len()
            ),
        });
    }
    Ok((sources[0], sinks[0]))
}

/// Algorithm 1, one subgraph at a time: finds the deepest tree node whose leaf
/// set contains the subgraph's edge set and inserts the `F`/`L` annotation.
/// Returns the id of the inserted annotation node.
fn insert_control_annotation(
    tree: &mut AnnotatedTree,
    rec: &ControlSubgraph,
    control_id: usize,
) -> Result<TreeId> {
    let target: BTreeSet<EdgeId> = rec.edges.clone();
    // Find the deepest node v with Leaf(T[v]) ⊇ target.
    let mut v = tree.root();
    'descend: loop {
        for &c in tree.children(v) {
            let leaves: BTreeSet<EdgeId> = tree.leaf_edges(c).into_iter().collect();
            if target.is_subset(&leaves) {
                v = c;
                continue 'descend;
            }
        }
        break;
    }
    let v_leaves: BTreeSet<EdgeId> = tree.leaf_edges(v).into_iter().collect();
    let node_ty = annotation_type(rec.kind);

    if v_leaves == target {
        // Case 1: the subtree rooted at v represents exactly the subgraph.
        match (rec.kind, tree.ty(v)) {
            (ControlKind::Fork, NodeType::Q | NodeType::S) => {}
            (ControlKind::Loop, NodeType::Q | NodeType::S | NodeType::P) => {}
            (kind, ty) => {
                return Err(SpTreeError::ControlNotRepresentable {
                    what: format!(
                        "{kind:?} subgraph between {} and {} maps to a {ty} subtree, which is not \
                         a {} subgraph",
                        rec.source_label,
                        rec.sink_label,
                        if rec.kind == ControlKind::Fork { "series" } else { "complete" }
                    ),
                });
            }
        }
        let mut ann = TreeNode::new(
            node_ty,
            tree.node(v).s_label.clone(),
            tree.node(v).t_label.clone(),
            tree.node(v).s_node,
            tree.node(v).t_node,
        );
        ann.control_id = Some(control_id);
        Ok(tree.insert_parent(v, ann))
    } else {
        // Case 2: the subgraph is a proper consecutive subsequence of the
        // children of an S node.
        if tree.ty(v) != NodeType::S {
            return Err(SpTreeError::ControlNotRepresentable {
                what: format!(
                    "{:?} subgraph between {} and {} is a proper subset of a {} subtree; only \
                     consecutive children of a series node can be annotated",
                    rec.kind,
                    rec.source_label,
                    rec.sink_label,
                    tree.ty(v)
                ),
            });
        }
        let children: Vec<TreeId> = tree.children(v).to_vec();
        let mut covered: Vec<bool> = Vec::with_capacity(children.len());
        for &c in &children {
            let leaves: BTreeSet<EdgeId> = tree.leaf_edges(c).into_iter().collect();
            if leaves.is_subset(&target) {
                covered.push(true);
            } else if leaves.is_disjoint(&target) {
                covered.push(false);
            } else {
                return Err(SpTreeError::ControlNotRepresentable {
                    what: format!(
                        "{:?} subgraph between {} and {} cuts across a child subtree",
                        rec.kind, rec.source_label, rec.sink_label
                    ),
                });
            }
        }
        let first = covered.iter().position(|&b| b);
        let last = covered.iter().rposition(|&b| b);
        let (first, last) = match (first, last) {
            (Some(f), Some(l)) => (f, l),
            _ => {
                return Err(SpTreeError::ControlNotRepresentable {
                    what: "fork/loop subgraph covers no child of the series node".to_string(),
                })
            }
        };
        if covered[first..=last].iter().any(|&b| !b) {
            return Err(SpTreeError::ControlNotRepresentable {
                what: format!(
                    "{:?} subgraph between {} and {} does not cover a consecutive range of the \
                     series node's children",
                    rec.kind, rec.source_label, rec.sink_label
                ),
            });
        }
        // Check the union matches exactly.
        let mut union: BTreeSet<EdgeId> = BTreeSet::new();
        for &c in &children[first..=last] {
            union.extend(tree.leaf_edges(c));
        }
        if union != target {
            return Err(SpTreeError::ControlNotRepresentable {
                what: format!(
                    "{:?} subgraph between {} and {} is not exactly a union of consecutive \
                     series children",
                    rec.kind, rec.source_label, rec.sink_label
                ),
            });
        }
        let first_child = children[first];
        let last_child = children[last];
        let group_node = TreeNode::new(
            NodeType::S,
            tree.node(first_child).s_label.clone(),
            tree.node(last_child).t_label.clone(),
            tree.node(first_child).s_node,
            tree.node(last_child).t_node,
        );
        let grouped = tree.group_children(v, first..last + 1, group_node);
        let mut ann = TreeNode::new(
            node_ty,
            tree.node(grouped).s_label.clone(),
            tree.node(grouped).t_label.clone(),
            tree.node(grouped).s_node,
            tree.node(grouped).t_node,
        );
        ann.control_id = Some(control_id);
        Ok(tree.insert_parent(grouped, ann))
    }
}

fn annotation_type(kind: ControlKind) -> NodeType {
    match kind {
        ControlKind::Fork => NodeType::F,
        ControlKind::Loop => NodeType::L,
    }
}

/// A convenience builder for specifications: add labeled edges, then declare
/// forks and loops by label paths or by terminal pairs.
#[derive(Debug, Clone, Default)]
pub struct SpecificationBuilder {
    name: String,
    graph: LabeledDigraph,
    by_label: HashMap<Label, NodeId>,
    controls: Vec<(ControlKind, ControlSelector)>,
}

/// How a fork/loop subgraph is described to the builder.
#[derive(Debug, Clone)]
enum ControlSelector {
    /// The edges along a node-label path `l0 -> l1 -> ... -> lk`.
    Path(Vec<Label>),
    /// Every edge lying on a path between the two labeled nodes.
    Between(Label, Label),
    /// Explicit edge list given as `(from-label, to-label)` pairs.
    Edges(Vec<(Label, Label)>),
}

impl SpecificationBuilder {
    /// Creates a builder for a specification with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SpecificationBuilder { name: name.into(), ..Default::default() }
    }

    fn node(&mut self, label: &str) -> NodeId {
        let key = Label::new(label);
        if let Some(&id) = self.by_label.get(&key) {
            id
        } else {
            let id = self.graph.add_node(key.clone());
            self.by_label.insert(key, id);
            id
        }
    }

    /// Adds an edge between the two labeled modules (creating them on first
    /// use) and returns the builder for chaining.
    pub fn edge(&mut self, from: &str, to: &str) -> &mut Self {
        let u = self.node(from);
        let v = self.node(to);
        self.graph.add_edge(u, v);
        self
    }

    /// Adds every consecutive pair of `labels` as an edge (a path).
    pub fn path(&mut self, labels: &[&str]) -> &mut Self {
        for w in labels.windows(2) {
            self.edge(w[0], w[1]);
        }
        self
    }

    /// Declares a fork over the series subgraph following the node-label path.
    pub fn fork_path(&mut self, labels: &[&str]) -> &mut Self {
        self.controls.push((
            ControlKind::Fork,
            ControlSelector::Path(labels.iter().map(Label::new).collect()),
        ));
        self
    }

    /// Declares a fork over every edge lying between the two labeled nodes.
    pub fn fork_between(&mut self, from: &str, to: &str) -> &mut Self {
        self.controls
            .push((ControlKind::Fork, ControlSelector::Between(Label::new(from), Label::new(to))));
        self
    }

    /// Declares a fork over an explicit list of edges.
    pub fn fork_edges(&mut self, edges: &[(&str, &str)]) -> &mut Self {
        self.controls.push((
            ControlKind::Fork,
            ControlSelector::Edges(
                edges.iter().map(|(a, b)| (Label::new(a), Label::new(b))).collect(),
            ),
        ));
        self
    }

    /// Declares a loop over the series subgraph following the node-label path.
    pub fn loop_path(&mut self, labels: &[&str]) -> &mut Self {
        self.controls.push((
            ControlKind::Loop,
            ControlSelector::Path(labels.iter().map(Label::new).collect()),
        ));
        self
    }

    /// Declares a loop over every edge lying between the two labeled nodes.
    pub fn loop_between(&mut self, from: &str, to: &str) -> &mut Self {
        self.controls
            .push((ControlKind::Loop, ControlSelector::Between(Label::new(from), Label::new(to))));
        self
    }

    /// Declares a loop over an explicit list of edges.
    pub fn loop_edges(&mut self, edges: &[(&str, &str)]) -> &mut Self {
        self.controls.push((
            ControlKind::Loop,
            ControlSelector::Edges(
                edges.iter().map(|(a, b)| (Label::new(a), Label::new(b))).collect(),
            ),
        ));
        self
    }

    /// Builds the [`Specification`].
    pub fn build(&self) -> Result<Specification> {
        let sp = SpGraph::from_flow_network(self.graph.clone())?;
        let mut edge_lookup: HashMap<(NodeId, NodeId), Vec<EdgeId>> = HashMap::new();
        for (id, e) in self.graph.edges() {
            edge_lookup.entry((e.src, e.dst)).or_default().push(id);
        }
        let resolve_node = |label: &Label| -> Result<NodeId> {
            self.by_label
                .get(label)
                .copied()
                .ok_or_else(|| SpTreeError::Graph(GraphError::UnknownLabel(label.clone())))
        };
        let mut controls = Vec::with_capacity(self.controls.len());
        for (kind, sel) in &self.controls {
            let edges: BTreeSet<EdgeId> = match sel {
                ControlSelector::Path(labels) => {
                    let mut set = BTreeSet::new();
                    for w in labels.windows(2) {
                        let u = resolve_node(&w[0])?;
                        let v = resolve_node(&w[1])?;
                        let candidates = edge_lookup.get(&(u, v)).ok_or_else(|| {
                            SpTreeError::ControlNotRepresentable {
                                what: format!("no edge {} -> {} in the specification", w[0], w[1]),
                            }
                        })?;
                        set.insert(candidates[0]);
                    }
                    set
                }
                ControlSelector::Between(from, to) => {
                    let u = resolve_node(from)?;
                    let v = resolve_node(to)?;
                    edges_between(&self.graph, u, v)
                }
                ControlSelector::Edges(pairs) => {
                    let mut set = BTreeSet::new();
                    for (a, b) in pairs {
                        let u = resolve_node(a)?;
                        let v = resolve_node(b)?;
                        let candidates = edge_lookup.get(&(u, v)).ok_or_else(|| {
                            SpTreeError::ControlNotRepresentable {
                                what: format!("no edge {a} -> {b} in the specification"),
                            }
                        })?;
                        set.extend(candidates.iter().copied());
                    }
                    set
                }
            };
            controls.push((*kind, edges));
        }
        Specification::new(self.name.clone(), sp, controls)
    }
}

/// Every edge lying on some path from `s` to `t`.
fn edges_between(graph: &LabeledDigraph, s: NodeId, t: NodeId) -> BTreeSet<EdgeId> {
    let from_s = graph.reachable_from(s);
    let to_t = graph.reaching(t);
    graph
        .edges()
        .filter(|(_, e)| {
            from_s[e.src.index()]
                && to_t[e.src.index()]
                && from_s[e.dst.index()]
                && to_t[e.dst.index()]
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2(a) specification: forks over (2,3,6), (2,4,6), (2,5,6) and
    /// the whole graph; loop over the subgraph between 2 and 6.
    pub fn fig2_specification() -> Specification {
        let mut b = SpecificationBuilder::new("fig2");
        b.edge("1", "2")
            .path(&["2", "3", "6"])
            .path(&["2", "4", "6"])
            .path(&["2", "5", "6"])
            .edge("6", "7")
            .fork_path(&["2", "3", "6"])
            .fork_path(&["2", "4", "6"])
            .fork_path(&["2", "5", "6"])
            .fork_between("1", "7")
            .loop_between("2", "6");
        b.build().unwrap()
    }

    #[test]
    fn fig2_spec_builds_and_has_expected_stats() {
        let spec = fig2_specification();
        let stats = spec.stats();
        assert_eq!(stats.nodes, 7);
        assert_eq!(stats.edges, 8);
        assert_eq!(stats.forks, 4);
        assert_eq!(stats.loops, 1);
        // Forks cover 2 + 2 + 2 + 8 = 14 edges; the loop covers 6 edges.
        assert_eq!(stats.fork_edges, 14);
        assert_eq!(stats.loop_edges, 6);
    }

    #[test]
    fn fig2_annotated_tree_matches_fig6b() {
        // Fig. 6(b): F( S( Q(1,2), L( F(S(Q..)), ... actually the loop wraps the
        // parallel section; here we check the key structural facts: the root is
        // an F node (whole-graph fork), each branch S(Q,Q) has an F parent, and
        // an L node wraps the parallel section between 2 and 6.
        let spec = fig2_specification();
        let tree = spec.tree();
        assert_eq!(tree.ty(tree.root()), NodeType::F);
        assert!(tree.validate_spec_tree().is_ok());
        // Count node types.
        let mut counts: HashMap<NodeType, usize> = HashMap::new();
        for id in tree.postorder(tree.root()) {
            *counts.entry(tree.ty(id)).or_insert(0) += 1;
        }
        assert_eq!(counts[&NodeType::Q], 8);
        assert_eq!(counts[&NodeType::F], 4);
        assert_eq!(counts[&NodeType::L], 1);
        assert_eq!(counts[&NodeType::P], 1);
        // 1 outer S + 3 branch S nodes.
        assert_eq!(counts[&NodeType::S], 4);
    }

    #[test]
    fn loop_back_edge_lookup() {
        let spec = fig2_specification();
        assert!(spec.loop_for_back_edge(&Label::new("6"), &Label::new("2")).is_some());
        assert!(spec.loop_for_back_edge(&Label::new("7"), &Label::new("1")).is_none());
        assert_eq!(spec.loop_back_labels().len(), 1);
    }

    #[test]
    fn crossing_controls_rejected() {
        let mut b = SpecificationBuilder::new("bad");
        b.path(&["a", "b", "c", "d"]);
        b.fork_path(&["a", "b", "c"]);
        b.fork_path(&["b", "c", "d"]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, SpTreeError::NotLaminar { .. }));
    }

    #[test]
    fn duplicate_controls_rejected() {
        let mut b = SpecificationBuilder::new("dup");
        b.path(&["a", "b", "c"]);
        b.fork_path(&["a", "b", "c"]);
        b.loop_between("a", "c");
        let err = b.build().unwrap_err();
        assert!(matches!(err, SpTreeError::AmbiguousControl { .. }));
    }

    #[test]
    fn fork_over_parallel_subgraph_rejected() {
        // The subgraph between 1 and 3 is a parallel subgraph (two branches);
        // forks must be over series subgraphs.
        let mut b = SpecificationBuilder::new("badfork");
        b.edge("1", "2").edge("2", "3").edge("1", "3");
        b.fork_between("1", "3");
        let err = b.build().unwrap_err();
        assert!(matches!(err, SpTreeError::ControlNotRepresentable { .. }));
    }

    #[test]
    fn loop_over_parallel_subgraph_accepted() {
        let mut b = SpecificationBuilder::new("okloop");
        b.edge("0", "1").edge("1", "2").edge("2", "3").edge("1", "3").edge("3", "4");
        b.loop_between("1", "3");
        let spec = b.build().unwrap();
        assert_eq!(spec.loop_count(), 1);
        let tree = spec.tree();
        // The L node wraps the P node representing the parallel section.
        let l_node = spec.control_tree_node(0);
        assert_eq!(tree.ty(l_node), NodeType::L);
        assert_eq!(tree.ty(tree.children(l_node)[0]), NodeType::P);
    }

    #[test]
    fn fork_over_consecutive_series_children_inserts_grouping_s_node() {
        // Chain a->b->c->d->e with a fork over the middle b->c->d.
        let mut b = SpecificationBuilder::new("mid");
        b.path(&["a", "b", "c", "d", "e"]);
        b.fork_path(&["b", "c", "d"]);
        let spec = b.build().unwrap();
        let tree = spec.tree();
        let root = tree.root();
        assert_eq!(tree.ty(root), NodeType::S);
        // Root children: Q(a,b), F, Q(d,e).
        assert_eq!(tree.children(root).len(), 3);
        let f = tree.children(root)[1];
        assert_eq!(tree.ty(f), NodeType::F);
        let grouped = tree.children(f)[0];
        assert_eq!(tree.ty(grouped), NodeType::S);
        assert_eq!(tree.leaf_count(grouped), 2);
        assert!(tree.validate_spec_tree().is_ok());
    }

    #[test]
    fn nested_controls_nest_in_the_tree() {
        // Loop over b..d containing a fork over b->c.
        let mut b = SpecificationBuilder::new("nested");
        b.path(&["a", "b", "c", "d", "e"]);
        b.loop_between("b", "d");
        b.fork_path(&["b", "c"]);
        let spec = b.build().unwrap();
        let tree = spec.tree();
        let l_node = spec.control_tree_node(0);
        let f_node = spec.control_tree_node(1);
        assert_eq!(tree.ty(l_node), NodeType::L);
        assert_eq!(tree.ty(f_node), NodeType::F);
        // The fork must be a descendant of the loop.
        let mut cur = Some(f_node);
        let mut found = false;
        while let Some(c) = cur {
            if c == l_node {
                found = true;
                break;
            }
            cur = tree.parent(c);
        }
        assert!(found, "fork annotation should be nested inside the loop annotation");
    }

    #[test]
    fn stats_of_simple_spec_without_controls() {
        let mut b = SpecificationBuilder::new("plain");
        b.path(&["x", "y", "z"]);
        let spec = b.build().unwrap();
        let stats = spec.stats();
        assert_eq!(stats.forks + stats.loops, 0);
        assert_eq!(stats.edges, 2);
        assert_eq!(spec.tree().ty(spec.tree().root()), NodeType::S);
    }

    #[test]
    fn duplicate_labels_rejected() {
        // Two different nodes labelled "x" cannot form a specification; the
        // builder deduplicates by label so build an SpGraph directly.
        let mut g = LabeledDigraph::new();
        let a = g.add_node("x");
        let b = g.add_node("x");
        let c = g.add_node("y");
        g.add_edge(a, b);
        g.add_edge(b, c);
        let sp = SpGraph::from_flow_network(g).unwrap();
        let err = Specification::new("dup-labels", sp, vec![]).unwrap_err();
        assert!(matches!(err, SpTreeError::Graph(GraphError::DuplicateSpecLabel(_))));
    }

    #[test]
    fn edge_by_labels_lookup() {
        let spec = fig2_specification();
        let map = spec.edge_by_labels();
        assert!(map.contains_key(&(Label::new("1"), Label::new("2"))));
        assert!(map.contains_key(&(Label::new("2"), Label::new("5"))));
        assert_eq!(map.len(), 8);
    }
}
