//! Criterion bench for Figure 14: fork-heavy vs loop-heavy runs of the same
//! annotated specification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wfdiff_core::{UnitCost, WorkflowDiff};
use wfdiff_workloads::generator::{random_specification, SpecGenConfig};
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_fork_loop");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(0xF14);
    let spec = random_specification(
        "bench-fig14",
        &SpecGenConfig { target_edges: 100, series_parallel_ratio: 0.5, forks: 5, loops: 5 },
        &mut rng,
    );
    let engine = WorkflowDiff::new(&spec, &UnitCost);
    let fork_cfg =
        |p: f64| RunGenConfig { prob_p: 1.0, max_f: 8, prob_f: p, max_l: 1, prob_l: 0.0 };
    let loop_cfg =
        |p: f64| RunGenConfig { prob_p: 1.0, max_f: 1, prob_f: 0.0, max_l: 8, prob_l: p };
    for &prob in &[0.3f64, 0.7] {
        let fork_run_a = generate_run(&spec, &fork_cfg(prob), &mut rng);
        let fork_run_b = generate_run(&spec, &fork_cfg(prob), &mut rng);
        let loop_run_a = generate_run(&spec, &loop_cfg(prob), &mut rng);
        let loop_run_b = generate_run(&spec, &loop_cfg(prob), &mut rng);
        for (curve, a, b) in [
            ("fork_vs_fork", &fork_run_a, &fork_run_b),
            ("fork_vs_loop", &fork_run_a, &loop_run_b),
            ("loop_vs_loop", &loop_run_a, &loop_run_b),
        ] {
            group.bench_with_input(
                BenchmarkId::new(curve, format!("p{prob}")),
                &(a, b),
                |bencher, (a, b)| bencher.iter(|| engine.distance(a, b).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
