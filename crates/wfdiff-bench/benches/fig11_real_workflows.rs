//! Criterion bench for Figure 11: differencing runs of the real workflows at
//! increasing sizes (unit cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdiff_core::{UnitCost, WorkflowDiff};
use wfdiff_workloads::real::real_workflows;
use wfdiff_workloads::runs::generate_run_with_target_edges;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_real_workflows");
    group.sample_size(10);
    for wf in real_workflows() {
        let spec = wf.specification();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        for &total in &[200usize, 600, 1000] {
            let r1 = generate_run_with_target_edges(&spec, total / 2, 0xB16);
            let r2 = generate_run_with_target_edges(&spec, total / 2, 0xB17);
            let actual = r1.edge_count() + r2.edge_count();
            group.bench_with_input(
                BenchmarkId::new(wf.name, format!("target{total}_actual{actual}")),
                &(&r1, &r2),
                |b, (r1, r2)| b.iter(|| engine.distance(r1, r2).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
