//! Micro-benchmarks of the individual components: run replay (Algorithm 2/5),
//! subtree deletion (Algorithm 3) and the two matching substrates (Hungarian
//! vs greedy ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wfdiff_core::{DeletionTables, UnitCost};
use wfdiff_matching::{assignment_with_unmatched, greedy_assignment_with_unmatched};
use wfdiff_sptree::Run;
use wfdiff_workloads::real::pa;
use wfdiff_workloads::runs::generate_run_with_target_edges;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_components");
    group.sample_size(10);

    // Algorithm 2/5 replay + canonical decomposition on a mid-sized run.
    let spec = pa().specification();
    let run = generate_run_with_target_edges(&spec, 400, 0xABC);
    group.bench_function("replay_run_400_edges", |b| {
        b.iter(|| Run::from_graph(&spec, run.graph().clone()).unwrap().edge_count())
    });

    // Algorithm 3 on the same run.
    group.bench_function("deletion_tables_400_edges", |b| {
        b.iter(|| DeletionTables::compute(run.tree(), &UnitCost).x(run.tree().root()))
    });

    // Hungarian vs greedy matching ablation.
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEF);
    for &n in &[16usize, 48] {
        let pair: Vec<Vec<Option<f64>>> =
            (0..n).map(|_| (0..n).map(|_| Some(rng.gen_range(0.0..10.0))).collect()).collect();
        let del: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let ins: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        group.bench_with_input(BenchmarkId::new("hungarian", n), &n, |b, _| {
            b.iter(|| assignment_with_unmatched(&pair, &del, &ins).expect("finite costs").cost)
        });
        group.bench_with_input(BenchmarkId::new("greedy_ablation", n), &n, |b, _| {
            b.iter(|| {
                greedy_assignment_with_unmatched(&pair, &del, &ins).expect("finite costs").cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
