//! Criterion bench for the batch diff engine: all-pairs differencing through
//! the `DiffService` — cold cache, warm cache, single- and multi-threaded —
//! against the serial unmemoised baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use wfdiff_bench::batch::{generate_workload, BatchConfig};
use wfdiff_core::{UnitCost, WorkflowDiff};
use wfdiff_pdiffview::{DiffService, WorkflowStore};

fn service_for(config: &BatchConfig, threads: usize) -> (DiffService, String) {
    let (spec, runs) = generate_workload(config);
    let spec_name = spec.name().to_string();
    let store = Arc::new(WorkflowStore::new());
    store.insert_spec(spec).expect("fresh store");
    for (i, run) in runs.into_iter().enumerate() {
        let name = format!("run{i:03}");
        store.insert_run(&name, run).expect("spec stored");
    }
    (DiffService::builder(store).threads(threads).build(), spec_name)
}

fn bench_batch_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_diff");
    group.sample_size(10);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for config in [BatchConfig::fig12(60, 12), BatchConfig::fig14(40, 10)] {
        // Serial unmemoised baseline.
        let (spec, runs) = generate_workload(&config);
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        group.bench_function(BenchmarkId::new("serial_baseline", &config.label), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for i in 0..runs.len() {
                    for j in i + 1..runs.len() {
                        total += engine.distance(&runs[i], &runs[j]).expect("valid runs");
                    }
                }
                total
            })
        });
        // Cold cache: a fresh service per iteration.
        group.bench_function(BenchmarkId::new("service_cold_1t", &config.label), |b| {
            b.iter(|| {
                let (service, spec_name) = service_for(&config, 1);
                service.diff_all_pairs(&spec_name).expect("all pairs")
            })
        });
        // Warm cache, one thread and all threads.
        let (warm1, warm1_spec) = service_for(&config, 1);
        warm1.diff_all_pairs(&warm1_spec).expect("warm-up");
        group.bench_function(BenchmarkId::new("service_warm_1t", &config.label), |b| {
            b.iter(|| warm1.diff_all_pairs(&warm1_spec).expect("all pairs"))
        });
        let (warm_n, warm_n_spec) = service_for(&config, threads);
        warm_n.diff_all_pairs(&warm_n_spec).expect("warm-up");
        group.bench_function(
            BenchmarkId::new(format!("service_warm_{threads}t"), &config.label),
            |b| b.iter(|| warm_n.diff_all_pairs(&warm_n_spec).expect("all pairs")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_diff);
criterion_main!(benches);
