//! Criterion bench for Figure 16: producing minimum-cost edit scripts of the
//! Figure 17(b) workload under different cost models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wfdiff_core::script::diff_with_script;
use wfdiff_core::{CostModel, LengthCost, PowerCost, UnitCost, WorkflowDiff};
use wfdiff_workloads::figures::fig17_specification;
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

fn bench_fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_cost_models");
    group.sample_size(10);
    let spec = fig17_specification();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF16);
    let cfg = RunGenConfig { prob_p: 0.5, max_f: 5, prob_f: 1.0, max_l: 1, prob_l: 1.0 };
    let r1 = generate_run(&spec, &cfg, &mut rng);
    let r2 = generate_run(&spec, &cfg, &mut rng);
    let models: Vec<(&str, Box<dyn CostModel>)> = vec![
        ("unit", Box::new(UnitCost)),
        ("power05", Box::new(PowerCost::new(0.5))),
        ("length", Box::new(LengthCost)),
    ];
    for (name, model) in &models {
        let engine = WorkflowDiff::new(&spec, model.as_ref());
        group.bench_with_input(BenchmarkId::new("script", name), &(&r1, &r2), |b, (r1, r2)| {
            b.iter(|| diff_with_script(&engine, r1, r2).unwrap().1.total_cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
