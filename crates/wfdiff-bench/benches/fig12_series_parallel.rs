//! Criterion bench for Figure 12: series-heavy vs parallel-heavy
//! specifications of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wfdiff_core::{UnitCost, WorkflowDiff};
use wfdiff_workloads::generator::{random_specification, SpecGenConfig};
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_series_parallel");
    group.sample_size(10);
    for &(label, ratio) in &[("series_r3", 3.0), ("balanced_r1", 1.0), ("parallel_r03", 1.0 / 3.0)]
    {
        for &edges in &[100usize, 300, 500] {
            let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE ^ edges as u64);
            let spec = random_specification(
                &format!("bench-{label}-{edges}"),
                &SpecGenConfig {
                    target_edges: edges,
                    series_parallel_ratio: ratio,
                    forks: 0,
                    loops: 0,
                },
                &mut rng,
            );
            let cfg = RunGenConfig { prob_p: 0.95, ..Default::default() };
            let r1 = generate_run(&spec, &cfg, &mut rng);
            let r2 = generate_run(&spec, &cfg, &mut rng);
            let engine = WorkflowDiff::new(&spec, &UnitCost);
            group.bench_with_input(BenchmarkId::new(label, edges), &(&r1, &r2), |b, (r1, r2)| {
                b.iter(|| engine.distance(r1, r2).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
