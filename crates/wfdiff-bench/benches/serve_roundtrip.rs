//! Criterion bench for the networked diff server: single-client round-trip
//! latency of the hot endpoints (`/healthz`, cache-warm `/diff`) over a real
//! loopback socket, isolating the HTTP + JSON + dispatch overhead the serve
//! layer adds on top of the in-process `DiffService` call.

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use wfdiff_bench::batch::{generate_workload, BatchConfig};
use wfdiff_pdiffview::serve::{ServeConfig, Server};
use wfdiff_pdiffview::{DiffService, WorkflowStore};

fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, path: &str) -> String {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("write request");
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    assert!(status.contains("200"), "{status}");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf-8 body")
}

fn bench_serve_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_roundtrip");
    group.sample_size(20);

    let config = BatchConfig::fig14(40, 10);
    let (spec, runs) = generate_workload(&config);
    let spec_name = spec.name().to_string();
    let store = Arc::new(WorkflowStore::new());
    store.insert_spec(spec).expect("fresh store");
    for (i, run) in runs.into_iter().enumerate() {
        store.insert_run(&format!("run{i:03}"), run).expect("spec stored");
    }
    let service = Arc::new(DiffService::builder(store).threads(2).build());
    // In-process baseline for comparison, and cache warm-up in one.
    service.diff_all_pairs(&spec_name).expect("warm-up");
    let handle = Server::bind(service.clone(), ServeConfig { threads: 2, ..Default::default() })
        .expect("bind")
        .start()
        .expect("start");

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    group.bench_function("inprocess_warm_diff", |b| {
        b.iter(|| service.diff(&spec_name, "run000", "run001").expect("diff"))
    });
    group.bench_function("http_healthz", |b| {
        b.iter(|| request(&mut stream, &mut reader, "/healthz"))
    });
    let diff_path = format!("/diff?spec={}&a=run000&b=run001", spec_name.replace(' ', "%20"));
    group.bench_function("http_warm_diff", |b| {
        b.iter(|| request(&mut stream, &mut reader, &diff_path))
    });

    drop((stream, reader));
    handle.shutdown();
    group.finish();
}

criterion_group!(benches, bench_serve_roundtrip);
criterion_main!(benches);
