//! Figures 14 and 15: forks vs loops — differencing time (Fig. 14) and edit
//! distance (Fig. 15) as the fork/loop replication probability grows.
//!
//! The paper fixes a 100-edge specification with series/parallel ratio 0.5,
//! annotated with 5 forks and 5 loops, sets `probP = 1`,
//! `maxF = maxL = 20`, and sweeps the fork/loop probability from 0 to 1,
//! comparing three combinations of runs: fork-heavy vs fork-heavy, fork-heavy
//! vs loop-heavy, and loop-heavy vs loop-heavy.

use crate::time_ms;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wfdiff_core::{UnitCost, WorkflowDiff};
use wfdiff_sptree::Specification;
use wfdiff_workloads::generator::{random_specification, SpecGenConfig};
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

/// Which kind of run each side of the comparison uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunFlavor {
    /// Many fork copies, single loop iterations.
    ForkHeavy,
    /// Many loop iterations, single fork copies.
    LoopHeavy,
}

/// The three curves of Figures 14/15.
pub const CURVES: [(&str, RunFlavor, RunFlavor); 3] = [
    ("fork-vs-fork", RunFlavor::ForkHeavy, RunFlavor::ForkHeavy),
    ("fork-vs-loop", RunFlavor::ForkHeavy, RunFlavor::LoopHeavy),
    ("loop-vs-loop", RunFlavor::LoopHeavy, RunFlavor::LoopHeavy),
];

/// Configuration of the Figure 14/15 sweep.
#[derive(Debug, Clone)]
pub struct Fig14Config {
    /// Specification size in edges (the paper uses 100).
    pub spec_edges: usize,
    /// Series/parallel ratio of the specification (the paper uses 0.5).
    pub ratio: f64,
    /// Number of fork and loop annotations (the paper uses 5 + 5).
    pub forks: usize,
    /// Number of loop annotations.
    pub loops: usize,
    /// Maximum replication (the paper uses `maxF = maxL = 20`).
    pub max_rep: usize,
    /// The swept fork/loop probabilities.
    pub probabilities: Vec<f64>,
    /// Sample pairs per point (the paper averages 200).
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig14Config {
    fn default() -> Self {
        Fig14Config {
            spec_edges: 100,
            ratio: 0.5,
            forks: 5,
            loops: 5,
            max_rep: 8,
            probabilities: (0..=10).map(|i| i as f64 / 10.0).collect(),
            samples: 2,
            seed: 0xF1614,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig14Point {
    /// Curve name (`fork-vs-fork`, `fork-vs-loop`, `loop-vs-loop`).
    pub curve: &'static str,
    /// The fork/loop probability on the x axis.
    pub probability: f64,
    /// Average differencing time (milliseconds) — Figure 14.
    pub avg_time_ms: f64,
    /// Average edit distance (unit cost) — Figure 15.
    pub avg_distance: f64,
    /// Average total edges of the two runs (context).
    pub avg_total_edges: f64,
}

fn run_config(flavor: RunFlavor, prob: f64, max_rep: usize) -> RunGenConfig {
    match flavor {
        RunFlavor::ForkHeavy => {
            RunGenConfig { prob_p: 1.0, max_f: max_rep, prob_f: prob, max_l: 1, prob_l: 0.0 }
        }
        RunFlavor::LoopHeavy => {
            RunGenConfig { prob_p: 1.0, max_f: 1, prob_f: 0.0, max_l: max_rep, prob_l: prob }
        }
    }
}

/// Runs the Figure 14/15 experiment.
pub fn run(config: &Fig14Config) -> Vec<Fig14Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let spec: Specification = random_specification(
        "fig14",
        &SpecGenConfig {
            target_edges: config.spec_edges,
            series_parallel_ratio: config.ratio,
            forks: config.forks,
            loops: config.loops,
        },
        &mut rng,
    );
    let engine = WorkflowDiff::new(&spec, &UnitCost);
    let mut out = Vec::new();
    for (curve, left, right) in CURVES {
        for &prob in &config.probabilities {
            let mut time_acc = 0.0;
            let mut dist_acc = 0.0;
            let mut edges_acc = 0.0;
            for s in 0..config.samples {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    config.seed ^ ((s as u64) << 8) ^ (prob.to_bits() >> 5) ^ curve.len() as u64,
                );
                let r1 = generate_run(&spec, &run_config(left, prob, config.max_rep), &mut rng);
                let r2 = generate_run(&spec, &run_config(right, prob, config.max_rep), &mut rng);
                edges_acc += (r1.edge_count() + r2.edge_count()) as f64;
                let (d, ms) = time_ms(|| engine.distance(&r1, &r2).expect("valid runs"));
                time_acc += ms;
                dist_acc += d;
            }
            let n = config.samples as f64;
            out.push(Fig14Point {
                curve,
                probability: prob,
                avg_time_ms: time_acc / n,
                avg_distance: dist_acc / n,
                avg_total_edges: edges_acc / n,
            });
        }
    }
    out
}

/// Renders both figures' series.
pub fn render(points: &[Fig14Point]) -> String {
    let mut out = String::new();
    out.push_str("Figures 14/15 — forks vs loops\n");
    out.push_str("curve          prob  avg_time_ms (Fig.14)  avg_distance (Fig.15)  avg_edges\n");
    for p in points {
        out.push_str(&format!(
            "{:<14} {:>4.1} {:>20.3} {:>21.1} {:>10.1}\n",
            p.curve, p.probability, p.avg_time_ms, p.avg_distance, p.avg_total_edges
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_three_curves() {
        let config = Fig14Config {
            spec_edges: 40,
            max_rep: 3,
            probabilities: vec![0.0, 0.5, 1.0],
            samples: 1,
            ..Default::default()
        };
        let points = run(&config);
        assert_eq!(points.len(), 9);
        for curve in ["fork-vs-fork", "fork-vs-loop", "loop-vs-loop"] {
            assert!(points.iter().any(|p| p.curve == curve));
        }
        // Higher probability means more replication and therefore larger runs.
        let low: f64 =
            points.iter().filter(|p| p.probability == 0.0).map(|p| p.avg_total_edges).sum();
        let high: f64 =
            points.iter().filter(|p| p.probability == 1.0).map(|p| p.avg_total_edges).sum();
        assert!(high > low);
        assert!(render(&points).contains("fork-vs-loop"));
    }
}
