//! Figure 16: the influence of the cost model on the produced edit scripts.
//!
//! The specification of Figure 17(b) — ten parallel paths of length `i²`
//! between two nodes, wrapped in a fork — is executed twice with `maxF = 5`,
//! `probF = 1`, `probP = 0.5`.  For each exponent `ε ∈ [0, 1]` the
//! minimum-cost edit script under the power cost `γ(l) = l^ε` is produced and
//! then re-evaluated under the unit (`ε = 0`) and length (`ε = 1`) cost
//! models; the percent error of that re-evaluated cost against the true
//! minimum under the respective model is reported (average and worst case
//! over the sample pairs).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wfdiff_core::script::diff_with_script;
use wfdiff_core::{CostModel, EditScript, LengthCost, PowerCost, UnitCost, WorkflowDiff};
use wfdiff_sptree::Run;
use wfdiff_workloads::figures::fig17_specification_with_paths;
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

/// Configuration of the Figure 16 experiment.
#[derive(Debug, Clone)]
pub struct Fig16Config {
    /// Number of parallel paths in the Figure 17(b) fan (the paper uses 10).
    pub paths: usize,
    /// The ε values to sweep.
    pub epsilons: Vec<f64>,
    /// Number of random run pairs (the paper uses 100).
    pub samples: usize,
    /// Maximum fork copies (the paper uses 5 with `probF = 1`).
    pub max_f: usize,
    /// Probability of each parallel path being taken (the paper uses 0.5).
    pub prob_p: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig16Config {
    fn default() -> Self {
        Fig16Config {
            paths: 10,
            epsilons: (0..=10).map(|i| i as f64 / 10.0).collect(),
            samples: 20,
            max_f: 5,
            prob_p: 0.5,
            seed: 0xF1616,
        }
    }
}

/// One measured point of Figure 16.
#[derive(Debug, Clone)]
pub struct Fig16Point {
    /// The exponent ε of the cost model that produced the script.
    pub epsilon: f64,
    /// Average percent error of that script under the unit cost model.
    pub avg_error_unit: f64,
    /// Worst-case percent error under the unit cost model.
    pub worst_error_unit: f64,
    /// Average percent error under the length cost model.
    pub avg_error_length: f64,
    /// Worst-case percent error under the length cost model.
    pub worst_error_length: f64,
}

/// Evaluates the cost of a script under an arbitrary cost model.
pub fn script_cost_under(script: &EditScript, cost: &dyn CostModel) -> f64 {
    script.ops.iter().map(|op| cost.op_cost(op.length, op.start_label(), op.end_label())).sum()
}

/// Runs the Figure 16 experiment.
pub fn run(config: &Fig16Config) -> Vec<Fig16Point> {
    let spec = fig17_specification_with_paths(config.paths);
    // Pre-generate the sample run pairs so every ε sees the same pairs.
    let mut pairs: Vec<(Run, Run)> = Vec::with_capacity(config.samples);
    for s in 0..config.samples {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ (s as u64));
        let cfg = RunGenConfig {
            prob_p: config.prob_p,
            max_f: config.max_f,
            prob_f: 1.0,
            max_l: 1,
            prob_l: 1.0,
        };
        let r1 = generate_run(&spec, &cfg, &mut rng);
        let r2 = generate_run(&spec, &cfg, &mut rng);
        pairs.push((r1, r2));
    }
    // The true minima under the two reference models.
    let unit_engine = WorkflowDiff::new(&spec, &UnitCost);
    let length_engine = WorkflowDiff::new(&spec, &LengthCost);
    let reference: Vec<(f64, f64)> = pairs
        .iter()
        .map(|(r1, r2)| {
            (
                unit_engine.distance(r1, r2).expect("valid runs"),
                length_engine.distance(r1, r2).expect("valid runs"),
            )
        })
        .collect();

    let mut out = Vec::new();
    for &eps in &config.epsilons {
        let cost = PowerCost::new(eps);
        let engine = WorkflowDiff::new(&spec, &cost);
        let mut unit_errors = Vec::with_capacity(pairs.len());
        let mut length_errors = Vec::with_capacity(pairs.len());
        for ((r1, r2), &(unit_opt, length_opt)) in pairs.iter().zip(reference.iter()) {
            let (_, script) = diff_with_script(&engine, r1, r2).expect("valid runs");
            let unit_cost = script_cost_under(&script, &UnitCost);
            let length_cost = script_cost_under(&script, &LengthCost);
            unit_errors.push(percent_error(unit_cost, unit_opt));
            length_errors.push(percent_error(length_cost, length_opt));
        }
        out.push(Fig16Point {
            epsilon: eps,
            avg_error_unit: mean(&unit_errors),
            worst_error_unit: max(&unit_errors),
            avg_error_length: mean(&length_errors),
            worst_error_length: max(&length_errors),
        });
    }
    out
}

fn percent_error(value: f64, optimum: f64) -> f64 {
    if optimum == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (value - optimum) / optimum
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Renders the four series of Figure 16.
pub fn render(points: &[Fig16Point]) -> String {
    let mut out = String::new();
    out.push_str("Figure 16 — percent error of scripts optimised under γ(l)=l^ε\n");
    out.push_str("eps   avg_err_unit  worst_err_unit  avg_err_length  worst_err_length\n");
    for p in points {
        out.push_str(&format!(
            "{:<5.1} {:>12.1} {:>15.1} {:>15.1} {:>17.1}\n",
            p.epsilon,
            p.avg_error_unit,
            p.worst_error_unit,
            p.avg_error_length,
            p.worst_error_length
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_vanish_at_the_matching_extremes() {
        let config = Fig16Config {
            paths: 5,
            epsilons: vec![0.0, 0.5, 1.0],
            samples: 4,
            max_f: 3,
            prob_p: 0.5,
            seed: 3,
        };
        let points = run(&config);
        assert_eq!(points.len(), 3);
        // A script optimised under ε = 0 is optimal for the unit cost model.
        let at_zero = &points[0];
        assert!(at_zero.avg_error_unit.abs() < 1e-9);
        // A script optimised under ε = 1 is optimal for the length cost model.
        let at_one = &points[2];
        assert!(at_one.avg_error_length.abs() < 1e-9);
        // Errors are never negative (the re-evaluated script can never beat the
        // optimum of the reference model).
        for p in &points {
            assert!(p.avg_error_unit >= -1e-9);
            assert!(p.avg_error_length >= -1e-9);
            assert!(p.worst_error_unit + 1e-9 >= p.avg_error_unit);
        }
        assert!(render(&points).contains("Figure 16"));
    }
}
