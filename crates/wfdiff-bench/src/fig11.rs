//! Figure 11: differencing time on the six real workflows as the total size
//! of the two runs grows from 200 to 2000 edges (unit cost model).

use crate::time_ms;
use wfdiff_core::{UnitCost, WorkflowDiff};
use wfdiff_workloads::real::real_workflows;
use wfdiff_workloads::runs::generate_run_with_target_edges;

/// Configuration of the Figure 11 sweep.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// Total-edge targets for the pair of runs (the paper sweeps 200..2000).
    pub totals: Vec<usize>,
    /// Sample pairs per point (the paper averages 100; the default here is 3).
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config { totals: (1..=10).map(|i| i * 200).collect(), samples: 3, seed: 0xF1611 }
    }
}

/// One measured point of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Workflow name.
    pub workflow: String,
    /// Requested total number of edges across the two runs.
    pub target_total_edges: usize,
    /// Actual average total edges of the generated pairs.
    pub actual_total_edges: f64,
    /// Average execution time of the differencing algorithm (milliseconds).
    pub avg_time_ms: f64,
    /// Average edit distance (unit cost), reported for context.
    pub avg_distance: f64,
}

/// Runs the Figure 11 experiment.
pub fn run(config: &Fig11Config) -> Vec<Fig11Point> {
    let mut out = Vec::new();
    for wf in real_workflows() {
        let spec = wf.specification();
        let engine = WorkflowDiff::new(&spec, &UnitCost);
        for &total in &config.totals {
            let per_run = total / 2;
            let mut time_acc = 0.0;
            let mut dist_acc = 0.0;
            let mut size_acc = 0.0;
            for s in 0..config.samples {
                let seed = config.seed
                    ^ (s as u64)
                    ^ ((total as u64) << 16)
                    ^ (wf.name.len() as u64) << 40;
                let r1 = generate_run_with_target_edges(&spec, per_run, seed);
                let r2 = generate_run_with_target_edges(&spec, per_run, seed.wrapping_add(1));
                size_acc += (r1.edge_count() + r2.edge_count()) as f64;
                let (d, ms) = time_ms(|| engine.distance(&r1, &r2).expect("valid runs"));
                time_acc += ms;
                dist_acc += d;
            }
            let n = config.samples as f64;
            out.push(Fig11Point {
                workflow: wf.name.to_string(),
                target_total_edges: total,
                actual_total_edges: size_acc / n,
                avg_time_ms: time_acc / n,
                avg_distance: dist_acc / n,
            });
        }
    }
    out
}

/// Renders the result as per-workflow series (x = total edges, y = time).
pub fn render(points: &[Fig11Point]) -> String {
    let mut out = String::new();
    out.push_str("Figure 11 — execution time (ms) vs total edges in the two runs\n");
    out.push_str("workflow   target  actual_edges  avg_time_ms  avg_distance\n");
    for p in points {
        out.push_str(&format!(
            "{:<10} {:>6} {:>13.1} {:>12.3} {:>13.1}\n",
            p.workflow, p.target_total_edges, p.actual_total_edges, p.avg_time_ms, p.avg_distance
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fig11_sweep_produces_points_for_every_workflow() {
        let config = Fig11Config { totals: vec![60, 120], samples: 1, seed: 7 };
        let points = run(&config);
        assert_eq!(points.len(), 6 * 2);
        assert!(points.iter().all(|p| p.avg_time_ms >= 0.0));
        assert!(points.iter().all(|p| p.actual_total_edges > 0.0));
        let text = render(&points);
        assert!(text.contains("PA"));
        assert!(text.contains("BAIDD"));
    }
}
