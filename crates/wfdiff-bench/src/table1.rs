//! Table I: characteristics of the real workflow specifications.

use wfdiff_workloads::real::real_workflows;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Workflow name.
    pub workflow: String,
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// `|F|`.
    pub forks: usize,
    /// `||F||`.
    pub fork_edges: usize,
    /// `|L|`.
    pub loops: usize,
    /// `||L||`.
    pub loop_edges: usize,
}

/// Computes Table I from the reconstructed workflows.
pub fn compute() -> Vec<Table1Row> {
    real_workflows()
        .into_iter()
        .map(|wf| {
            let stats = wf.specification().stats();
            Table1Row {
                workflow: wf.name.to_string(),
                nodes: stats.nodes,
                edges: stats.edges,
                forks: stats.forks,
                fork_edges: stats.fork_edges,
                loops: stats.loops,
                loop_edges: stats.loop_edges,
            }
        })
        .collect()
}

/// Renders the table in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("WORKFLOW  |V|  |E|  |F|  ||F||  |L|  ||L||\n");
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>4} {:>4} {:>4} {:>6} {:>4} {:>6}\n",
            r.workflow, r.nodes, r.edges, r.forks, r.fork_edges, r.loops, r.loop_edges
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_the_paper() {
        let rows = compute();
        let rendered = render(&rows);
        // Compare the whitespace-normalised rows against Table I.
        let expected = [
            "PA 11 13 3 6 1 6",
            "EMBOSS 17 22 4 10 2 10",
            "SAXPF 27 36 7 18 1 7",
            "MB 17 19 2 6 1 6",
            "PGAQ 37 41 4 22 2 26",
            "BAIDD 29 36 8 17 2 12",
        ];
        for (line, expected) in rendered.lines().skip(1).zip(expected.iter()) {
            let normalised = line.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(&normalised, expected);
        }
        assert_eq!(rows.len(), 6);
    }
}
