//! The `load_gen` experiment: closed-loop, multi-client load generation
//! against a live `wfdiff-pdiffview` diff server over real TCP sockets.
//!
//! The scenario is the ROADMAP's "remote client" family: a server process
//! loads a persisted store, warm-starts its cache and serves mixed traffic —
//! store reads (`GET /specs`, `GET /specs/{slug}/runs`), cache-backed diffs
//! (`GET /diff`) and durable run inserts (`POST /runs`) — to 1..N concurrent
//! clients.  Each round:
//!
//! 1. a fresh store (one generated specification, `runs` runs) is saved to a
//!    scratch directory, loaded back and served by an in-process
//!    [`Server`] on an ephemeral loopback
//!    port (real sockets, real persistence — only the process boundary is
//!    elided),
//! 2. `clients` closed-loop worker threads each open one keep-alive
//!    connection and issue `requests_per_client` requests drawn from the
//!    configured mix, measuring per-request latency,
//! 3. every `GET /diff` distance is checked against a **local recompute**
//!    (an independent in-process [`DiffService`] over the same workload);
//!    any divergence counts in [`LoadRound::distance_mismatches`],
//! 4. any non-2xx response or framing failure counts in
//!    [`LoadRound::protocol_errors`].
//!
//! A healthy run reports **zero** protocol errors and **zero** mismatches;
//! the `load_gen` binary exits non-zero otherwise and writes the full report
//! into machine-readable `BENCH_serve.json` (under its `"mixed"` member —
//! the **sharded** mode below shares the file under `"sharded"`).
//!
//! # Sharded mode
//!
//! [`run_sharded`] measures the same closed-loop traffic against a store
//! partitioned across 1..N shards via the operator migration path
//! ([`split_store_into_shards`]), one client per specification and an
//! insert-heavy mix: durable appends serialise per shard (each store's save
//! lock covers the fsync), so adding shards is exactly what relieves the
//! bottleneck and read/insert throughput should grow with the shard count.

use crate::batch::{generate_workload, BatchConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use wfdiff_pdiffview::serve::shard::{detect_shard_dirs, split_store_into_shards, ShardEntry};
use wfdiff_pdiffview::serve::{ServeConfig, Server, ShardRouter};
use wfdiff_pdiffview::{AllPairsResult, DiffService, RunDescriptor, WorkflowStore};
use wfdiff_sptree::{Run, Specification};
use wfdiff_workloads::generator::{random_specification, SpecGenConfig};
use wfdiff_workloads::runs::{generate_run, RunGenConfig};

/// Configuration of one load-generation experiment.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Workload label for the report.
    pub label: String,
    /// Number of runs in the served collection.
    pub runs: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Requests each client issues per round.
    pub requests_per_client: usize,
    /// Client counts to measure, one round per entry.
    pub clients: Vec<usize>,
    /// Server worker-pool size (HTTP workers and diff threads).
    pub server_threads: usize,
    /// Relative weights of the (read, diff, insert) operations in the mix.
    pub mix: [u32; 3],
    /// RNG seed.
    pub seed: u64,
}

impl LoadGenConfig {
    /// The default mixed workload over a Fig. 14-style store.
    pub fn new(runs: usize, spec_edges: usize) -> Self {
        LoadGenConfig {
            label: format!("serve(r={runs},e={spec_edges})"),
            runs,
            spec_edges,
            requests_per_client: 25,
            clients: vec![1, 2, 4],
            server_threads: 4,
            mix: [2, 5, 1],
            seed: 0x5E17E,
        }
    }
}

/// Latency percentiles of one operation class in one round.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct OpStats {
    /// Operation name (`read`, `diff` or `insert`).
    pub op: String,
    /// Number of requests issued.
    pub count: usize,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Worst observed latency in microseconds.
    pub max_us: u64,
}

/// One measured client count.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct LoadRound {
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Total requests completed across all clients.
    pub requests: usize,
    /// Wall time of the whole round in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput in requests per second.
    pub throughput_rps: f64,
    /// Non-2xx responses and framing/transport failures (must be 0).
    pub protocol_errors: usize,
    /// Served distances that diverged from the local recompute (must be 0).
    pub distance_mismatches: usize,
    /// Per-operation latency percentiles.
    pub ops: Vec<OpStats>,
}

/// The full result of one experiment.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct ServeBenchReport {
    /// Workload label.
    pub label: String,
    /// Number of runs in the served collection.
    pub runs: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Requests per client per round.
    pub requests_per_client: usize,
    /// Server worker-pool size.
    pub server_threads: usize,
    /// Operation mix weights (read, diff, insert).
    pub mix: Vec<u32>,
    /// One entry per measured client count.
    pub rounds: Vec<LoadRound>,
}

impl ServeBenchReport {
    /// Sum of protocol errors across rounds.
    pub fn protocol_errors(&self) -> usize {
        self.rounds.iter().map(|r| r.protocol_errors).sum()
    }

    /// Sum of distance mismatches across rounds.
    pub fn distance_mismatches(&self) -> usize {
        self.rounds.iter().map(|r| r.distance_mismatches).sum()
    }
}

/// What one client thread measured.
struct ClientResult {
    /// `(op index, latency in microseconds)` per completed request.
    latencies: Vec<(usize, u64)>,
    protocol_errors: usize,
    distance_mismatches: usize,
}

const OPS: [&str; 3] = ["read", "diff", "insert"];

/// Runs the experiment: one server + client fleet per configured client
/// count, against freshly saved copies of the same generated workload.
pub fn run(config: &LoadGenConfig) -> ServeBenchReport {
    let (spec, runs) = generate_workload(&batch_config(config));
    let spec_name = spec.name().to_string();

    // Local recompute: an independent service over the identical workload.
    // The served distances must match these entries exactly.
    let local_store = Arc::new(WorkflowStore::new());
    let local_spec = local_store.insert_spec(spec.clone()).expect("fresh store has no conflict");
    for (i, run) in runs.iter().enumerate() {
        local_store.insert_run(&run_name(i), run.clone()).expect("spec is stored");
    }
    let reference = DiffService::new(Arc::clone(&local_store))
        .diff_all_pairs(&spec_name)
        .expect("valid workload");

    let mut rounds = Vec::new();
    for &clients in &config.clients {
        rounds.push(run_round(config, &spec_name, &local_spec, &runs, &reference, clients));
    }

    ServeBenchReport {
        label: config.label.clone(),
        runs: runs.len(),
        spec_edges: config.spec_edges,
        requests_per_client: config.requests_per_client,
        server_threads: config.server_threads,
        mix: config.mix.to_vec(),
        rounds,
    }
}

fn batch_config(config: &LoadGenConfig) -> BatchConfig {
    let mut b = BatchConfig::fig14(config.spec_edges, config.runs);
    b.label = config.label.clone();
    b.seed = config.seed;
    b
}

fn run_name(i: usize) -> String {
    format!("run{i:03}")
}

fn run_round(
    config: &LoadGenConfig,
    spec_name: &str,
    local_spec: &Arc<wfdiff_sptree::Specification>,
    runs: &[Run],
    reference: &wfdiff_pdiffview::AllPairsResult,
    clients: usize,
) -> LoadRound {
    // A fresh durable store per round, served exactly like production:
    // save → load (full validation) → warm start → serve with persistence.
    let dir = scratch_dir(clients);
    let staging = Arc::new(WorkflowStore::new());
    staging.insert_spec(local_spec.as_ref().clone()).expect("fresh store has no conflict");
    for (i, run) in runs.iter().enumerate() {
        staging.insert_run(&run_name(i), run.clone()).expect("spec is stored");
    }
    staging.save_to_dir(&dir).expect("save succeeds");
    let served = Arc::new(WorkflowStore::load_from_dir(&dir).expect("load succeeds"));
    let service = Arc::new(DiffService::builder(served).threads(config.server_threads).build());
    service.warm_start().expect("warm start succeeds");
    let server = Server::bind(
        service,
        ServeConfig {
            threads: config.server_threads,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let handle = server.start().expect("spawn workers");
    let addr = handle.addr();

    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|idx| {
                let spec_name = spec_name.to_string();
                scope.spawn(move || {
                    client_loop(config, &spec_name, local_spec, runs, reference, addr, clients, idx)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("clients do not panic")).collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let (requests, protocol_errors, distance_mismatches, ops) = aggregate(results);

    LoadRound {
        clients,
        requests,
        wall_ms,
        throughput_rps: if wall_ms > 0.0 { requests as f64 / (wall_ms / 1e3) } else { 0.0 },
        protocol_errors,
        distance_mismatches,
        ops,
    }
}

/// Folds per-client results into `(requests, protocol errors, distance
/// mismatches, per-op latency percentiles)`.
fn aggregate(results: Vec<ClientResult>) -> (usize, usize, usize, Vec<OpStats>) {
    let mut per_op: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut protocol_errors = 0;
    let mut distance_mismatches = 0;
    let mut requests = 0;
    for r in results {
        requests += r.latencies.len();
        protocol_errors += r.protocol_errors;
        distance_mismatches += r.distance_mismatches;
        for (op, us) in r.latencies {
            per_op[op].push(us);
        }
    }
    let ops = OPS
        .iter()
        .zip(per_op.iter_mut())
        .filter(|(_, lat)| !lat.is_empty())
        .map(|(name, lat)| {
            lat.sort_unstable();
            OpStats {
                op: (*name).to_string(),
                count: lat.len(),
                p50_us: percentile(lat, 50.0),
                p90_us: percentile(lat, 90.0),
                p99_us: percentile(lat, 99.0),
                max_us: *lat.last().expect("non-empty"),
            }
        })
        .collect();
    (requests, protocol_errors, distance_mismatches, ops)
}

/// Index into a **sorted** latency vector at percentile `p`.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn client_loop(
    config: &LoadGenConfig,
    spec_name: &str,
    local_spec: &Arc<wfdiff_sptree::Specification>,
    runs: &[Run],
    reference: &wfdiff_pdiffview::AllPairsResult,
    addr: std::net::SocketAddr,
    clients: usize,
    idx: usize,
) -> ClientResult {
    let mut rng =
        ChaCha8Rng::seed_from_u64(config.seed ^ ((clients as u64) << 32) ^ (idx as u64 + 1));
    let mut result =
        ClientResult { latencies: Vec::new(), protocol_errors: 0, distance_mismatches: 0 };
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            result.protocol_errors += config.requests_per_client;
            return result;
        }
    };
    let total_weight: u32 = config.mix.iter().sum::<u32>().max(1);
    let run_gen = BatchConfig::fig14(config.spec_edges, config.runs).run_gen;

    for i in 0..config.requests_per_client {
        let roll = rng.gen_range(0..total_weight);
        let op = if roll < config.mix[0] {
            0
        } else if roll < config.mix[0] + config.mix[1] {
            1
        } else {
            2
        };
        let started = Instant::now();
        let outcome = match op {
            0 => {
                // Alternate the two snapshot reads.
                let path = if i % 2 == 0 {
                    "/specs".to_string()
                } else {
                    format!("/specs/{}/runs", encode(spec_name))
                };
                client.request("GET", &path, None).map(|(status, _)| status == 200)
            }
            1 => {
                let a = rng.gen_range(0..runs.len());
                let b = rng.gen_range(0..runs.len());
                let path = format!(
                    "/diff?spec={}&a={}&b={}",
                    encode(spec_name),
                    encode(&run_name(a)),
                    encode(&run_name(b))
                );
                client.request("GET", &path, None).map(|(status, body)| {
                    if status != 200 {
                        return false;
                    }
                    match parse_distance(&body) {
                        // Served distances must be bit-identical to the
                        // local recompute: the JSON float round-trips
                        // exactly.  Look the pair up by *name* — the
                        // all-pairs matrix is in sorted-run-name order,
                        // which diverges from generation order once names
                        // stop zero-padding (>= 1000 runs).
                        Some(d) => {
                            let expected = reference
                                .distance(&run_name(a), &run_name(b))
                                .expect("queried runs are in the reference matrix");
                            if d != expected {
                                result.distance_mismatches += 1;
                            }
                            true
                        }
                        None => false,
                    }
                })
            }
            _ => {
                let fresh = generate_run(local_spec, &run_gen, &mut rng);
                let descriptor = RunDescriptor::from_run(&fresh);
                let body = format!(
                    "{{\"name\": \"lg-{clients}-{idx}-{i}\", \"run\": {}}}",
                    descriptor.to_json()
                );
                client.request("POST", "/runs", Some(&body)).map(|(status, _)| status == 201)
            }
        };
        let us = started.elapsed().as_micros() as u64;
        match outcome {
            Ok(true) => result.latencies.push((op, us)),
            Ok(false) => result.protocol_errors += 1,
            Err(_) => {
                result.protocol_errors += 1;
                // The connection is unusable after a transport error;
                // reconnect and keep the round going.
                match HttpClient::connect(addr) {
                    Ok(c) => client = c,
                    Err(_) => {
                        result.protocol_errors += config.requests_per_client - i - 1;
                        return result;
                    }
                }
            }
        }
    }
    result
}

/// Extracts the `distance` field from a `/diff` response body.
fn parse_distance(body: &str) -> Option<f64> {
    /// Probe: unknown fields are ignored by the deserializer.
    #[derive(serde::Deserialize)]
    struct Probe {
        distance: f64,
    }
    serde_json::from_str::<Probe>(body).ok().map(|p| p.distance)
}

/// Percent-encodes a path/query component (RFC 3986 unreserved set).
fn encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

fn scratch_dir(round: usize) -> PathBuf {
    std::env::temp_dir().join(format!("wfdiff-loadgen-{}-{round}", std::process::id()))
}

/// A minimal keep-alive HTTP/1.1 client over one `TcpStream`.
struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient { reader: BufReader::new(stream), writer })
    }

    /// Issues one request and returns `(status, body)`.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;

        let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before the status line"));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length =
                        value.trim().parse().map_err(|_| bad("unparsable Content-Length"))?;
                }
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf)?;
        String::from_utf8(buf).map(|body| (status, body)).map_err(|_| bad("non-UTF-8 body"))
    }
}

// ---------------------------------------------------------------------------
// Sharded mode
// ---------------------------------------------------------------------------

/// Configuration of the sharded experiment (`load_gen sharded …`).
#[derive(Debug, Clone)]
pub struct ShardedLoadConfig {
    /// Workload label for the report.
    pub label: String,
    /// Number of distinct specifications (also the client count — each
    /// client is dedicated to one spec, so traffic spreads across shards).
    pub specs: usize,
    /// Runs stored per specification at boot.
    pub runs_per_spec: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Requests each client issues per round.
    pub requests_per_client: usize,
    /// Shard counts to measure, one round per entry.
    pub shard_counts: Vec<usize>,
    /// HTTP worker count, and diff threads **per shard**.
    pub server_threads: usize,
    /// Relative weights of the (read, diff, insert) operations.  The
    /// default is insert-heavy: durable appends serialise per shard, so the
    /// shard count is what relieves them.
    pub mix: [u32; 3],
    /// RNG seed.
    pub seed: u64,
}

impl ShardedLoadConfig {
    /// The default sharded workload.
    pub fn new(specs: usize, runs_per_spec: usize, spec_edges: usize) -> Self {
        ShardedLoadConfig {
            label: format!("sharded(s={specs},r={runs_per_spec},e={spec_edges})"),
            specs: specs.max(1),
            runs_per_spec: runs_per_spec.max(2),
            spec_edges,
            requests_per_client: 30,
            shard_counts: vec![1, 2, 4],
            server_threads: 4,
            mix: [1, 2, 3],
            seed: 0x5AA5_5E17E,
        }
    }
}

/// One measured shard count.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct ShardRound {
    /// Number of store shards behind the server.
    pub shards: usize,
    /// Number of concurrent closed-loop clients (= specifications).
    pub clients: usize,
    /// Total requests completed across all clients.
    pub requests: usize,
    /// Wall time of the whole round in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput in requests per second.
    pub throughput_rps: f64,
    /// Non-2xx responses and framing/transport failures (must be 0).
    pub protocol_errors: usize,
    /// Served distances that diverged from the local recompute (must be 0).
    pub distance_mismatches: usize,
    /// Size of the post-round `GET /metrics` scrape in bytes (0 if the
    /// scrape failed, which also counts a protocol error).
    pub metrics_scrape_bytes: usize,
    /// Per-operation latency percentiles.
    pub ops: Vec<OpStats>,
}

/// The full result of one sharded experiment (the `"sharded"` member of
/// `BENCH_serve.json`).
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct ShardedBenchReport {
    /// Workload label.
    pub label: String,
    /// Number of specifications (and clients).
    pub specs: usize,
    /// Runs per specification at boot.
    pub runs_per_spec: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Requests per client per round.
    pub requests_per_client: usize,
    /// HTTP workers / per-shard diff threads.
    pub server_threads: usize,
    /// Operation mix weights (read, diff, insert).
    pub mix: Vec<u32>,
    /// One entry per measured shard count.
    pub rounds: Vec<ShardRound>,
}

impl ShardedBenchReport {
    /// Sum of protocol errors across rounds.
    pub fn protocol_errors(&self) -> usize {
        self.rounds.iter().map(|r| r.protocol_errors).sum()
    }

    /// Sum of distance mismatches across rounds.
    pub fn distance_mismatches(&self) -> usize {
        self.rounds.iter().map(|r| r.distance_mismatches).sum()
    }
}

/// One specification's slice of the sharded workload.
struct SpecWorkload {
    name: String,
    spec: Arc<Specification>,
    runs: Vec<Run>,
    reference: AllPairsResult,
}

/// Runs the sharded experiment: generate `specs` independent
/// specifications, then for every configured shard count save the combined
/// store, split it through the operator migration path, boot a sharded
/// server over the split directories and drive it with one client per spec.
pub fn run_sharded(config: &ShardedLoadConfig) -> ShardedBenchReport {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let spec_gen = SpecGenConfig {
        target_edges: config.spec_edges,
        series_parallel_ratio: 1.0,
        forks: 2,
        loops: 1,
    };
    let local_store = Arc::new(WorkflowStore::new());
    let mut generated = Vec::with_capacity(config.specs);
    for s in 0..config.specs {
        let name = format!("spec{s:02}");
        let spec = local_store
            .insert_spec(random_specification(&name, &spec_gen, &mut rng))
            .expect("fresh store has no conflict");
        let runs: Vec<Run> = (0..config.runs_per_spec)
            .map(|_| generate_run(&spec, &sharded_run_gen(), &mut rng))
            .collect();
        for (i, run) in runs.iter().enumerate() {
            local_store.insert_run(&run_name(i), run.clone()).expect("spec is stored");
        }
        generated.push((name, spec, runs));
    }
    // Local recompute per spec: the served distances must match these.
    let local = DiffService::new(Arc::clone(&local_store));
    let workloads: Vec<SpecWorkload> = generated
        .into_iter()
        .map(|(name, spec, runs)| {
            let reference = local.diff_all_pairs(&name).expect("valid workload");
            SpecWorkload { name, spec, runs, reference }
        })
        .collect();

    let mut rounds = Vec::new();
    for &shards in &config.shard_counts {
        rounds.push(run_sharded_round(config, &workloads, shards.max(1)));
    }

    ShardedBenchReport {
        label: config.label.clone(),
        specs: config.specs,
        runs_per_spec: config.runs_per_spec,
        spec_edges: config.spec_edges,
        requests_per_client: config.requests_per_client,
        server_threads: config.server_threads,
        mix: config.mix.to_vec(),
        rounds,
    }
}

/// The run generator of the sharded workload (same shape as `store_tool
/// export`).
fn sharded_run_gen() -> RunGenConfig {
    RunGenConfig { prob_p: 0.85, max_f: 3, prob_f: 0.6, max_l: 3, prob_l: 0.6 }
}

fn run_sharded_round(
    config: &ShardedLoadConfig,
    workloads: &[SpecWorkload],
    shards: usize,
) -> ShardRound {
    // Save the combined store flat, then split it exactly like an operator
    // would (`store_tool shard`), and boot every shard directory.
    let root = std::env::temp_dir()
        .join(format!("wfdiff-loadgen-sharded-{}-{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let flat = root.join("flat");
    let staging = WorkflowStore::new();
    for w in workloads {
        staging.insert_spec(w.spec.as_ref().clone()).expect("fresh store has no conflict");
        for (i, run) in w.runs.iter().enumerate() {
            staging.insert_run(&run_name(i), run.clone()).expect("spec is stored");
        }
    }
    staging.save_to_dir(&flat).expect("save succeeds");
    let shard_root = root.join("shards");
    split_store_into_shards(&flat, &shard_root, shards).expect("split succeeds");
    let dirs = detect_shard_dirs(&shard_root);
    assert_eq!(dirs.len(), shards, "split wrote every shard directory");
    let entries = dirs
        .into_iter()
        .map(|dir| {
            let store = Arc::new(WorkflowStore::load_from_dir(&dir).expect("shard load succeeds"));
            let service =
                Arc::new(DiffService::builder(store).threads(config.server_threads).build());
            service.warm_start().expect("warm start succeeds");
            ShardEntry::new(service, Some(dir))
        })
        .collect();
    let server = Server::bind_sharded(
        ShardRouter::new(entries),
        ServeConfig { threads: config.server_threads, ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let handle = server.start().expect("spawn workers");
    let addr = handle.addr();

    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..workloads.len())
            .map(|idx| {
                scope.spawn(move || sharded_client_loop(config, &workloads[idx], addr, shards, idx))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("clients do not panic")).collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // The sharded server must also expose a scrape after serving traffic.
    let (mut protocol_errors_extra, mut metrics_scrape_bytes) = (0, 0);
    match HttpClient::connect(addr).and_then(|mut c| c.request("GET", "/metrics", None)) {
        Ok((200, body)) => metrics_scrape_bytes = body.len(),
        _ => protocol_errors_extra += 1,
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    let (requests, protocol_errors, distance_mismatches, ops) = aggregate(results);
    ShardRound {
        shards,
        clients: workloads.len(),
        requests,
        wall_ms,
        throughput_rps: if wall_ms > 0.0 { requests as f64 / (wall_ms / 1e3) } else { 0.0 },
        protocol_errors: protocol_errors + protocol_errors_extra,
        distance_mismatches,
        metrics_scrape_bytes,
        ops,
    }
}

/// One sharded client: every request addresses the client's own spec, so
/// with enough specs the traffic spreads across every shard.
fn sharded_client_loop(
    config: &ShardedLoadConfig,
    workload: &SpecWorkload,
    addr: std::net::SocketAddr,
    shards: usize,
    idx: usize,
) -> ClientResult {
    let mut rng =
        ChaCha8Rng::seed_from_u64(config.seed ^ ((shards as u64) << 32) ^ (idx as u64 + 1));
    let mut result =
        ClientResult { latencies: Vec::new(), protocol_errors: 0, distance_mismatches: 0 };
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            result.protocol_errors += config.requests_per_client;
            return result;
        }
    };
    let total_weight: u32 = config.mix.iter().sum::<u32>().max(1);
    let run_gen = sharded_run_gen();
    let spec_name = &workload.name;

    for i in 0..config.requests_per_client {
        let roll = rng.gen_range(0..total_weight);
        let op = if roll < config.mix[0] {
            0
        } else if roll < config.mix[0] + config.mix[1] {
            1
        } else {
            2
        };
        let started = Instant::now();
        let outcome = match op {
            0 => {
                let path = if i % 2 == 0 {
                    "/specs".to_string()
                } else {
                    format!("/specs/{}/runs", encode(spec_name))
                };
                client.request("GET", &path, None).map(|(status, _)| status == 200)
            }
            1 => {
                let a = rng.gen_range(0..workload.runs.len());
                let b = rng.gen_range(0..workload.runs.len());
                let path = format!(
                    "/diff?spec={}&a={}&b={}",
                    encode(spec_name),
                    encode(&run_name(a)),
                    encode(&run_name(b))
                );
                client.request("GET", &path, None).map(|(status, body)| {
                    if status != 200 {
                        return false;
                    }
                    match parse_distance(&body) {
                        Some(d) => {
                            let expected = workload
                                .reference
                                .distance(&run_name(a), &run_name(b))
                                .expect("queried runs are in the reference matrix");
                            if d != expected {
                                result.distance_mismatches += 1;
                            }
                            true
                        }
                        None => false,
                    }
                })
            }
            _ => {
                let fresh = generate_run(&workload.spec, &run_gen, &mut rng);
                let descriptor = RunDescriptor::from_run(&fresh);
                let body = format!(
                    "{{\"name\": \"lg{shards}-{idx}-{i}\", \"run\": {}}}",
                    descriptor.to_json()
                );
                client.request("POST", "/runs", Some(&body)).map(|(status, _)| status == 201)
            }
        };
        let us = started.elapsed().as_micros() as u64;
        match outcome {
            Ok(true) => result.latencies.push((op, us)),
            Ok(false) => result.protocol_errors += 1,
            Err(_) => {
                result.protocol_errors += 1;
                match HttpClient::connect(addr) {
                    Ok(c) => client = c,
                    Err(_) => {
                        result.protocol_errors += config.requests_per_client - i - 1;
                        return result;
                    }
                }
            }
        }
    }
    result
}

/// Renders a sharded report as an aligned text table.
pub fn render_sharded(report: &ShardedBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "load_gen sharded — {} ({} spec(s) x {} runs, {} req/client, {} server worker(s), \
         mix r{}:d{}:i{})\n",
        report.label,
        report.specs,
        report.runs_per_spec,
        report.requests_per_client,
        report.server_threads,
        report.mix[0],
        report.mix[1],
        report.mix[2],
    ));
    out.push_str(" shards   requests     wall_ms       rps   errors   mismatches\n");
    for r in &report.rounds {
        out.push_str(&format!(
            "{:>7} {:>10} {:>11.2} {:>9.1} {:>8} {:>12}\n",
            r.shards,
            r.requests,
            r.wall_ms,
            r.throughput_rps,
            r.protocol_errors,
            r.distance_mismatches,
        ));
        for op in &r.ops {
            out.push_str(&format!(
                "        {:>7} x {:<7} p50 {:>7}us   p90 {:>7}us   p99 {:>7}us   max {:>7}us\n",
                op.count, op.op, op.p50_us, op.p90_us, op.p99_us, op.max_us
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Cluster-stream mode
// ---------------------------------------------------------------------------

/// Configuration of the cluster-stream experiment (`load_gen cluster …`):
/// a served store under **streamed inserts with live re-clustering**.
#[derive(Debug, Clone)]
pub struct ClusterStreamConfig {
    /// Workload label for the report.
    pub label: String,
    /// Runs in the store when the server boots.
    pub initial_runs: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Runs streamed in through `POST /runs`, one at a time.
    pub inserts: usize,
    /// Cluster count of the k-medoids queries.
    pub k: usize,
    /// Neighbour count of the `/similar` checks.
    pub similar_k: usize,
    /// Server worker-pool size.
    pub server_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterStreamConfig {
    /// The default streamed-clustering workload.
    pub fn new(initial_runs: usize, spec_edges: usize, inserts: usize, k: usize) -> Self {
        ClusterStreamConfig {
            label: format!("cluster(r={initial_runs}+{inserts},e={spec_edges},k={k})"),
            initial_runs,
            spec_edges,
            inserts,
            k,
            similar_k: 5,
            server_threads: 4,
            seed: 0xC1_5E17E,
        }
    }
}

/// The result of one cluster-stream experiment (serialised as
/// `BENCH_cluster.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ClusterStreamReport {
    /// Workload label.
    pub label: String,
    /// Runs in the store at boot.
    pub initial_runs: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Runs streamed in.
    pub inserts: usize,
    /// k-medoids cluster count.
    pub k: usize,
    /// Server worker-pool size.
    pub server_threads: usize,
    /// Non-2xx responses and transport failures (must be 0).
    pub protocol_errors: usize,
    /// `/similar` answers that diverged from the local from-scratch
    /// recompute — names or distances (must be 0).
    pub similar_mismatches: usize,
    /// Cluster responses that failed to reflect a streamed insert, plus a
    /// final cluster-cache reload that failed validation (must be 0).
    pub cluster_errors: usize,
    /// Latency percentiles per operation: `insert_recluster` measures
    /// POST /runs **plus** the k-medoids query that reflects it (the
    /// streamed-insert-to-reclustered path), `similar` the nearest-run
    /// query.
    pub ops: Vec<OpStats>,
}

impl ClusterStreamReport {
    /// Whether the run was fully clean (zero errors and mismatches).
    pub fn is_clean(&self) -> bool {
        self.protocol_errors == 0 && self.similar_mismatches == 0 && self.cluster_errors == 0
    }
}

/// Runs the cluster-stream experiment: save → load → warm → serve, then
/// stream inserts while checking every `/similar` answer against a local
/// from-scratch recompute and every cluster response for membership of the
/// streamed run; finally reload the persisted cluster checkpoint and
/// compare it against the server's last answer.
pub fn run_cluster(config: &ClusterStreamConfig) -> ClusterStreamReport {
    // One generated pool: the first `initial_runs` boot the store, the rest
    // are streamed in.
    let mut batch =
        batch_config(&LoadGenConfig::new(config.initial_runs + config.inserts, config.spec_edges));
    batch.seed = config.seed;
    let (spec, all_runs) = generate_workload(&batch);
    let spec_name = spec.name().to_string();
    let (boot_runs, streamed) = all_runs.split_at(config.initial_runs);

    // Local mirror for the from-scratch recomputes.
    let local_store = Arc::new(WorkflowStore::new());
    local_store.insert_spec(spec.clone()).expect("fresh store has no conflict");
    for (i, run) in boot_runs.iter().enumerate() {
        local_store.insert_run(&run_name(i), run.clone()).expect("spec is stored");
    }
    let local = DiffService::new(Arc::clone(&local_store));

    // Boot exactly like production: save → load (full validation) → warm →
    // serve with persistence (so cluster state is checkpointed too).
    let dir = scratch_dir(usize::MAX);
    local_store.save_to_dir(&dir).expect("save succeeds");
    let served = Arc::new(WorkflowStore::load_from_dir(&dir).expect("load succeeds"));
    let service = Arc::new(DiffService::builder(served).threads(config.server_threads).build());
    service.warm_start().expect("warm start succeeds");
    let server = Server::bind(
        Arc::clone(&service),
        ServeConfig {
            threads: config.server_threads,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let handle = server.start().expect("spawn workers");
    let addr = handle.addr();

    let mut report = ClusterStreamReport {
        label: config.label.clone(),
        initial_runs: config.initial_runs,
        spec_edges: config.spec_edges,
        inserts: streamed.len(),
        k: config.k,
        server_threads: config.server_threads,
        protocol_errors: 0,
        similar_mismatches: 0,
        cluster_errors: 0,
        ops: Vec::new(),
    };
    let mut recluster_us: Vec<u64> = Vec::new();
    let mut similar_us: Vec<u64> = Vec::new();
    let mut last_cluster: Option<wfdiff_pdiffview::serve::api::KMedoidsResponse> = None;

    let mut client = HttpClient::connect(addr).expect("connect to the served store");
    let cluster_path = format!("/cluster?spec={}&algo=kmedoids&k={}", encode(&spec_name), config.k);
    // Prime the index (the first query builds the clustering).
    match client.request("GET", &cluster_path, None) {
        Ok((200, body)) => {
            last_cluster = serde_json::from_str(&body).ok();
            if last_cluster.is_none() {
                report.protocol_errors += 1;
            }
        }
        _ => report.protocol_errors += 1,
    }

    for (i, run) in streamed.iter().enumerate() {
        let name = format!("ins-{i:03}");
        let descriptor = RunDescriptor::from_run(run);
        let body = format!("{{\"name\": {:?}, \"run\": {}}}", name, descriptor.to_json());

        // Streamed-insert-to-reclustered: POST the run, then ask for the
        // clustering that must already include it.
        let started = Instant::now();
        let inserted = matches!(client.request("POST", "/runs", Some(&body)), Ok((201, _)));
        if !inserted {
            report.protocol_errors += 1;
            continue;
        }
        match client.request("GET", &cluster_path, None) {
            Ok((200, text)) => {
                recluster_us.push(started.elapsed().as_micros() as u64);
                match serde_json::from_str::<wfdiff_pdiffview::serve::api::KMedoidsResponse>(&text)
                {
                    Ok(out) => {
                        if !out.clusters.iter().any(|c| c.runs.contains(&name)) {
                            report.cluster_errors += 1;
                        }
                        last_cluster = Some(out);
                    }
                    Err(_) => report.protocol_errors += 1,
                }
            }
            _ => report.protocol_errors += 1,
        }

        // Mirror the insert locally and verify /similar bit-for-bit against
        // a from-scratch recompute.
        local_store.insert_run(&name, run.clone()).expect("spec is stored");
        let expected = local
            .nearest_runs(&spec_name, &name, config.similar_k)
            .expect("local recompute succeeds");
        let similar_path = format!(
            "/similar?spec={}&run={}&k={}",
            encode(&spec_name),
            encode(&name),
            config.similar_k
        );
        let started = Instant::now();
        match client.request("GET", &similar_path, None) {
            Ok((200, text)) => {
                similar_us.push(started.elapsed().as_micros() as u64);
                match serde_json::from_str::<wfdiff_pdiffview::serve::api::SimilarResponse>(&text) {
                    Ok(out) => {
                        let matches = out.neighbors.len() == expected.len()
                            && out.neighbors.iter().zip(&expected).all(|(got, want)| {
                                got.run == want.target && got.distance == want.distance
                            });
                        if !matches {
                            report.similar_mismatches += 1;
                        }
                    }
                    Err(_) => report.protocol_errors += 1,
                }
            }
            _ => report.protocol_errors += 1,
        }
    }

    // Close the keep-alive connection before shutting down, or a worker
    // would sit in its read timeout waiting for our next request.
    drop(client);
    handle.shutdown();

    // The checkpointed clustering must survive a restart: reload the store
    // directory cold and resume from cluster_cache.json.
    if let Some(final_cluster) = &last_cluster {
        let reloaded = WorkflowStore::load_from_dir(&dir).expect("load succeeds");
        let resumed = DiffService::new(Arc::new(reloaded));
        let cache = resumed.load_cluster_state(&dir);
        let snapshot = resumed.cluster_index().snapshot(&spec_name);
        let consistent = cache.loaded == 1
            && cache.stale == 0
            && snapshot.is_some_and(|snap| {
                snap.partition()
                    == final_cluster.clusters.iter().map(|c| c.runs.clone()).collect::<Vec<_>>()
            });
        if !consistent {
            report.cluster_errors += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    for (name, mut lat) in [("insert_recluster", recluster_us), ("similar", similar_us)] {
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        report.ops.push(OpStats {
            op: name.to_string(),
            count: lat.len(),
            p50_us: percentile(&lat, 50.0),
            p90_us: percentile(&lat, 90.0),
            p99_us: percentile(&lat, 99.0),
            max_us: *lat.last().expect("non-empty"),
        });
    }
    report
}

/// Renders a cluster-stream report as an aligned text table.
pub fn render_cluster(report: &ClusterStreamReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "load_gen cluster — {} ({}+{} runs, k={}, {} server worker(s))\n",
        report.label, report.initial_runs, report.inserts, report.k, report.server_threads,
    ));
    out.push_str(&format!(
        "errors {}   similar mismatches {}   cluster errors {}\n",
        report.protocol_errors, report.similar_mismatches, report.cluster_errors,
    ));
    for op in &report.ops {
        out.push_str(&format!(
            "{:>7} x {:<16} p50 {:>7}us   p90 {:>7}us   p99 {:>7}us   max {:>7}us\n",
            op.count, op.op, op.p50_us, op.p90_us, op.p99_us, op.max_us
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Streamed-ingestion mode
// ---------------------------------------------------------------------------

/// Configuration of the streamed-ingestion experiment (`load_gen stream`):
/// event-by-event run ingestion over `POST /runs/stream`, every batch's live
/// drift verdict checked against a local recompute.
#[derive(Debug, Clone)]
pub struct StreamLoadConfig {
    /// Workload label for the report.
    pub label: String,
    /// Runs in the store when the server boots.
    pub initial_runs: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Runs streamed in event by event, one at a time.
    pub streams: usize,
    /// Events per `POST /runs/stream` batch.
    pub batch: usize,
    /// Cluster count of the k-medoids state primed before streaming (the
    /// drift verdict is relative to these clusters).
    pub k: usize,
    /// Server worker-pool size.
    pub server_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl StreamLoadConfig {
    /// The default streamed-ingestion workload.
    pub fn new(initial_runs: usize, spec_edges: usize, streams: usize, batch: usize) -> Self {
        StreamLoadConfig {
            label: format!("stream(r={initial_runs}+{streams},e={spec_edges},b={batch})"),
            initial_runs: initial_runs.max(2),
            spec_edges,
            streams: streams.max(1),
            batch: batch.max(1),
            k: 2,
            server_threads: 4,
            seed: 0x57_AEA7,
        }
    }
}

/// The result of one streamed-ingestion experiment (serialised as
/// `BENCH_stream.json`).
#[derive(Debug, Clone, Serialize)]
pub struct StreamBenchReport {
    /// Workload label.
    pub label: String,
    /// Runs in the store at boot.
    pub initial_runs: usize,
    /// Specification size in edges.
    pub spec_edges: usize,
    /// Runs streamed in.
    pub streams: usize,
    /// Events per batch.
    pub batch: usize,
    /// k-medoids cluster count behind the drift verdicts.
    pub k: usize,
    /// Server worker-pool size.
    pub server_threads: usize,
    /// Total lifecycle events streamed.
    pub events: usize,
    /// Non-2xx responses and transport failures (must be 0).
    pub protocol_errors: usize,
    /// Served drift verdicts — bounds, radii or the drift flag — that
    /// diverged from the local recompute (must be 0).
    pub drift_mismatches: usize,
    /// Finalisations that failed to store the run, diverged on the
    /// post-insert distance check, or left in-flight stream state behind
    /// after a cold reload (must be 0).
    pub finalize_errors: usize,
    /// Latency percentiles: `stream_batch` is `POST /runs/stream` to drift
    /// verdict (the event-to-verdict path), `drift` the read-only
    /// `GET /runs/{spec}/{stream}/drift`.
    pub ops: Vec<OpStats>,
}

impl StreamBenchReport {
    /// Whether the run was fully clean (zero errors and mismatches).
    pub fn is_clean(&self) -> bool {
        self.protocol_errors == 0 && self.drift_mismatches == 0 && self.finalize_errors == 0
    }
}

/// Field-by-field comparison of a served drift verdict against the local
/// recompute — floats must round-trip bit-identically through the JSON.
fn drift_verdict_matches(
    got: &wfdiff_pdiffview::serve::api::DriftResponse,
    want: &wfdiff_pdiffview::DriftReport,
) -> bool {
    got.spec == want.spec
        && got.stream == want.stream
        && got.events == want.events
        && got.nodes == want.nodes
        && got.completed_leaves == want.completed_leaves
        && got.drifted == want.drifted
        && got.clusters.len() == want.clusters.len()
        && got.clusters.iter().zip(&want.clusters).all(|(g, w)| {
            g.medoid == w.medoid
                && g.size == w.size
                && g.radius == w.radius
                && g.lower_bound == w.lower_bound
                && g.exceeds == w.exceeds
        })
}

/// Runs the streamed-ingestion experiment: save → load → warm → serve with
/// persistence, prime a k-medoids clustering, then ingest runs event by
/// event over `POST /runs/stream` while checking every drift verdict (both
/// the batch response's and the read-only endpoint's) against an
/// independent local mirror; each stream is finalised and the stored run
/// checked with an exact distance query, and at the end a cold reload must
/// find no in-flight stream state left behind.
pub fn run_stream(config: &StreamLoadConfig) -> StreamBenchReport {
    // One generated pool: the first `initial_runs` boot the store, the rest
    // are streamed in event by event.
    let mut batch =
        batch_config(&LoadGenConfig::new(config.initial_runs + config.streams, config.spec_edges));
    batch.seed = config.seed;
    let (spec, all_runs) = generate_workload(&batch);
    let spec_name = spec.name().to_string();
    let (boot_runs, streamed) = all_runs.split_at(config.initial_runs);

    // Local mirror: an independent service fed the identical batches.
    let local_store = Arc::new(WorkflowStore::new());
    local_store.insert_spec(spec.clone()).expect("fresh store has no conflict");
    for (i, run) in boot_runs.iter().enumerate() {
        local_store.insert_run(&run_name(i), run.clone()).expect("spec is stored");
    }
    let local = DiffService::new(Arc::clone(&local_store));
    local
        .cluster_medoids(&spec_name, config.k, wfdiff_pdiffview::DEFAULT_CLUSTER_SEED)
        .expect("local clustering");

    // Boot exactly like production so streamed batches WAL-append durably.
    let dir = scratch_dir(usize::MAX - 1);
    local_store.save_to_dir(&dir).expect("save succeeds");
    let served = Arc::new(WorkflowStore::load_from_dir(&dir).expect("load succeeds"));
    let service = Arc::new(DiffService::builder(served).threads(config.server_threads).build());
    service.warm_start().expect("warm start succeeds");
    let server = Server::bind(
        Arc::clone(&service),
        ServeConfig {
            threads: config.server_threads,
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let handle = server.start().expect("spawn workers");
    let addr = handle.addr();

    let mut report = StreamBenchReport {
        label: config.label.clone(),
        initial_runs: config.initial_runs,
        spec_edges: config.spec_edges,
        streams: streamed.len(),
        batch: config.batch,
        k: config.k,
        server_threads: config.server_threads,
        events: 0,
        protocol_errors: 0,
        drift_mismatches: 0,
        finalize_errors: 0,
        ops: Vec::new(),
    };
    let mut batch_us: Vec<u64> = Vec::new();
    let mut drift_us: Vec<u64> = Vec::new();

    let mut client = HttpClient::connect(addr).expect("connect to the served store");
    // Prime the served clustering (same k and default seed as the mirror).
    let cluster_path = format!("/cluster?spec={}&algo=kmedoids&k={}", encode(&spec_name), config.k);
    if !matches!(client.request("GET", &cluster_path, None), Ok((200, _))) {
        report.protocol_errors += 1;
    }

    for (i, run) in streamed.iter().enumerate() {
        let name = format!("st-{i:03}");
        let events = crate::events::lifecycle_events(run);
        report.events += events.len();
        let chunks: Vec<&[wfdiff_pdiffview::StreamEvent]> = events.chunks(config.batch).collect();
        for (c, chunk) in chunks.iter().enumerate() {
            let finalize = c + 1 == chunks.len();
            let body = serde_json::to_string(&wfdiff_pdiffview::serve::api::StreamEventsRequest {
                spec: spec_name.clone(),
                stream: name.clone(),
                events: chunk.to_vec(),
                finalize,
            })
            .expect("request serialises");
            let started = Instant::now();
            let response = client.request("POST", "/runs/stream", Some(&body));
            let us = started.elapsed().as_micros() as u64;
            let expected_status = if finalize { 201 } else { 200 };
            let parsed = match response {
                Ok((status, text)) if status == expected_status => serde_json::from_str::<
                    wfdiff_pdiffview::serve::api::StreamEventsResponse,
                >(&text)
                .ok(),
                _ => None,
            };
            let Some(out) = parsed else {
                report.protocol_errors += 1;
                continue;
            };
            batch_us.push(us);

            // Mirror the batch locally; the served verdict must match the
            // mirror's bit for bit.
            local.stream_events(&spec_name, &name, chunk).expect("mirror batch applies");
            if finalize {
                if !(out.finalized && out.complete && out.persisted) {
                    report.finalize_errors += 1;
                }
                let (run, _) = local.finalize_stream(&spec_name, &name).expect("mirror finalises");
                local_store.insert_run_new(&name, run).expect("mirror insert");
                local.remove_stream(&spec_name, &name);
                local.notify_run_inserted(&spec_name, &name);
            } else {
                let want = local.drift_report(&spec_name, &name).expect("mirror drift");
                match &out.drift {
                    Some(got) if drift_verdict_matches(got, &want) => {}
                    _ => report.drift_mismatches += 1,
                }
                // The read-only endpoint must agree with the batch verdict.
                let drift_path = format!("/runs/{}/{}/drift", encode(&spec_name), encode(&name));
                let started = Instant::now();
                match client.request("GET", &drift_path, None) {
                    Ok((200, text)) => {
                        drift_us.push(started.elapsed().as_micros() as u64);
                        match serde_json::from_str::<wfdiff_pdiffview::serve::api::DriftResponse>(
                            &text,
                        ) {
                            Ok(got) if drift_verdict_matches(&got, &want) => {}
                            _ => report.drift_mismatches += 1,
                        }
                    }
                    _ => report.protocol_errors += 1,
                }
            }
        }

        // The finalised run is a first-class citizen: an exact distance
        // query against it must match the mirror bit for bit.
        let diff_path = format!(
            "/diff?spec={}&a={}&b={}",
            encode(&spec_name),
            encode(&name),
            encode(&run_name(0))
        );
        match client.request("GET", &diff_path, None) {
            Ok((200, text)) => {
                let want = local
                    .diff(&spec_name, &name, &run_name(0))
                    .expect("mirror diff succeeds")
                    .distance;
                if parse_distance(&text) != Some(want) {
                    report.finalize_errors += 1;
                }
            }
            _ => report.protocol_errors += 1,
        }
    }

    drop(client);
    handle.shutdown();

    // Every stream was finalised, so a cold reload must resume none: the
    // closure markers (and stored runs) retire the WAL's stream records.
    let reloaded = Arc::new(WorkflowStore::load_from_dir(&dir).expect("cold reload succeeds"));
    let resumed = DiffService::new(reloaded);
    let leftovers = resumed.load_streams(&dir).expect("stream scan succeeds");
    if leftovers.loaded != 0 {
        report.finalize_errors += leftovers.loaded;
    }
    let _ = std::fs::remove_dir_all(&dir);

    for (name, mut lat) in [("stream_batch", batch_us), ("drift", drift_us)] {
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        report.ops.push(OpStats {
            op: name.to_string(),
            count: lat.len(),
            p50_us: percentile(&lat, 50.0),
            p90_us: percentile(&lat, 90.0),
            p99_us: percentile(&lat, 99.0),
            max_us: *lat.last().expect("non-empty"),
        });
    }
    report
}

/// Renders a streamed-ingestion report as an aligned text table.
pub fn render_stream(report: &StreamBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "load_gen stream — {} ({}+{} runs, {} events, batch {}, k={}, {} server worker(s))\n",
        report.label,
        report.initial_runs,
        report.streams,
        report.events,
        report.batch,
        report.k,
        report.server_threads,
    ));
    out.push_str(&format!(
        "errors {}   drift mismatches {}   finalize errors {}\n",
        report.protocol_errors, report.drift_mismatches, report.finalize_errors,
    ));
    for op in &report.ops {
        out.push_str(&format!(
            "{:>7} x {:<14} p50 {:>7}us   p90 {:>7}us   p99 {:>7}us   max {:>7}us\n",
            op.count, op.op, op.p50_us, op.p90_us, op.p99_us, op.max_us
        ));
    }
    out
}

/// Renders a report as an aligned text table.
pub fn render(report: &ServeBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "load_gen — {} ({} runs, {} req/client, {} server worker(s), mix r{}:d{}:i{})\n",
        report.label,
        report.runs,
        report.requests_per_client,
        report.server_threads,
        report.mix[0],
        report.mix[1],
        report.mix[2],
    ));
    out.push_str("clients   requests     wall_ms       rps   errors   mismatches\n");
    for r in &report.rounds {
        out.push_str(&format!(
            "{:>7} {:>10} {:>11.2} {:>9.1} {:>8} {:>12}\n",
            r.clients,
            r.requests,
            r.wall_ms,
            r.throughput_rps,
            r.protocol_errors,
            r.distance_mismatches,
        ));
        for op in &r.ops {
            out.push_str(&format!(
                "        {:>7} x {:<7} p50 {:>7}us   p90 {:>7}us   p99 {:>7}us   max {:>7}us\n",
                op.count, op.op, op.p50_us, op.p90_us, op.p99_us, op.max_us
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_run_is_clean_and_verified() {
        let mut config = LoadGenConfig::new(6, 30);
        config.clients = vec![1, 2];
        config.requests_per_client = 12;
        config.server_threads = 2;
        let report = run(&config);
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.protocol_errors(), 0, "{report:?}");
        assert_eq!(report.distance_mismatches(), 0, "{report:?}");
        for round in &report.rounds {
            assert_eq!(round.requests, round.clients * config.requests_per_client);
            assert!(round.throughput_rps > 0.0);
        }
        let text = render(&report);
        assert!(text.contains("load_gen"));
        // The report serialises for BENCH_serve.json.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"throughput_rps\""));
    }

    #[test]
    fn cluster_stream_run_is_clean_and_verified() {
        let mut config = ClusterStreamConfig::new(5, 25, 3, 2);
        config.server_threads = 2;
        config.similar_k = 3;
        let report = run_cluster(&config);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.inserts, 3);
        let recluster = report.ops.iter().find(|o| o.op == "insert_recluster").unwrap();
        assert_eq!(recluster.count, 3);
        assert!(report.ops.iter().any(|o| o.op == "similar"));
        let text = render_cluster(&report);
        assert!(text.contains("insert_recluster"), "{text}");
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"similar_mismatches\""));
    }

    #[test]
    fn stream_run_is_clean_and_verified() {
        let mut config = StreamLoadConfig::new(5, 25, 2, 4);
        config.server_threads = 2;
        let report = run_stream(&config);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.streams, 2);
        assert!(report.events > 0);
        let batch = report.ops.iter().find(|o| o.op == "stream_batch").unwrap();
        assert!(batch.count >= 2, "every stream needs at least one batch: {report:?}");
        assert!(report.ops.iter().any(|o| o.op == "drift"), "{report:?}");
        let text = render_stream(&report);
        assert!(text.contains("stream_batch"), "{text}");
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"drift_mismatches\""));
    }

    #[test]
    fn small_sharded_run_is_clean_and_verified() {
        let mut config = ShardedLoadConfig::new(2, 4, 25);
        config.shard_counts = vec![1, 2];
        config.requests_per_client = 10;
        config.server_threads = 2;
        let report = run_sharded(&config);
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.protocol_errors(), 0, "{report:?}");
        assert_eq!(report.distance_mismatches(), 0, "{report:?}");
        for round in &report.rounds {
            assert_eq!(round.clients, 2);
            assert_eq!(round.requests, round.clients * config.requests_per_client);
            assert!(round.throughput_rps > 0.0);
            assert!(round.metrics_scrape_bytes > 0, "the sharded server scrapes");
        }
        assert_eq!(report.rounds[0].shards, 1);
        assert_eq!(report.rounds[1].shards, 2);
        let text = render_sharded(&report);
        assert!(text.contains("shards"), "{text}");
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"metrics_scrape_bytes\""));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&sorted, 50.0), 6);
        assert_eq!(percentile(&sorted, 99.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 90.0), 7);
    }
}
