//! Minimal CSV output helper for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// Writes rows of strings as a CSV file with the given header.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a floating point number with three decimal places for table output.
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("wfdiff-bench-test.csv");
        write_csv(&dir, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456), "1.235");
    }
}
