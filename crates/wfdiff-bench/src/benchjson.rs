//! Machine-readable `BENCH_*.json` output for the perf-tracking CI job.
//!
//! Every perf binary (`batch_diff`, `warm_start`, `load_gen` in its mixed,
//! `cluster`, `similar` and `stream` modes) writes, next to its
//! human-readable table and CSV, one JSON document named
//! `BENCH_<experiment>.json` that CI uploads as a per-commit artifact
//! (`BENCH_batch_diff.json`, `BENCH_warm_start.json`, `BENCH_serve.json`,
//! `BENCH_cluster.json`, `BENCH_similar.json`, `BENCH_stream.json`).  The
//! documents are flat, stable-keyed and self-describing so that the perf
//! trajectory can be charted across commits without parsing tables.
//!
//! `BENCH_serve.json` is shared by two experiments — `load_gen`'s mixed and
//! sharded modes — as one object with a member per mode
//! (`{"mixed": …, "sharded": …}`), merged by [`merge_serve_bench_json`].

use crate::batch::BatchReport;
use crate::warmstart::WarmStartRow;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// JSON shape of one [`crate::batch::BatchPoint`].
#[derive(Debug, Serialize)]
pub struct BatchPointJson {
    /// Worker-pool size.
    pub threads: usize,
    /// Cold-cache `diff_all_pairs` wall time (ms).
    pub cold_ms: f64,
    /// Warm-cache `diff_all_pairs` wall time (ms).
    pub warm_ms: f64,
    /// Serial-baseline / cold speedup.
    pub cold_speedup: f64,
    /// Serial-baseline / warm speedup.
    pub warm_speedup: f64,
    /// Cache hits after the warm pass.
    pub cache_hits: u64,
    /// Cache misses after the warm pass.
    pub cache_misses: u64,
    /// Cache hit rate after the warm pass.
    pub hit_rate: f64,
}

/// JSON shape of one [`BatchReport`].
#[derive(Debug, Serialize)]
pub struct BatchReportJson {
    /// Workload label.
    pub workload: String,
    /// Number of runs in the collection.
    pub runs: usize,
    /// Number of distinct unordered pairs.
    pub pairs: usize,
    /// Serial unmemoised baseline (ms).
    pub serial_ms: f64,
    /// Whether every service distance equalled the baseline.
    pub distances_match: bool,
    /// One entry per measured thread count.
    pub points: Vec<BatchPointJson>,
}

impl From<&BatchReport> for BatchReportJson {
    fn from(report: &BatchReport) -> Self {
        BatchReportJson {
            workload: report.label.clone(),
            runs: report.runs,
            pairs: report.pairs,
            serial_ms: report.serial_ms,
            distances_match: report.distances_match,
            points: report
                .points
                .iter()
                .map(|p| BatchPointJson {
                    threads: p.threads,
                    cold_ms: p.cold_ms,
                    warm_ms: p.warm_ms,
                    cold_speedup: report.serial_ms / p.cold_ms,
                    warm_speedup: report.serial_ms / p.warm_ms,
                    cache_hits: p.cache.hits,
                    cache_misses: p.cache.misses,
                    hit_rate: p.cache.hit_rate(),
                })
                .collect(),
        }
    }
}

/// JSON shape of one [`WarmStartRow`].
#[derive(Debug, Serialize)]
pub struct WarmStartJson {
    /// Workload label.
    pub workload: String,
    /// Number of runs in the collection.
    pub runs: usize,
    /// `save_to_dir` wall time (ms).
    pub save_ms: f64,
    /// `load_from_dir` wall time (ms).
    pub load_ms: f64,
    /// Cold first-query burst (ms).
    pub cold_diff_ms: f64,
    /// `warm_start` wall time (ms).
    pub warm_start_ms: f64,
    /// Warm first-query burst (ms).
    pub warm_diff_ms: f64,
    /// Cold/warm first-query speedup.
    pub first_query_speedup: f64,
    /// Whether persisted distances matched the in-memory store.
    pub distances_match: bool,
}

impl From<&WarmStartRow> for WarmStartJson {
    fn from(row: &WarmStartRow) -> Self {
        WarmStartJson {
            workload: row.label.clone(),
            runs: row.runs,
            save_ms: row.save_ms,
            load_ms: row.load_ms,
            cold_diff_ms: row.cold_diff_ms,
            warm_start_ms: row.warm_start_ms,
            warm_diff_ms: row.warm_diff_ms,
            first_query_speedup: row.first_query_speedup(),
            distances_match: row.distances_match,
        }
    }
}

/// Serialises `value` pretty-printed into `path` (with a trailing newline).
pub fn write_bench_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")
}

/// The merged shape of `BENCH_serve.json`: one member per `load_gen` mode,
/// each present once its experiment has run.
#[derive(Debug, Default, Serialize, serde::Deserialize)]
pub struct ServeBenchDoc {
    /// The mixed-traffic report (`load_gen`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mixed: Option<crate::loadgen::ServeBenchReport>,
    /// The shard-scaling report (`load_gen sharded`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sharded: Option<crate::loadgen::ShardedBenchReport>,
}

/// Read-modify-write on the shared `BENCH_serve.json`: loads the existing
/// document (a file that is missing or unreadable starts over empty),
/// applies `update` and writes the result back — so the mixed and sharded
/// experiments never clobber each other's member.
pub fn merge_serve_bench_json(
    path: impl AsRef<Path>,
    update: impl FnOnce(&mut ServeBenchDoc),
) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<ServeBenchDoc>(&text).ok())
        .unwrap_or_default();
    update(&mut doc);
    write_bench_json(path, &doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;

    #[test]
    fn batch_report_serialises_to_stable_keys() {
        let mut config = BatchConfig::fig12(30, 4);
        config.threads = vec![1];
        let report = crate::batch::run(&config);
        let json = serde_json::to_string_pretty(&BatchReportJson::from(&report)).unwrap();
        for key in ["workload", "serial_ms", "cold_speedup", "hit_rate", "distances_match"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        let dir = std::env::temp_dir().join(format!("wfdiff-benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_batch_diff.json");
        write_bench_json(&path, &BatchReportJson::from(&report)).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().ends_with("}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn member_writes_merge_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!("wfdiff-benchmember-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        let mixed = crate::loadgen::ServeBenchReport {
            label: "m".into(),
            runs: 1,
            spec_edges: 2,
            requests_per_client: 3,
            server_threads: 4,
            mix: vec![1, 1, 1],
            rounds: Vec::new(),
        };
        let sharded = crate::loadgen::ShardedBenchReport {
            label: "s".into(),
            specs: 2,
            runs_per_spec: 3,
            spec_edges: 4,
            requests_per_client: 5,
            server_threads: 6,
            mix: vec![1, 2, 3],
            rounds: Vec::new(),
        };
        merge_serve_bench_json(&path, |d| d.mixed = Some(mixed.clone())).unwrap();
        merge_serve_bench_json(&path, |d| d.sharded = Some(sharded)).unwrap();
        // Re-writing one member leaves the other intact.
        let mut mixed2 = mixed;
        mixed2.runs = 9;
        merge_serve_bench_json(&path, |d| d.mixed = Some(mixed2)).unwrap();
        let doc: ServeBenchDoc =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.mixed.as_ref().unwrap().runs, 9);
        assert_eq!(doc.sharded.as_ref().unwrap().label, "s");
        // A corrupt file starts over instead of erroring.
        std::fs::write(&path, "not json").unwrap();
        merge_serve_bench_json(&path, |_| {}).unwrap();
        let doc: ServeBenchDoc =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(doc.mixed.is_none() && doc.sharded.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
