//! Machine-readable `BENCH_*.json` output for the perf-tracking CI job.
//!
//! Every perf binary (`batch_diff`, `warm_start`, `load_gen` in both its
//! mixed and `cluster` modes) writes, next to its human-readable table and
//! CSV, one JSON document named `BENCH_<experiment>.json` that CI uploads
//! as a per-commit artifact (`BENCH_batch_diff.json`,
//! `BENCH_warm_start.json`, `BENCH_serve.json`, `BENCH_cluster.json`).  The
//! documents are flat, stable-keyed and self-describing so that the perf
//! trajectory can be charted across commits without parsing tables.

use crate::batch::BatchReport;
use crate::warmstart::WarmStartRow;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// JSON shape of one [`crate::batch::BatchPoint`].
#[derive(Debug, Serialize)]
pub struct BatchPointJson {
    /// Worker-pool size.
    pub threads: usize,
    /// Cold-cache `diff_all_pairs` wall time (ms).
    pub cold_ms: f64,
    /// Warm-cache `diff_all_pairs` wall time (ms).
    pub warm_ms: f64,
    /// Serial-baseline / cold speedup.
    pub cold_speedup: f64,
    /// Serial-baseline / warm speedup.
    pub warm_speedup: f64,
    /// Cache hits after the warm pass.
    pub cache_hits: u64,
    /// Cache misses after the warm pass.
    pub cache_misses: u64,
    /// Cache hit rate after the warm pass.
    pub hit_rate: f64,
}

/// JSON shape of one [`BatchReport`].
#[derive(Debug, Serialize)]
pub struct BatchReportJson {
    /// Workload label.
    pub workload: String,
    /// Number of runs in the collection.
    pub runs: usize,
    /// Number of distinct unordered pairs.
    pub pairs: usize,
    /// Serial unmemoised baseline (ms).
    pub serial_ms: f64,
    /// Whether every service distance equalled the baseline.
    pub distances_match: bool,
    /// One entry per measured thread count.
    pub points: Vec<BatchPointJson>,
}

impl From<&BatchReport> for BatchReportJson {
    fn from(report: &BatchReport) -> Self {
        BatchReportJson {
            workload: report.label.clone(),
            runs: report.runs,
            pairs: report.pairs,
            serial_ms: report.serial_ms,
            distances_match: report.distances_match,
            points: report
                .points
                .iter()
                .map(|p| BatchPointJson {
                    threads: p.threads,
                    cold_ms: p.cold_ms,
                    warm_ms: p.warm_ms,
                    cold_speedup: report.serial_ms / p.cold_ms,
                    warm_speedup: report.serial_ms / p.warm_ms,
                    cache_hits: p.cache.hits,
                    cache_misses: p.cache.misses,
                    hit_rate: p.cache.hit_rate(),
                })
                .collect(),
        }
    }
}

/// JSON shape of one [`WarmStartRow`].
#[derive(Debug, Serialize)]
pub struct WarmStartJson {
    /// Workload label.
    pub workload: String,
    /// Number of runs in the collection.
    pub runs: usize,
    /// `save_to_dir` wall time (ms).
    pub save_ms: f64,
    /// `load_from_dir` wall time (ms).
    pub load_ms: f64,
    /// Cold first-query burst (ms).
    pub cold_diff_ms: f64,
    /// `warm_start` wall time (ms).
    pub warm_start_ms: f64,
    /// Warm first-query burst (ms).
    pub warm_diff_ms: f64,
    /// Cold/warm first-query speedup.
    pub first_query_speedup: f64,
    /// Whether persisted distances matched the in-memory store.
    pub distances_match: bool,
}

impl From<&WarmStartRow> for WarmStartJson {
    fn from(row: &WarmStartRow) -> Self {
        WarmStartJson {
            workload: row.label.clone(),
            runs: row.runs,
            save_ms: row.save_ms,
            load_ms: row.load_ms,
            cold_diff_ms: row.cold_diff_ms,
            warm_start_ms: row.warm_start_ms,
            warm_diff_ms: row.warm_diff_ms,
            first_query_speedup: row.first_query_speedup(),
            distances_match: row.distances_match,
        }
    }
}

/// Serialises `value` pretty-printed into `path` (with a trailing newline).
pub fn write_bench_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;

    #[test]
    fn batch_report_serialises_to_stable_keys() {
        let mut config = BatchConfig::fig12(30, 4);
        config.threads = vec![1];
        let report = crate::batch::run(&config);
        let json = serde_json::to_string_pretty(&BatchReportJson::from(&report)).unwrap();
        for key in ["workload", "serial_ms", "cold_speedup", "hit_rate", "distances_match"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        let dir = std::env::temp_dir().join(format!("wfdiff-benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_batch_diff.json");
        write_bench_json(&path, &BatchReportJson::from(&report)).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().ends_with("}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
